//! Exports the framework's deliverables to disk — what the paper's
//! web application returns to the user: the synthesizable C++ source
//! with hard-coded weights and the three tcl scripts, plus (our
//! extension) the trained-weights JSON and the block-design DOT.
//!
//! ```text
//! cargo run --release --example export_artifacts [-- <output-dir>]
//! ```

use cnn2fpga::framework::{NetworkSpec, WeightSource, Workflow};
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/cnn2fpga-artifacts"));
    fs::create_dir_all(&out_dir)?;

    let spec = NetworkSpec::paper_usps_small(true);
    let artifacts = Workflow::new(spec.clone(), WeightSource::Random { seed: 2016 })
        .run()
        .expect("paper network builds");

    fs::write(
        out_dir.join("descriptor.json"),
        spec.to_json().expect("descriptor serializes"),
    )?;
    fs::write(out_dir.join("cnn.cpp"), &artifacts.cpp_source)?;
    fs::write(
        out_dir.join("cnn_vivado_hls.tcl"),
        &artifacts.tcl.vivado_hls,
    )?;
    fs::write(out_dir.join("directives.tcl"), &artifacts.tcl.directives)?;
    fs::write(out_dir.join("cnn_vivado.tcl"), &artifacts.tcl.vivado)?;
    fs::write(
        out_dir.join("network_weights.json"),
        artifacts.network.to_json().expect("network serializes"),
    )?;
    fs::write(
        out_dir.join("block_design.dot"),
        artifacts.bitstream.design.to_dot(),
    )?;
    fs::write(out_dir.join("design_1_wrapper.v"), &artifacts.hdl_wrapper)?;
    fs::write(out_dir.join("hls_report.txt"), artifacts.report.render())?;

    println!("exported to {}:", out_dir.display());
    for entry in fs::read_dir(&out_dir)? {
        let entry = entry?;
        println!(
            "  {:<22} {:>8} bytes",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len()
        );
    }
    Ok(())
}
