//! USPS digit classification end to end — the paper's Tests 1–2
//! story: train a small CNN on (synthetic) USPS digits, generate its
//! hardware, and compare the software and hardware implementations on
//! prediction error, runtime and energy, naive vs. optimized.
//!
//! ```text
//! cargo run --release --example usps_digits
//! ```

use cnn2fpga::datasets::UspsLike;
use cnn2fpga::fpga::Board;
use cnn2fpga::framework::{weights::build_random, NetworkSpec};
use cnn2fpga::hls::DirectiveSet;
use cnn2fpga::nn::{train, TrainConfig};
use cnn2fpga::platform::ZynqSoc;
use cnn2fpga::power::EnergyMeter;
use cnn2fpga::tensor::init::seeded_rng;

fn main() {
    // --- data ---
    let gen = UspsLike::default();
    let train_set = gen.generate(4000, 1);
    let test_set = gen.generate(1000, 2);
    println!(
        "dataset: {} training / {} test images of {}",
        train_set.len(),
        test_set.len(),
        train_set.image_shape()
    );

    // --- train (the Torch-replacement path) ---
    let mut net = build_random(&NetworkSpec::paper_usps_small(true), 2016).unwrap();
    let cfg = TrainConfig {
        learning_rate: 0.5,
        batch_size: 16,
        epochs: 25,
        weight_decay: 1e-4,
        lr_decay: 0.97,
        momentum: 0.0,
    };
    let mut rng = seeded_rng(99);
    let stats = train(
        &mut net,
        &train_set.images,
        &train_set.labels,
        &cfg,
        &mut rng,
    );
    for s in stats.iter().step_by(5) {
        println!(
            "epoch {:>2}: loss {:.3}, train error {:.1}%",
            s.epoch,
            s.mean_loss,
            s.train_error * 100.0
        );
    }

    // --- compare SW vs HW, naive and optimized ---
    let meter = EnergyMeter::for_board(Board::Zedboard);
    for (label, directives) in [
        ("naive (Test 1)", DirectiveSet::naive()),
        ("optimized (Test 2)", DirectiveSet::optimized()),
    ] {
        let soc = ZynqSoc::bring_up(&net, directives, Board::Zedboard).unwrap();
        let sw = soc.run_software(&test_set.images);
        let hw = soc.run_hardware(&test_set.images);
        assert_eq!(sw.predictions, hw.predictions, "SW/HW must agree");
        let err = hw
            .predictions
            .iter()
            .zip(&test_set.labels)
            .filter(|(p, l)| p != l)
            .count() as f64
            / test_set.len() as f64;
        let sw_energy = meter.measure_software(sw.seconds);
        let hw_energy = meter.measure_hardware(hw.seconds, &soc.device().bitstream().resources);
        println!(
            "\n{label}: error {:.1}% (identical on both paths)\n  software: {:.2} s, {:.2} J\n  hardware: {:.2} s, {:.2} J  (speedup {:.2}x, energy ratio {:.2}x)",
            err * 100.0,
            sw.seconds,
            sw_energy.joules,
            hw.seconds,
            hw_energy.joules,
            sw.seconds / hw.seconds,
            sw_energy.joules / hw_energy.joules,
        );
    }
}
