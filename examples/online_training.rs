//! Online training inside the workflow — the paper's final
//! future-work item ("the possibility to train the designed CNN
//! online with Torch framework, provided the dataset for training and
//! testing"): hand the framework a descriptor *and a dataset*, and it
//! trains the network itself before generating the hardware.
//!
//! ```text
//! cargo run --release --example online_training
//! ```

use cnn2fpga::datasets::UspsLike;
use cnn2fpga::framework::{NetworkSpec, WeightSource, Workflow};
use cnn2fpga::nn::TrainConfig;

fn main() {
    let spec = NetworkSpec::paper_usps_small(true);
    let train_set = UspsLike::default().generate(3000, 11);
    let test_set = UspsLike::default().generate(500, 12);

    let workflow = Workflow::new(
        spec,
        WeightSource::TrainOnline {
            dataset: train_set,
            config: TrainConfig {
                learning_rate: 0.5,
                batch_size: 16,
                epochs: 20,
                weight_decay: 1e-4,
                lr_decay: 0.97,
                momentum: 0.0,
            },
            seed: 2016,
        },
    );

    let artifacts = workflow.run().expect("train + build succeeds");
    for line in &artifacts.trace {
        println!("[workflow] {line}");
    }

    let err = artifacts
        .device
        .prediction_error(&test_set.images, &test_set.labels);
    println!(
        "\ntrained online and deployed to the simulated {}: test error {:.1}%",
        artifacts.bitstream.board.name(),
        err * 100.0
    );
    println!("{}", artifacts.report.render());
}
