//! Quickstart: build a small CNN, classify an image in software,
//! synthesize it, and inspect the HLS report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cnn2fpga::hls::{DirectiveSet, FpgaPart, HlsProject};
use cnn2fpga::nn::Network;
use cnn2fpga::tensor::init::seeded_rng;
use cnn2fpga::tensor::ops::activation::Activation;
use cnn2fpga::tensor::ops::pool::PoolKind;
use cnn2fpga::tensor::{Shape, Tensor};

fn main() {
    // 1. Build the paper's Test-1 network (random weights for the demo).
    let mut rng = seeded_rng(42);
    let net = Network::builder(Shape::new(1, 16, 16))
        .conv(6, 5, 5, &mut rng)
        .pool(PoolKind::Max, 2, 2)
        .flatten()
        .linear(10, Some(Activation::Tanh), &mut rng)
        .log_softmax()
        .build()
        .expect("valid network");
    println!("network:\n{}", cnn2fpga::nn::summary::render(&net));

    // 2. Classify an image in software.
    let image = Tensor::from_fn(Shape::new(1, 16, 16), |_, y, x| {
        if (4..12).contains(&y) && (6..10).contains(&x) {
            1.0
        } else {
            0.0
        }
    });
    println!("software prediction: class {}", net.predict(&image));

    // 3. Synthesize it for the Zedboard, naive and optimized.
    for directives in [DirectiveSet::naive(), DirectiveSet::optimized()] {
        let project =
            HlsProject::new(&net, directives, FpgaPart::zynq7020()).expect("fits the Zedboard");
        println!("{}", project.report().render());
    }
}
