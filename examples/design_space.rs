//! Design-space exploration — Section V-E's claim that the HLS-based
//! flow lets a designer "explore faster the design space and analyze
//! different solutions in an agile way": sweep every directive
//! combination (at both float and Q8.8 precision) for the Test-1
//! network, print the space with the Pareto front flagged, and let
//! the explorer recommend a configuration.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use cnn2fpga::framework::{weights::build_random, NetworkSpec};
use cnn2fpga::hls::dse::{explore, pareto_front, recommend};
use cnn2fpga::hls::{DirectiveSet, FpgaPart, Precision};

fn main() {
    let net = build_random(&NetworkSpec::paper_usps_small(true), 2016).unwrap();

    let points = explore(
        &net,
        FpgaPart::zynq7020(),
        &[Precision::float32(), Precision::q8_8()],
    );
    let front = pareto_front(&points);

    println!(
        "{:<42} {:>12} {:>8} {:>8} {:>6} {:>7}",
        "configuration", "interval", "DSP", "BRAM", "fits", "pareto"
    );
    println!("{}", "-".repeat(90));
    for (i, p) in points.iter().enumerate() {
        println!(
            "{:<42} {:>12} {:>8} {:>8} {:>6} {:>7}",
            p.label(),
            p.interval_cycles,
            p.dsp,
            p.bram36,
            p.fits,
            if front.contains(&i) { "*" } else { "" }
        );
    }

    let best = recommend(&points).expect("the Test-1 network fits the Zedboard");
    println!(
        "\nrecommended: {} ({} cycles/image = {:.2} ms at 100 MHz, {} DSP)",
        best.label(),
        best.interval_cycles,
        best.interval_cycles as f64 / 100_000.0,
        best.dsp
    );

    // Within the f32 subspace the paper actually explored, its choice
    // is Pareto-efficient (the joint front is dominated by fixed point,
    // which the paper deliberately did not use).
    let f32_points = explore(&net, FpgaPart::zynq7020(), &[Precision::float32()]);
    let f32_front = pareto_front(&f32_points);
    let paper_choice_on_front = f32_points
        .iter()
        .enumerate()
        .any(|(i, p)| f32_front.contains(&i) && p.directives == DirectiveSet::optimized());
    println!(
        "the paper's published choice (dataflow+pipe-conv) is Pareto-efficient within f32: {paper_choice_on_front}"
    );
}
