//! CIFAR-10-class network on hardware — the paper's Test-4 story:
//! a larger RGB network built with *random weights* ("we were more
//! interested in the performance of our framework rather than in the
//! prediction error"), showing that throughput and resource results
//! are weight-independent and that the bigger network still fits the
//! Zedboard but not the Zybo.
//!
//! ```text
//! cargo run --release --example cifar10
//! ```

use cnn2fpga::datasets::CifarLike;
use cnn2fpga::fpga::Board;
use cnn2fpga::framework::{NetworkSpec, WeightSource, Workflow};
use cnn2fpga::platform::ZynqSoc;

fn main() {
    let spec = NetworkSpec::paper_cifar();
    println!(
        "descriptor:\n{}\n",
        spec.to_json().expect("descriptor serializes")
    );

    // The Zybo cannot hold this network (BRAM): show the failure path.
    let mut zybo_spec = spec.clone();
    zybo_spec.board = Board::Zybo;
    match Workflow::new(zybo_spec, WeightSource::Random { seed: 7 }).run() {
        Err(e) => println!("Zybo build fails as expected: {e}\n"),
        Ok(_) => panic!("the CIFAR network should not fit the Zybo"),
    }

    // Zedboard build succeeds.
    let artifacts = Workflow::new(spec.clone(), WeightSource::Random { seed: 7 })
        .run()
        .expect("fits the Zedboard");
    println!("Zedboard build:\n{}", artifacts.report.render());

    // Classify a (scaled-down) test set on both paths.
    let test = CifarLike::default().generate(1000, 3);
    let soc = ZynqSoc::bring_up(&artifacts.network, spec.directives(), Board::Zedboard).unwrap();
    let sw = soc.run_software(&test.images);
    let hw = soc.run_hardware(&test.images);
    assert_eq!(sw.predictions, hw.predictions);
    let err = hw
        .predictions
        .iter()
        .zip(&test.labels)
        .filter(|(p, l)| p != l)
        .count() as f64
        / test.len() as f64;
    println!(
        "1000 images with random weights: error {:.1}% (chance = 90%),\n\
         software {:.1} s vs hardware {:.1} s -> speedup {:.1}x",
        err * 100.0,
        sw.seconds,
        hw.seconds,
        sw.seconds / hw.seconds
    );
}
