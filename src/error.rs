//! The unified error taxonomy of the facade crate: one [`Error`] enum
//! that every layer's typed failure converts into, so binaries and
//! library users can bubble a single type with `?` from the descriptor
//! parser all the way down to the DMA register file.

/// Any failure the cnn2fpga stack can produce, tagged by layer.
#[derive(Debug)]
pub enum Error {
    /// Descriptor parsing/validation failure (`cnn-framework::spec`).
    Spec(cnn_framework::SpecError),
    /// Weight realization failure (`cnn-framework::weights`).
    Weights(cnn_framework::WeightError),
    /// A workflow stage failed (`cnn-framework::workflow`).
    Workflow(cnn_framework::WorkflowError),
    /// Address-map construction failure (`cnn-fpga::address_map`).
    Map(cnn_fpga::MapError),
    /// AXI-Stream transport failure (`cnn-fpga::axi`).
    Stream(cnn_fpga::StreamError),
    /// Device programming/driver failure (`cnn-fpga::device`).
    Device(cnn_fpga::device::DeviceError),
    /// DMA register/transfer failure (`cnn-fpga::dma_regs`).
    Dma(cnn_fpga::DmaError),
    /// Invalid fault-plan configuration (`cnn-fpga::fault`).
    Fault(cnn_fpga::FaultError),
    /// Bitstream implementation failure (`cnn-fpga::bitstream`).
    Bitstream(cnn_fpga::bitstream::BitstreamError),
    /// HLS synthesis/fit failure (`cnn-hls`).
    Hls(cnn_hls::HlsError),
    /// Weights-file parse/checksum failure (`cnn-nn::io`), with the
    /// 1-based line number of the offending line.
    WeightIo(cnn_nn::io::WeightIoError),
    /// Artifact-store failure (`cnn-store`): corruption, missing
    /// artifacts, or an injected filesystem fault.
    Store(cnn_store::StoreError),
    /// Filesystem failure while reading descriptors or writing
    /// artifacts.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Spec(e) => write!(f, "descriptor: {e}"),
            Error::Weights(e) => write!(f, "weights: {e}"),
            Error::Workflow(e) => write!(f, "{e}"),
            Error::Map(e) => write!(f, "address map: {e}"),
            Error::Stream(e) => write!(f, "axi stream: {e}"),
            Error::Device(e) => write!(f, "device: {e}"),
            Error::Dma(e) => write!(f, "dma: {e}"),
            Error::Fault(e) => write!(f, "fault plan: {e}"),
            Error::Bitstream(e) => write!(f, "bitstream: {e}"),
            Error::Hls(e) => write!(f, "hls: {e}"),
            Error::WeightIo(e) => write!(f, "weights file: {e}"),
            Error::Store(e) => write!(f, "store: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Spec(e) => Some(e),
            Error::Weights(e) => Some(e),
            Error::Workflow(e) => Some(e),
            Error::Map(e) => Some(e),
            Error::Stream(e) => Some(e),
            Error::Device(e) => Some(e),
            Error::Dma(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Bitstream(e) => Some(e),
            Error::Hls(e) => Some(e),
            Error::WeightIo(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

macro_rules! from_impl {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for Error {
            fn from(e: $ty) -> Error {
                Error::$variant(e)
            }
        }
    };
}

from_impl!(Spec, cnn_framework::SpecError);
from_impl!(Weights, cnn_framework::WeightError);
from_impl!(Workflow, cnn_framework::WorkflowError);
from_impl!(Map, cnn_fpga::MapError);
from_impl!(Stream, cnn_fpga::StreamError);
from_impl!(Device, cnn_fpga::device::DeviceError);
from_impl!(Dma, cnn_fpga::DmaError);
from_impl!(Fault, cnn_fpga::FaultError);
from_impl!(Bitstream, cnn_fpga::bitstream::BitstreamError);
from_impl!(Hls, cnn_hls::HlsError);
from_impl!(WeightIo, cnn_nn::io::WeightIoError);
from_impl!(Store, cnn_store::StoreError);
from_impl!(Io, std::io::Error);

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_layer_converts_and_displays() {
        let spec = {
            let mut s = cnn_framework::NetworkSpec::paper_usps_small(true);
            s.conv_layers[0].kernel = 99;
            s
        };
        let e: Error = spec.validate().unwrap_err().into();
        assert!(e.to_string().starts_with("descriptor:"), "{e}");
        assert!(e.source().is_some());

        let e: Error = cnn_fpga::DmaError::Timeout(cnn_fpga::DmaChannel::Mm2s).into();
        assert!(e.to_string().contains("MM2S"), "{e}");

        let e: Error = cnn_fpga::FaultError::BadProbability {
            field: "p_drop_beat",
            value: 2.0,
        }
        .into();
        assert!(e.to_string().starts_with("fault plan:"), "{e}");

        let e: Error = cnn_fpga::StreamError::ReceiverDropped.into();
        assert!(e.source().is_some(), "{e}");

        let e: Error =
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing descriptor").into();
        assert!(e.to_string().contains("missing descriptor"), "{e}");

        let e: Error = cnn_nn::io::read_text("not a weights file")
            .unwrap_err()
            .into();
        assert!(e.to_string().starts_with("weights file:"), "{e}");
        assert!(e.source().is_some());

        let e: Error = cnn_store::StoreError::Missing {
            kind: cnn_store::ArtifactKind::Weights,
            name: "realized".into(),
        }
        .into();
        assert!(e.to_string().starts_with("store:"), "{e}");
        assert!(e.to_string().contains("realized"), "{e}");
    }

    #[test]
    fn workflow_failure_bubbles_through_the_umbrella() {
        fn run() -> Result<cnn_framework::WorkflowArtifacts, Error> {
            let mut spec = cnn_framework::NetworkSpec::paper_cifar();
            spec.board = cnn_fpga::Board::Zybo;
            let artifacts =
                cnn_framework::Workflow::new(spec, cnn_framework::WeightSource::Random { seed: 1 })
                    .run()?;
            Ok(artifacts)
        }
        let err = run().unwrap_err();
        assert!(matches!(err, Error::Workflow(_)));
        assert!(err.to_string().contains("workflow failed"), "{err}");
    }
}
