//! `cnn2fpga` — command-line front end of the automation framework
//! (the stand-in for the paper's web application).
//!
//! ```text
//! cnn2fpga boards                               list supported boards
//! cnn2fpga validate <descriptor.json>           check a descriptor (GUI echo)
//! cnn2fpga report   <descriptor.json>           synthesize + print the HLS report
//! cnn2fpga generate <descriptor.json> [opts]    run the full workflow, export artifacts
//!     --weights <network.json>    use trained weights (default: random)
//!     --seed <n>                  random-weight seed (default 2016)
//!     --out <dir>                 output directory (default ./cnn2fpga-out)
//!     --resume                    journal stages in the artifact store and
//!                                 skip any whose inputs are unchanged
//!     --store <dir>               artifact store root (default ./cnn2fpga-store)
//! cnn2fpga train [descriptor.json] [opts]       crash-safe training with per-epoch
//!                                               checkpoints committed to the store
//!     --samples <n>               synthetic training images (default 64)
//!     --epochs <n>                epochs (default 3)
//!     --seed <n>                  init/shuffle seed (default 2016)
//!     --store <dir>               artifact store root (default ./cnn2fpga-store)
//! cnn2fpga store <verify|gc|ls> [--store <dir>] inspect or compact the artifact store
//! cnn2fpga classify [descriptor.json] [opts]    classify on the device, print outcomes
//!     --images <n>                batch size (default 16)
//!     --seed <n>                  weight/fault seed (default 2016)
//!     --fault-rate <r>            transport fault probability (default 0)
//! cnn2fpga trace [descriptor.json] [opts]       traced run: Chrome JSON + Prometheus
//!     --images/--seed/--fault-rate   as for classify
//!     --out <dir>                 trace output directory (default ./cnn2fpga-trace-out)
//! cnn2fpga trace dump [opts]                    drive the batched front-end under load,
//!                                               dump the flight recorder (Chrome JSON)
//!     --images <n>                requests to offer (default 96)
//!     --seed <n>                  weight/arrival seed (default 2016)
//!     --rate-factor <f>           offered load as a multiple of capacity (default 2.0)
//!     --out <dir>                 output directory (default ./cnn2fpga-trace-out)
//! cnn2fpga serve [descriptor.json] [opts]       serve over a fault-tolerant device pool
//!     --images/--seed/--fault-rate   as for classify (rate applies to every device)
//!     --devices <n>               pool size (default 4)
//!     --hostile <i>               make device i abandon everything (chaos mode)
//! cnn2fpga quant [descriptor.json] [opts]       calibrate int8 scales, run the true
//!                                               quantized engine, print the f32-vs-int8
//!                                               accuracy/resource grid per board
//!     --images <n>                evaluation images (default 64)
//!     --cal <n>                   calibration prefix size (default 32)
//!     --seed <n>                  weight/image seed (default 2016)
//!     --store <dir>               also commit the checksummed quantized-weights
//!                                 artifact to the store (round-trip verified)
//! ```

use cnn2fpga::fpga::fault::{FaultPlan, RetryPolicy};
use cnn2fpga::fpga::Board;
use cnn2fpga::framework::{NetworkSpec, WeightSource, Workflow, WorkflowArtifacts};
use cnn2fpga::nn::Network;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cnn2fpga boards\n  cnn2fpga validate <descriptor.json>\n  \
         cnn2fpga report <descriptor.json>\n  \
         cnn2fpga generate <descriptor.json> [--weights net.json] [--seed N] [--out DIR] \
[--resume] [--store DIR]\n  \
         cnn2fpga train [descriptor.json] [--samples N] [--epochs N] [--seed N] [--store DIR]\n  \
         cnn2fpga store <verify|gc|ls> [--store DIR]\n  \
         cnn2fpga classify [descriptor.json] [--images N] [--seed N] [--fault-rate R]\n  \
         cnn2fpga trace [descriptor.json] [--images N] [--seed N] [--fault-rate R] [--out DIR]\n  \
         cnn2fpga trace dump [--images N] [--seed N] [--rate-factor F] [--out DIR]\n  \
         cnn2fpga serve [descriptor.json] [--images N] [--seed N] [--fault-rate R] \
[--devices N] [--hostile I]\n  \
         cnn2fpga quant [descriptor.json] [--images N] [--cal N] [--seed N] [--store DIR]"
    );
    ExitCode::from(2)
}

fn load_spec(path: &str) -> Result<NetworkSpec, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    NetworkSpec::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_boards() -> ExitCode {
    for b in Board::ALL {
        let p = b.part();
        println!(
            "{:<9} {}  (FF {}, LUT {}, LUTRAM {}, BRAM {}, DSP {})",
            b.name(),
            p.name,
            p.ff,
            p.lut,
            p.lutram,
            p.bram36,
            p.dsp
        );
    }
    ExitCode::SUCCESS
}

fn cmd_validate(path: &str) -> ExitCode {
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };
    match spec.validate() {
        Ok(shapes) => {
            println!(
                "descriptor OK: board {}, {} stages",
                spec.board.name(),
                shapes.len()
            );
            for (i, s) in shapes.iter().enumerate() {
                println!("  stage {i}: {s}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_report(path: &str) -> ExitCode {
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Workflow::new(spec, WeightSource::Random { seed: 2016 }).run() {
        Ok(artifacts) => {
            print!("{}", artifacts.report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(path: &str, rest: &[String]) -> ExitCode {
    let mut weights_path: Option<String> = None;
    let mut seed = 2016u64;
    let mut out_dir = PathBuf::from("cnn2fpga-out");
    let mut resume = false;
    let mut store_dir = PathBuf::from("cnn2fpga-store");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--weights" => match it.next() {
                Some(p) => weights_path = Some(p.clone()),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--store" => match it.next() {
                Some(p) => {
                    store_dir = PathBuf::from(p);
                    resume = true;
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };

    let source = match &weights_path {
        Some(p) => {
            let json = match fs::read_to_string(p) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read weights {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let parsed = if p.ends_with(".json") {
                Network::from_json(&json).map_err(|e| e.to_string())
            } else {
                // The line-oriented Torch-style export.
                cnn2fpga::nn::io::read_text_versioned(&json)
                    .map(|(net, version)| {
                        if version == cnn2fpga::nn::io::WeightFormatVersion::V1 {
                            eprintln!(
                                "warning: {p} is a v1 weights file (no checksum) — silent \
                                 corruption of a parseable value goes undetected; re-export \
                                 it to get the v2 trailing checksum"
                            );
                        }
                        net
                    })
                    .map_err(|e| e.to_string())
            };
            match parsed {
                Ok(net) => WeightSource::Trained(Box::new(net)),
                Err(e) => {
                    eprintln!("bad weights file: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => WeightSource::Random { seed },
    };

    let workflow = Workflow::new(spec.clone(), source);
    let artifacts = if resume {
        let mut store = match cnn2fpga::store::Store::open(&store_dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open store {}: {e}", store_dir.display());
                return ExitCode::FAILURE;
            }
        };
        match cnn2fpga::framework::run_resumable(&workflow, &mut store) {
            Ok(out) => {
                println!(
                    "[store] run {}: {} stages executed, {} skipped ({} artifacts in {})",
                    cnn2fpga::store::hash::hex64(out.inputs),
                    out.executed.len(),
                    out.skipped.len(),
                    store.len(),
                    store_dir.display()
                );
                out.artifacts
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match workflow.run() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let descriptor_json = match spec.to_json() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = [
        ("cnn.cpp", artifacts.cpp_source.clone()),
        ("cnn_vivado_hls.tcl", artifacts.tcl.vivado_hls.clone()),
        ("directives.tcl", artifacts.tcl.directives.clone()),
        ("cnn_vivado.tcl", artifacts.tcl.vivado.clone()),
        ("hls_report.txt", artifacts.report.render()),
        ("block_design.dot", artifacts.bitstream.design.to_dot()),
        ("design_1_wrapper.v", artifacts.hdl_wrapper.clone()),
        ("descriptor.json", descriptor_json),
    ];
    for (name, content) in files {
        if let Err(e) = fs::write(out_dir.join(name), content) {
            eprintln!("cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    for line in &artifacts.trace {
        println!("[workflow] {line}");
    }
    println!("artifacts written to {}", out_dir.display());
    ExitCode::SUCCESS
}

/// Options shared by the `classify` and `trace` subcommands.
struct RunOpts {
    descriptor: Option<String>,
    images: usize,
    seed: u64,
    fault_rate: f64,
    out_dir: PathBuf,
}

fn parse_run_opts(rest: &[String], default_out: &str) -> Option<RunOpts> {
    let mut opts = RunOpts {
        descriptor: None,
        images: 16,
        seed: 2016,
        fault_rate: 0.0,
        out_dir: PathBuf::from(default_out),
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--images" => opts.images = it.next().and_then(|s| s.parse().ok())?,
            "--seed" => opts.seed = it.next().and_then(|s| s.parse().ok())?,
            "--fault-rate" => {
                opts.fault_rate = it.next().and_then(|s| s.parse().ok())?;
                if !(0.0..=1.0).contains(&opts.fault_rate) {
                    return None;
                }
            }
            "--out" => opts.out_dir = PathBuf::from(it.next()?),
            p if !p.starts_with("--") && opts.descriptor.is_none() => {
                opts.descriptor = Some(p.to_string());
            }
            _ => return None,
        }
    }
    Some(opts)
}

/// Builds the stack (descriptor or the paper's Test-2 default) and
/// classifies a seeded batch under the requested fault rate.
fn build_and_classify(
    opts: &RunOpts,
) -> Result<
    (
        WorkflowArtifacts,
        cnn2fpga::framework::ClassificationReport,
        usize,
    ),
    String,
> {
    let spec = match &opts.descriptor {
        Some(p) => load_spec(p)?,
        None => NetworkSpec::paper_usps_small(true),
    };
    let artifacts = Workflow::new(spec, WeightSource::Random { seed: opts.seed })
        .run()
        .map_err(|e| e.to_string())?;
    let images = cnn2fpga::datasets::UspsLike::default()
        .generate(opts.images, 8)
        .images;
    let plan = FaultPlan::uniform(opts.seed, opts.fault_rate);
    let report = artifacts.classify_with_recovery(&images, &plan, &RetryPolicy::default());
    Ok((artifacts, report, opts.images))
}

/// The one-line outcome summary (the fix for print-only `FaultStats`).
fn outcome_summary(report: &cnn2fpga::framework::ClassificationReport, n: usize) -> String {
    let f = &report.hardware.faults;
    format!(
        "{n} images: {} clean, {} recovered ({} retries, {} resets), {} abandoned \
         ({} software fallbacks, bit-exact)",
        f.clean,
        f.recovered,
        f.retries,
        f.resets,
        f.abandoned,
        report.fallbacks.len()
    )
}

fn cmd_classify(rest: &[String]) -> ExitCode {
    let opts = match parse_run_opts(rest, "cnn2fpga-trace-out") {
        Some(o) => o,
        None => return usage(),
    };
    match build_and_classify(&opts) {
        Ok((_, report, n)) => {
            println!("{}", outcome_summary(&report, n));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace(rest: &[String]) -> ExitCode {
    let opts = match parse_run_opts(rest, "cnn2fpga-trace-out") {
        Some(o) => o,
        None => return usage(),
    };

    cnn2fpga::trace::enable();
    let (artifacts, report, n) = match build_and_classify(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Energy: integrate the degraded-run power, then charge it back to
    // individual spans in proportion to their simulated cycles.
    let hw = &report.hardware;
    let fault_s = hw.fault_seconds();
    let meter = cnn2fpga::power::EnergyMeter::for_board(Board::Zedboard);
    let energy =
        meter.measure_hardware_degraded(hw.seconds - fault_s, fault_s, &artifacts.report.resources);

    let snapshot = cnn2fpga::trace::snapshot();
    if let Err(e) = fs::create_dir_all(&opts.out_dir) {
        eprintln!("cannot create {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }
    let exports = [
        (
            "trace.json",
            cnn2fpga::trace::export::chrome::to_chrome_json(&snapshot),
        ),
        (
            "metrics.prom",
            cnn2fpga::trace::export::prometheus::to_prometheus_text(&snapshot),
        ),
    ];
    for (name, content) in exports {
        if let Err(e) = fs::write(opts.out_dir.join(name), content) {
            eprintln!("cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("per-span latency (cycles = simulated Zynq fabric clock):\n");
    print!(
        "{}",
        cnn2fpga::trace::export::table::to_latency_table(&snapshot)
    );
    println!(
        "\nper-span energy attribution at {:.2} W average board power:\n",
        energy.reading.total_watts
    );
    let rows = cnn2fpga::power::attribute_energy(&snapshot, energy.reading.total_watts);
    print!("{}", cnn2fpga::power::energy_table(&rows));
    println!("\n{}", outcome_summary(&report, n));
    println!(
        "trace artifacts written to {} (trace.json: load in Perfetto or chrome://tracing; \
         metrics.prom: Prometheus text exposition)",
        opts.out_dir.display()
    );
    ExitCode::SUCCESS
}

/// `trace dump` — drives the batched serving front-end under a
/// deterministic overload (trained-equivalent weights, seeded Poisson
/// arrivals, one jittery device) so the always-on flight recorder has
/// per-request history, then dumps the ring as Chrome-trace JSON. The
/// dump is self-checked against the crate's own strict JSON parser
/// before it is committed, so a file that lands on disk always loads
/// in Perfetto / `chrome://tracing`.
fn cmd_trace_dump(rest: &[String]) -> ExitCode {
    use cnn2fpga::serve::{Arrival, FrontendConfig, HedgeConfig, PoolConfig, SloConfig};
    use cnn2fpga::store::hash::SplitMix64;
    use cnn2fpga::tensor::Tensor;

    let mut images_n = 96usize;
    let mut seed = 2016u64;
    let mut factor = 2.0f64;
    let mut out_dir = PathBuf::from("cnn2fpga-trace-out");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--images" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => images_n = n,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--rate-factor" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) if f > 0.0 => factor = f,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // Deterministic stack: no ambient RNG anywhere in this subcommand,
    // so the same invocation always produces the same dump.
    let spec = NetworkSpec::paper_usps_small(true);
    let net = match cnn2fpga::framework::weights::build_deterministic(&spec, seed) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let artifacts = match Workflow::new(spec, WeightSource::Trained(Box::new(net))).run() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let shape = artifacts.network.input_shape();
    let mut img_rng = SplitMix64::new(seed ^ 0xF119_47D0);
    let images: Vec<Tensor> = (0..images_n)
        .map(|_| {
            let data: Vec<f32> = (0..shape.len())
                .map(|_| (img_rng.next_f64() * 2.0 - 1.0) as f32)
                .collect();
            Tensor::from_vec(shape, data)
        })
        .collect();

    let policy = RetryPolicy::default();
    let frontend_cfg = FrontendConfig {
        tenant_weights: vec![2, 1],
        // Burn windows sized to warm within the default request count.
        slo: SloConfig {
            fast_window: 16,
            slow_window: 48,
            ..SloConfig::default()
        },
        ..FrontendConfig::default()
    };
    let pool_cfg = PoolConfig {
        hedge: HedgeConfig {
            mean_factor: 1.05,
            ..HedgeConfig::default()
        },
        ..PoolConfig::default()
    };

    // Calibrate per-request service time with a solo request, then
    // offer Poisson arrivals at `factor` times that capacity.
    let calib = [Arrival {
        at: 0,
        tenant: 0,
        budget: u64::MAX / 2,
        image_id: 0,
    }];
    let plans = vec![FaultPlan::none(), FaultPlan::none()];
    let svc = match artifacts.serve_with_frontend(
        &images[..1],
        &calib,
        &plans,
        &policy,
        PoolConfig::default(),
        frontend_cfg.clone(),
    ) {
        Ok(r) => r.report.completed[0]
            .latency()
            .saturating_sub(frontend_cfg.batch_deadline)
            .max(1),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mean_gap = svc as f64 / factor;
    let mut gap_rng = SplitMix64::new(seed ^ 0xA881_0A4D);
    let mut t = 0.0f64;
    let arrivals: Vec<Arrival> = (0..images_n)
        .map(|i| {
            let u = gap_rng.next_f64().max(1e-12);
            t += -u.ln() * mean_gap;
            let tenant = i % 2;
            Arrival {
                at: t as u64,
                tenant,
                budget: if tenant == 0 { 8 * svc } else { 32 * svc },
                image_id: i,
            }
        })
        .collect();

    // Device 0 carries deterministic stall jitter so recovered DMA
    // attempts and hedges appear on the timelines.
    let plans = vec![FaultPlan::stall_jitter(seed, 16), FaultPlan::none()];
    let r = match artifacts.serve_with_frontend(
        &images,
        &arrivals,
        &plans,
        &policy,
        pool_cfg,
        frontend_cfg,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Dump the ring as it stands — admission, queueing, batching,
    // dispatch, DMA attempts, hedges, sheds and any SLO breach marker.
    let records = cnn2fpga::trace::flight().snapshot();
    let dump = cnn2fpga::trace::export::chrome::flight_to_chrome_json(&records);
    let parsed = match cnn2fpga::trace::export::json::parse(&dump) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("internal error: flight dump failed its own JSON self-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = parsed
        .get("traceEvents")
        .and_then(cnn2fpga::trace::export::json::Json::as_array)
        .map_or(0, <[_]>::len);

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join("flight.json");
    if let Err(e) = cnn2fpga::store::atomic_write(&path, dump.as_bytes()) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }

    let rep = &r.report;
    println!(
        "{} offered at {factor:.1}x capacity ({svc} cycles/request): {} admitted, {} shed \
         ({} deadline, {} queue-full), {} slo breach edge(s), final tier {}",
        images_n,
        rep.admitted,
        rep.shed_deadline + rep.shed_queue_full,
        rep.shed_deadline,
        rep.shed_queue_full,
        rep.slo_breaches,
        rep.final_tier.as_str(),
    );
    println!(
        "flight recorder: {} records -> {} Chrome-trace events (self-checked), written to {}",
        records.len(),
        events,
        path.display()
    );
    ExitCode::SUCCESS
}

fn cmd_serve(rest: &[String]) -> ExitCode {
    // `serve`-only options first, then the shared run options.
    let mut devices = 4usize;
    let mut hostile: Option<usize> = None;
    let mut shared: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--devices" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => devices = n,
                _ => return usage(),
            },
            "--hostile" => match it.next().and_then(|s| s.parse().ok()) {
                Some(i) => hostile = Some(i),
                None => return usage(),
            },
            other => shared.push(other.to_string()),
        }
    }
    let opts = match parse_run_opts(&shared, "cnn2fpga-trace-out") {
        Some(o) => o,
        None => return usage(),
    };
    if hostile.is_some_and(|i| i >= devices) {
        eprintln!("--hostile index must be below --devices");
        return ExitCode::FAILURE;
    }

    let spec = match &opts.descriptor {
        Some(p) => match load_spec(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("invalid descriptor: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => NetworkSpec::paper_usps_small(true),
    };
    let artifacts = match Workflow::new(spec, WeightSource::Random { seed: opts.seed }).run() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let images = cnn2fpga::datasets::UspsLike::default()
        .generate(opts.images, 8)
        .images;
    // One plan per device, each with its own derived seed so device
    // fault streams are independent; the hostile device (chaos mode)
    // abandons every image it is handed.
    let plans: Vec<FaultPlan> = (0..devices)
        .map(|i| {
            if hostile == Some(i) {
                FaultPlan::uniform(opts.seed ^ 0xC0FFEE ^ i as u64, 1.0)
            } else {
                FaultPlan::uniform(opts.seed.wrapping_add(i as u64), opts.fault_rate)
            }
        })
        .collect();
    let report = match artifacts.serve_with_pool(
        &images,
        &plans,
        &RetryPolicy::default(),
        cnn2fpga::serve::PoolConfig::default(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for line in &report.trace {
        println!("[serve] {line}");
    }
    println!(
        "availability {:.4} ({} hardware, {} fallback, all predictions bit-exact)",
        report.report.availability(),
        report.report.hw_served,
        report.report.fallback_served,
    );
    ExitCode::SUCCESS
}

/// Deterministic synthetic training set shaped for `spec` — class
/// structure comes from per-class base patterns plus per-sample jitter,
/// all drawn from a SplitMix64 stream so `train` needs no ambient RNG.
fn deterministic_dataset(
    spec: &NetworkSpec,
    samples: usize,
    seed: u64,
) -> cnn2fpga::datasets::Dataset {
    use cnn2fpga::store::hash::{mix_seed, SplitMix64};
    let shape = spec.input_shape();
    let classes = spec.classes().unwrap_or(10);
    let images = (0..samples)
        .map(|i| {
            let class = i % classes;
            let mut base = SplitMix64::new(mix_seed(seed, class as u64));
            let mut jitter = SplitMix64::new(mix_seed(seed ^ 0x5A17, i as u64));
            cnn2fpga::tensor::Tensor::from_fn(shape, |_, _, _| {
                let b = (base.next_f64() * 2.0 - 1.0) as f32;
                let j = (jitter.next_f64() * 2.0 - 1.0) as f32;
                b + 0.25 * j
            })
        })
        .collect();
    let labels = (0..samples).map(|i| i % classes).collect();
    cnn2fpga::datasets::Dataset::new("deterministic", images, labels, classes)
}

fn cmd_train(rest: &[String]) -> ExitCode {
    let mut descriptor: Option<String> = None;
    let mut samples = 64usize;
    let mut epochs = 3usize;
    let mut seed = 2016u64;
    let mut store_dir = PathBuf::from("cnn2fpga-store");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--samples" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => samples = n,
                _ => return usage(),
            },
            "--epochs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => epochs = n,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--store" => match it.next() {
                Some(p) => store_dir = PathBuf::from(p),
                None => return usage(),
            },
            p if !p.starts_with("--") && descriptor.is_none() => {
                descriptor = Some(p.to_string());
            }
            _ => return usage(),
        }
    }

    let spec = match &descriptor {
        Some(p) => match load_spec(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("invalid descriptor: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => NetworkSpec::paper_usps_small(true),
    };
    let dataset = deterministic_dataset(&spec, samples, seed ^ 0xDA7A);
    let source = WeightSource::TrainOnline {
        dataset: dataset.clone(),
        config: cnn2fpga::nn::TrainConfig {
            epochs,
            ..Default::default()
        },
        seed,
    };
    let workflow = Workflow::new(spec, source);
    let mut store = match cnn2fpga::store::Store::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open store {}: {e}", store_dir.display());
            return ExitCode::FAILURE;
        }
    };
    match cnn2fpga::framework::run_resumable(&workflow, &mut store) {
        Ok(out) => {
            for line in &out.trace {
                println!("[train] {line}");
            }
            let err = out
                .artifacts
                .network
                .prediction_error(&dataset.images, &dataset.labels);
            println!(
                "training-set error {err:.3}; {} stages executed, {} skipped; \
                 store {} holds {} artifacts (re-run to resume/skip)",
                out.executed.len(),
                out.skipped.len(),
                store_dir.display(),
                store.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_store(rest: &[String]) -> ExitCode {
    let action = match rest.first().map(String::as_str) {
        Some(a @ ("verify" | "gc" | "ls")) => a,
        _ => return usage(),
    };
    let mut store_dir = PathBuf::from("cnn2fpga-store");
    let mut it = rest[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => match it.next() {
                Some(p) => store_dir = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let mut store = match cnn2fpga::store::Store::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open store {}: {e}", store_dir.display());
            return ExitCode::FAILURE;
        }
    };
    match action {
        "verify" => match store.verify_all() {
            Ok(report) => {
                println!(
                    "{}: {} verified, {} corrupt, {} unreferenced objects, \
                     {} journal lines dropped",
                    store_dir.display(),
                    report.verified,
                    report.corrupt.len(),
                    report.unreferenced,
                    report.dropped_journal_lines
                );
                for c in &report.corrupt {
                    eprintln!("corrupt: {} {} ({})", c.kind.name(), c.name, c.error);
                }
                if report.all_ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("verify failed: {e}");
                ExitCode::FAILURE
            }
        },
        "gc" => match store.gc() {
            Ok(report) => {
                println!(
                    "{}: {} live artifacts, removed {} unreferenced objects and {} temp files",
                    store_dir.display(),
                    report.live,
                    report.removed_objects,
                    report.removed_temps
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gc failed: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            let mut artifacts = store.artifacts();
            artifacts.sort();
            for (kind, name, id) in artifacts {
                println!("{:<10} {id}  {name}", kind.name());
            }
            ExitCode::SUCCESS
        }
    }
}

/// `quant` — deterministic weights, deterministic images, calibrated
/// int8 scales, and then the real thing: the f32 network and the true
/// int8 engine classify the same set, and both precisions are bound to
/// both boards so the accuracy delta sits next to the resource delta.
fn cmd_quant(rest: &[String]) -> ExitCode {
    use cnn2fpga::framework::report::{quant_comparison_rows, render_quant_table};
    use cnn2fpga::nn::QuantNetwork;
    use cnn2fpga::store::hash::SplitMix64;
    use cnn2fpga::tensor::Tensor;

    let mut descriptor: Option<String> = None;
    let mut images_n = 64usize;
    let mut cal_n = 32usize;
    let mut seed = 2016u64;
    let mut store_dir: Option<PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--images" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => images_n = n,
                _ => return usage(),
            },
            "--cal" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cal_n = n,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--store" => match it.next() {
                Some(p) => store_dir = Some(PathBuf::from(p)),
                None => return usage(),
            },
            p if !p.starts_with("--") && descriptor.is_none() => {
                descriptor = Some(p.to_string());
            }
            _ => return usage(),
        }
    }

    let spec = match &descriptor {
        Some(p) => match load_spec(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("invalid descriptor: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => NetworkSpec::paper_usps_small(true),
    };
    let net = match cnn2fpga::framework::weights::build_deterministic(&spec, seed) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let shape = net.input_shape();
    let classes = net.classes();
    let mut rng = SplitMix64::new(seed ^ 0x0117_C1A5);
    let images: Vec<Tensor> = (0..images_n)
        .map(|_| {
            let data: Vec<f32> = (0..shape.len())
                .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
                .collect();
            Tensor::from_vec(shape, data)
        })
        .collect();
    let labels: Vec<usize> = (0..images_n).map(|i| i % classes).collect();
    let name = descriptor
        .as_deref()
        .map_or("default", |p| p.rsplit('/').next().unwrap_or(p));

    let rows = quant_comparison_rows(
        name,
        &net,
        &spec.directives(),
        &images[..cal_n.min(images_n)],
        &images,
        &labels,
    );
    print!("{}", render_quant_table(&rows));

    let quant = QuantNetwork::quantize(&net, &images[..cal_n.min(images_n)]);
    let f32_preds: Vec<usize> = images.iter().map(|t| net.predict(t)).collect();
    let q_preds = quant.predict_batch(&images);
    let agree = f32_preds
        .iter()
        .zip(&q_preds)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\ntop-1 agreement over {images_n} images: {agree}/{images_n} \
         (calibrated on the first {})",
        cal_n.min(images_n)
    );

    if let Some(dir) = store_dir {
        let mut store = match cnn2fpga::store::Store::open(&dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open store {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        let text = quant.to_text();
        // The format carries its own checksum; prove the committed
        // bytes parse back to the identical network before reporting.
        match QuantNetwork::from_text(&text) {
            Ok(back) if back == quant => {}
            Ok(_) => {
                eprintln!("internal error: quantized round-trip produced a different network");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("internal error: quantized round-trip failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        match store.put(
            cnn2fpga::store::ArtifactKind::Quant,
            "quantized",
            text.as_bytes(),
        ) {
            Ok(id) => println!(
                "quantized network committed to {} as quant/quantized ({id}, \
                 checksummed, round-trip verified)",
                dir.display()
            ),
            Err(e) => {
                eprintln!("cannot store quantized network: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("boards") => cmd_boards(),
        Some("validate") => match args.get(1) {
            Some(p) => cmd_validate(p),
            None => usage(),
        },
        Some("report") => match args.get(1) {
            Some(p) => cmd_report(p),
            None => usage(),
        },
        Some("generate") => match args.get(1) {
            Some(p) => cmd_generate(p, &args[2..]),
            None => usage(),
        },
        Some("train") => cmd_train(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("trace") if args.get(1).map(String::as_str) == Some("dump") => {
            cmd_trace_dump(&args[2..])
        }
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("quant") => cmd_quant(&args[1..]),
        _ => usage(),
    }
}
