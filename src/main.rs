//! `cnn2fpga` — command-line front end of the automation framework
//! (the stand-in for the paper's web application).
//!
//! ```text
//! cnn2fpga boards                               list supported boards
//! cnn2fpga validate <descriptor.json>           check a descriptor (GUI echo)
//! cnn2fpga report   <descriptor.json>           synthesize + print the HLS report
//! cnn2fpga generate <descriptor.json> [opts]    run the full workflow, export artifacts
//!     --weights <network.json>    use trained weights (default: random)
//!     --seed <n>                  random-weight seed (default 2016)
//!     --out <dir>                 output directory (default ./cnn2fpga-out)
//! ```

use cnn2fpga::fpga::Board;
use cnn2fpga::framework::{NetworkSpec, WeightSource, Workflow};
use cnn2fpga::nn::Network;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cnn2fpga boards\n  cnn2fpga validate <descriptor.json>\n  \
         cnn2fpga report <descriptor.json>\n  \
         cnn2fpga generate <descriptor.json> [--weights net.json] [--seed N] [--out DIR]"
    );
    ExitCode::from(2)
}

fn load_spec(path: &str) -> Result<NetworkSpec, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    NetworkSpec::from_json(&json).map_err(|e| e.to_string())
}

fn cmd_boards() -> ExitCode {
    for b in Board::ALL {
        let p = b.part();
        println!(
            "{:<9} {}  (FF {}, LUT {}, LUTRAM {}, BRAM {}, DSP {})",
            b.name(),
            p.name,
            p.ff,
            p.lut,
            p.lutram,
            p.bram36,
            p.dsp
        );
    }
    ExitCode::SUCCESS
}

fn cmd_validate(path: &str) -> ExitCode {
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };
    match spec.validate() {
        Ok(shapes) => {
            println!("descriptor OK: board {}, {} stages", spec.board.name(), shapes.len());
            for (i, s) in shapes.iter().enumerate() {
                println!("  stage {i}: {s}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_report(path: &str) -> ExitCode {
    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Workflow::new(spec, WeightSource::Random { seed: 2016 }).run() {
        Ok(artifacts) => {
            print!("{}", artifacts.report.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_generate(path: &str, rest: &[String]) -> ExitCode {
    let mut weights_path: Option<String> = None;
    let mut seed = 2016u64;
    let mut out_dir = PathBuf::from("cnn2fpga-out");
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--weights" => match it.next() {
                Some(p) => weights_path = Some(p.clone()),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_dir = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let spec = match load_spec(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };

    let source = match &weights_path {
        Some(p) => {
            let json = match fs::read_to_string(p) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot read weights {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let parsed = if p.ends_with(".json") {
                Network::from_json(&json).map_err(|e| e.to_string())
            } else {
                // The line-oriented Torch-style export.
                cnn2fpga::nn::io::read_text(&json)
            };
            match parsed {
                Ok(net) => WeightSource::Trained(Box::new(net)),
                Err(e) => {
                    eprintln!("bad weights file: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => WeightSource::Random { seed },
    };

    let artifacts = match Workflow::new(spec.clone(), source).run() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let descriptor_json = match spec.to_json() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize descriptor: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = [
        ("cnn.cpp", artifacts.cpp_source.clone()),
        ("cnn_vivado_hls.tcl", artifacts.tcl.vivado_hls.clone()),
        ("directives.tcl", artifacts.tcl.directives.clone()),
        ("cnn_vivado.tcl", artifacts.tcl.vivado.clone()),
        ("hls_report.txt", artifacts.report.render()),
        ("block_design.dot", artifacts.bitstream.design.to_dot()),
        ("design_1_wrapper.v", artifacts.hdl_wrapper.clone()),
        ("descriptor.json", descriptor_json),
    ];
    for (name, content) in files {
        if let Err(e) = fs::write(out_dir.join(name), content) {
            eprintln!("cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }

    for line in &artifacts.trace {
        println!("[workflow] {line}");
    }
    println!("artifacts written to {}", out_dir.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("boards") => cmd_boards(),
        Some("validate") => match args.get(1) {
            Some(p) => cmd_validate(p),
            None => usage(),
        },
        Some("report") => match args.get(1) {
            Some(p) => cmd_report(p),
            None => usage(),
        },
        Some("generate") => match args.get(1) {
            Some(p) => cmd_generate(p, &args[2..]),
            None => usage(),
        },
        _ => usage(),
    }
}
