#![warn(missing_docs)]

//! # cnn2fpga
//!
//! A full-stack Rust reproduction of *"On the Automation of High Level
//! Synthesis of Convolutional Neural Networks"* (Del Sozzo, Solazzo,
//! Miele, Santambrogio — IPDPS Workshops 2016): a framework that turns
//! a high-level JSON description of an offline-trained CNN into a
//! complete FPGA build — synthesizable C++, Vivado tcl scripts, an HLS
//! schedule and resource binding, the Fig.-5 block design, a bitstream
//! and a programmed (simulated) Zynq device — and reproduces the
//! paper's entire evaluation (Tables I–II, Figs. 1–6).
//!
//! This facade crate re-exports the workspace's layers:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`tensor`] | `cnn-tensor` | dense tensors + CNN kernels (Eqs. 1–7) |
//! | [`nn`] | `cnn-nn` | layers, networks, SGD training, serialization |
//! | [`datasets`] | `cnn-datasets` | synthetic USPS / CIFAR-10 substitutes |
//! | [`hls`] | `cnn-hls` | loop-nest IR, scheduler, binder, C++/tcl codegen |
//! | [`fpga`] | `cnn-fpga` | boards, block design, AXI/DMA sim, IP core, bitstream |
//! | [`platform`] | `cnn-platform` | ARM Cortex-A9 timing model, SoC composition |
//! | [`power`] | `cnn-power` | power models + energy meter |
//! | [`framework`] | `cnn-framework` | JSON descriptors, Fig.-3 workflow, experiments |
//! | [`serve`] | `cnn-serve` | fault-tolerant multi-device pool: breakers, budgets, hedging |
//! | [`store`] | `cnn-store` | content-addressed artifact store, journal, fs fault injection |
//! | [`trace`] | `cnn-trace` | spans, counters, histograms + Chrome/Prometheus exporters |
//! | [`error`] | (this crate) | the unified [`Error`] taxonomy over every layer |
//!
//! ## Quick taste
//!
//! ```
//! use cnn2fpga::framework::{NetworkSpec, WeightSource, Workflow};
//!
//! // The descriptor the paper's web GUI would produce:
//! let spec = NetworkSpec::paper_usps_small(true);
//! let artifacts = Workflow::new(spec, WeightSource::Random { seed: 1 })
//!     .run()
//!     .expect("the paper's network fits the Zedboard");
//! assert!(artifacts.cpp_source.contains("int cnn("));
//! assert!(artifacts.report.resources.fits());
//! ```

pub mod error;

pub use cnn_datasets as datasets;
pub use cnn_fpga as fpga;
pub use cnn_framework as framework;
pub use cnn_hls as hls;
pub use cnn_nn as nn;
pub use cnn_platform as platform;
pub use cnn_power as power;
pub use cnn_serve as serve;
pub use cnn_store as store;
pub use cnn_tensor as tensor;
pub use cnn_trace as trace;
pub use error::Error;
