#!/usr/bin/env bash
# The canonical pre-merge check: everything a change must pass before
# it lands. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --all -- --check =="
cargo fmt --all -- --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== crash_sweep: every crash point must leave old-or-new state =="
cargo run --release -p cnn-bench --bin crash_sweep -- --quick

echo "== hot_path --smoke: blocked GEMM >=2x scalar on Test-4, bit-identical =="
# The binary exits nonzero if any blocked result differs from the
# im2col reference by a single bit or the Test-4 speedup gate fails.
# --out keeps the smoke numbers away from the committed BENCH file.
cargo run --release -p cnn-bench --bin hot_path -- --smoke --out target/BENCH_hotpath_smoke.json

echo "== quant_bench --smoke: int8 GEMM >=2x f32 on Test-4, error delta <=1pp, bit-identical across tiers =="
# Calibrated int8 engine vs the f32 blocked GEMM; the binary exits
# nonzero if the int8 kernel drops below 2x on either Test-4 shape,
# if any paper network's top-1 error moves more than 1 percentage
# point under quantization, or if any SIMD tier, rerun, or batched
# inference differs from the scalar reference by a single bit.
cargo run --release -p cnn-bench --bin quant_bench -- --smoke --out target/BENCH_quant_smoke.json

echo "== load_gen --smoke: overload SLO (shed>0, bounded queue, >=99% deadline attainment, bit-exact) =="
# Open-loop Poisson load at 0.5x/0.9x/2x of measured capacity; the
# binary exits nonzero if the 2x cell fails to shed, the queue
# exceeds its cap, <99% of admitted requests meet their deadline,
# or any served prediction differs from the single-image reference.
# The 2x cell must also breach the SLO burn monitor, auto-capture a
# flight-recorder dump, and that dump must reconstruct a shed and a
# hedged request timeline — verified in-process before it is written.
cargo run --release -p cnn-bench --bin load_gen -- --smoke --out target/BENCH_loadgen_smoke.json

echo "== corruption_sweep --smoke: SDC defense ladder (silence proof, bounded escapes, recovery latency) =="
# Seeded SEU injection across rate x detector-config cells; the
# binary exits nonzero if the upsets are not transport-silent, if a
# detectors-off cell fires anything (or fails to skew answers), if a
# detector-on cell misses the corruption or exceeds its escape gate
# (zero escapes under full attestation), if any detect->rejoin
# recovery overruns its cycle budget, or if the flight recorder
# cannot reconstruct a full incident timeline under one trace id.
cargo run --release -p cnn-bench --bin corruption_sweep -- --smoke --out target/BENCH_corruption_smoke.json

echo "== trace_overhead --smoke: instrumented Test-4 inference within 5% of bare =="
# Interleaved traced/untraced medians on the zero-alloc infer engine;
# the binary exits nonzero if the per-request observability kit
# (span + request ctx + flight stamps + metrics) costs more than
# 5% (+20us jitter floor) or perturbs the prediction.
cargo run --release -p cnn-bench --bin trace_overhead -- --smoke --out target/BENCH_traceoverhead_smoke.json

echo "== cargo doc: public API docs must build warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== rollout_sweep --smoke: zero-downtime rollout (zero dropped, old-or-new at every crash point, rollback bit-exact) =="
# Four scenarios (clean / SEU-during-swap / shipped regression /
# hostile release) x crash-point cells; the binary exits nonzero if
# any request is dropped or answered wrongly, a clean rollout dips
# below 99.9% mid-flight availability, a crash cell resumes with a
# torn fleet or misses its terminal phase, the regression scenario
# routes a poisoned answer to traffic, or the hostile release
# promotes instead of tripping the SLO rollback.
cargo run --release -p cnn-bench --bin rollout_sweep -- --smoke --out target/BENCH_rollout_smoke.json

echo "ci: all green"
