#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Usage: scripts/reproduce.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."
QUICK="${1:-}"

mkdir -p results
echo "== Table I (this is the long one) =="
cargo run --release -p cnn-bench --bin table1 -- $QUICK | tee results/table1.txt
echo "== Table II =="
cargo run --release -p cnn-bench --bin table2 | tee results/table2.txt
for fig in fig1_structure fig2_filters fig3_workflow fig4_options fig5_block_design fig6_datasets; do
  echo "== $fig =="
  cargo run --release -p cnn-bench --bin "$fig" -- $QUICK > "results/$fig.txt"
  echo "written to results/$fig.txt"
done
echo "done; see results/ and EXPERIMENTS.md"
