//! Property tests of the span machinery: for any program of nested
//! spans, cycle advances and instants — across any number of threads —
//! the recorded journal is *well-formed*: every exit matches an enter
//! under stack discipline, and both clocks are monotone per thread.
//!
//! The tests share the process-global recorder, so each case runs the
//! whole scenario under a fresh `reset()` inside one `#[test]` (proptest
//! drives the cases sequentially within it).

// The minimal typecheck-only proptest stub expands `proptest!` bodies
// to nothing, leaving the suite's imports and generators unused there.
#![allow(dead_code, unused_imports)]

use cnn_trace::{Event, EventKind};
use proptest::prelude::*;
use std::sync::Mutex;

// The recorder is process-global and both proptests reset it; cargo
// runs #[test] fns concurrently, so serialize them.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// One step of a random instrumentation program.
#[derive(Clone, Debug)]
enum Op {
    /// Open a span and run a nested program inside it.
    Span(u8, Vec<Op>),
    /// Advance the simulated cycle clock.
    Advance(u16),
    /// Record an instant event.
    Instant(u8),
}

fn op_strategy(depth: u32) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0u16..500).prop_map(Op::Advance),
        (0u8..5).prop_map(Op::Instant),
        (0u8..5).prop_map(|n| Op::Span(n, vec![])),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (0u8..5, prop::collection::vec(inner, 0..4)).prop_map(|(n, body)| Op::Span(n, body))
    })
}

fn run_program(ops: &[Op]) {
    for op in ops {
        match op {
            Op::Span(n, body) => {
                let _guard = cnn_trace::span_lazy("prop", || format!("span{n}").into());
                run_program(body);
            }
            Op::Advance(n) => cnn_trace::advance_cycles(*n as u64),
            Op::Instant(n) => cnn_trace::instant("prop", format!("instant{n}")),
        }
    }
}

/// Checks journal well-formedness for one thread's event stream:
/// stack discipline (each exit names the innermost open span), clock
/// monotonicity, and full balance (every enter closed).
fn check_thread_stream(thread: u64, events: &[&Event]) {
    let mut stack: Vec<&Event> = Vec::new();
    let mut last_wall = 0u64;
    let mut last_cycles = 0u64;
    for ev in events {
        assert!(
            ev.wall_ns >= last_wall,
            "thread {thread}: wall clock went backwards ({} < {last_wall})",
            ev.wall_ns
        );
        assert!(
            ev.cycles >= last_cycles,
            "thread {thread}: cycle clock went backwards ({} < {last_cycles})",
            ev.cycles
        );
        last_wall = ev.wall_ns;
        last_cycles = ev.cycles;
        match ev.kind {
            EventKind::Enter => stack.push(ev),
            EventKind::Exit => {
                let enter = stack.pop().unwrap_or_else(|| {
                    panic!("thread {thread}: exit '{}' with empty stack", ev.name)
                });
                assert_eq!(
                    (enter.cat, &enter.name),
                    (ev.cat, &ev.name),
                    "thread {thread}: exit does not match innermost enter"
                );
                assert!(ev.wall_ns >= enter.wall_ns);
                assert!(ev.cycles >= enter.cycles);
            }
            EventKind::Instant => {}
        }
    }
    assert!(
        stack.is_empty(),
        "thread {thread}: {} spans left open after the program finished",
        stack.len()
    );
}

fn check_snapshot(snapshot: &cnn_trace::TraceSnapshot) {
    let mut threads: Vec<u64> = snapshot.events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let stream: Vec<&Event> = snapshot.events.iter().filter(|e| e.thread == t).collect();
        check_thread_stream(t, &stream);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn span_trees_are_well_formed(program in prop::collection::vec(op_strategy(3), 0..8)) {
        let _serial = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        cnn_trace::enable();
        cnn_trace::reset();
        run_program(&program);
        check_snapshot(&cnn_trace::snapshot());
    }

    #[test]
    fn span_trees_are_well_formed_across_threads(
        programs in prop::collection::vec(prop::collection::vec(op_strategy(2), 0..6), 1..4)
    ) {
        let _serial = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        cnn_trace::enable();
        cnn_trace::reset();
        let handles: Vec<_> = programs
            .into_iter()
            .map(|p| std::thread::spawn(move || run_program(&p)))
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = cnn_trace::snapshot();
        check_snapshot(&snap);
        // Aggregation never loses pairs: total enters == total exits
        // == sum of per-summary counts (the journal is large enough
        // that nothing was evicted in these programs).
        prop_assert_eq!(snap.dropped, 0);
        let enters = snap.events.iter().filter(|e| e.kind == EventKind::Enter).count() as u64;
        let exits = snap.events.iter().filter(|e| e.kind == EventKind::Exit).count() as u64;
        prop_assert_eq!(enters, exits);
        let summed: u64 = snap.span_summaries().iter().map(|s| s.count).sum();
        prop_assert_eq!(summed, enters);
    }
}
