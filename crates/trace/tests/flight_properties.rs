//! Property coverage for the flight-recorder ring under wraparound.
//!
//! The recorder's contract has two halves that only matter once the
//! ring wraps: **overwrite-oldest** (a snapshot returns exactly the
//! newest `capacity` records, oldest first) and **record integrity**
//! (a snapshot never returns a torn record, even while writers are
//! overwriting the slot being read). The unit tests in `flight.rs`
//! exercise both on a 64-slot ring; these properties push past the
//! production [`FLIGHT_CAPACITY`] (2^14) from multiple threads.

// The minimal typecheck-only proptest stub expands `proptest!` bodies
// to nothing, leaving the suite's imports and helpers unused there.
#![allow(dead_code, unused_imports)]

use cnn_trace::{FlightRecorder, FlightStage, FLIGHT_CAPACITY};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// Encodes `(thread, index)` into one tag so a decoded record can be
/// attributed; the same tag lands in every word (the torn-read trap).
fn tag(thread: u64, i: u64) -> u64 {
    thread * 0x1_0000_0000 + i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-writer wraparound: after `n` records into a `cap` ring,
    /// the snapshot is exactly the newest `min(n, cap)` tickets, in
    /// ticket order, and the total-written counter never loses one.
    #[test]
    fn overwrite_oldest_keeps_exactly_the_newest_window(
        cap in 1usize..=96,
        n in 0u64..=400,
    ) {
        let r = FlightRecorder::with_capacity(cap);
        for i in 0..n {
            r.record(i, FlightStage::Dispatch, i * 3, i * 7);
        }
        prop_assert_eq!(r.recorded(), n);
        let snap = r.snapshot();
        let kept = n.min(cap as u64);
        prop_assert_eq!(snap.len() as u64, kept);
        for (k, rec) in snap.iter().enumerate() {
            let ticket = n - kept + k as u64;
            prop_assert_eq!(rec.trace_id, ticket);
            prop_assert_eq!(rec.clock, ticket * 3);
            prop_assert_eq!(rec.arg, ticket * 7);
        }
    }

    /// Multi-writer wraparound on small rings: every surviving record
    /// is untorn (tag equality across all words) and records from one
    /// thread appear in program order, because tickets are monotonic.
    #[test]
    fn concurrent_wraparound_preserves_integrity_and_per_thread_order(
        cap in 2usize..=48,
        per_thread in 1u64..=600,
        threads in 2u64..=4,
    ) {
        let r = Arc::new(FlightRecorder::with_capacity(cap));
        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        let tag = tag(t, i);
                        r.record(tag, FlightStage::CanaryProbe, tag, tag);
                    }
                })
            })
            .collect();
        // Concurrent readers must never observe a torn record.
        for _ in 0..20 {
            for rec in r.snapshot() {
                prop_assert_eq!(rec.trace_id, rec.clock);
                prop_assert_eq!(rec.trace_id, rec.arg);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        prop_assert_eq!(r.recorded(), threads * per_thread);
        let snap = r.snapshot();
        prop_assert_eq!(snap.len() as u64, (threads * per_thread).min(cap as u64));
        let mut last_i = vec![None::<u64>; threads as usize];
        for rec in &snap {
            prop_assert_eq!(rec.trace_id, rec.clock);
            prop_assert_eq!(rec.trace_id, rec.arg);
            let t = (rec.trace_id / 0x1_0000_0000) as usize;
            let i = rec.trace_id % 0x1_0000_0000;
            prop_assert!(t < threads as usize, "tag from an unknown thread");
            prop_assert!(i < per_thread, "tag beyond the written range");
            if let Some(prev) = last_i[t] {
                prop_assert!(
                    i > prev,
                    "thread {t} record {i} out of program order (after {prev})"
                );
            }
            last_i[t] = Some(i);
        }
    }
}

/// The production-sized contract the satellite asks for: more than
/// 2^14 stamps from multiple threads into a [`FLIGHT_CAPACITY`] ring.
/// After the dust settles the ring holds exactly [`FLIGHT_CAPACITY`]
/// untorn records, attributable and in per-thread program order.
#[test]
fn full_capacity_ring_survives_multithreaded_overflow() {
    const THREADS: u64 = 4;
    // 4 × (3/4 · 2^14) = 3 · 2^14 stamps: the ring wraps twice over.
    const PER_THREAD: u64 = (FLIGHT_CAPACITY as u64 / 4) * 3;
    let r = Arc::new(FlightRecorder::with_capacity(FLIGHT_CAPACITY));
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&r);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let tag = tag(t, i);
                    r.record(tag, FlightStage::SeuInject, tag, tag);
                }
            })
        })
        .collect();
    // Read while the writers are overwriting live slots.
    for _ in 0..10 {
        for rec in r.snapshot() {
            assert_eq!(rec.trace_id, rec.clock);
            assert_eq!(rec.trace_id, rec.arg);
        }
    }
    for w in writers {
        w.join().unwrap();
    }
    assert!(r.recorded() > FLIGHT_CAPACITY as u64, "must exceed 2^14");
    assert_eq!(r.recorded(), THREADS * PER_THREAD);
    let snap = r.snapshot();
    assert_eq!(
        snap.len(),
        FLIGHT_CAPACITY,
        "overwrite-oldest keeps a full ring"
    );
    let mut last_i = [None::<u64>; THREADS as usize];
    let mut per_thread_seen = [0u64; THREADS as usize];
    for rec in &snap {
        assert_eq!(rec.trace_id, rec.clock, "torn record escaped the seqlock");
        assert_eq!(rec.trace_id, rec.arg, "torn record escaped the seqlock");
        assert_eq!(rec.stage, FlightStage::SeuInject);
        let t = (rec.trace_id / 0x1_0000_0000) as usize;
        let i = rec.trace_id % 0x1_0000_0000;
        assert!(t < THREADS as usize && i < PER_THREAD);
        if let Some(prev) = last_i[t] {
            assert!(
                i > prev,
                "thread {t}: {i} after {prev} violates ticket order"
            );
        }
        last_i[t] = Some(i);
        per_thread_seen[t] += 1;
    }
    // Which thread's records survive depends on scheduling, but the
    // retained window is always exactly full and fully attributable.
    assert_eq!(per_thread_seen.iter().sum::<u64>(), FLIGHT_CAPACITY as u64);
    // The globally last ticket written is by definition inside the
    // newest-capacity window, so the snapshot can never be stale: its
    // final record must be some thread's record, untorn.
    let newest = snap.last().expect("full ring has a newest record");
    assert_eq!(newest.trace_id, newest.clock);
}
