//! The two clocks every event is stamped with.
//!
//! * **Wall clock** — nanoseconds since the recorder's epoch (the
//!   first [`crate::enable`] call), from a monotonic [`Instant`].
//! * **Cycle clock** — a per-thread counter of *simulated Zynq fabric
//!   cycles*, advanced explicitly by the timing models (DMA transfer
//!   costs, fault penalties, core compute). It only ever moves
//!   forward, so cycle timestamps are monotone per thread — the
//!   invariant the span proptests pin down.
//!
//! Thread ids are small dense integers assigned on first use (stable
//! for the thread's lifetime), not OS thread ids — they become the
//! `tid` of the Chrome trace.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static CYCLES: Cell<u64> = const { Cell::new(0) };
}

/// The recorder's epoch, pinned on first call.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the epoch (saturating at `u64::MAX`).
pub fn wall_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// This thread's dense id (assigned on first use, never 0 afterwards).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let id = t.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        id
    })
}

/// This thread's simulated-cycle clock.
pub fn cycles() -> u64 {
    CYCLES.with(Cell::get)
}

/// Advances this thread's simulated-cycle clock (saturating).
pub fn advance_cycles(n: u64) {
    CYCLES.with(|c| c.set(c.get().saturating_add(n)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let a = wall_ns();
        let b = wall_ns();
        assert!(b >= a);
    }

    #[test]
    fn cycle_clock_is_per_thread_and_monotone() {
        let before = cycles();
        advance_cycles(7);
        assert_eq!(cycles(), before + 7);
        // A fresh thread starts at its own zero.
        let other = std::thread::spawn(|| {
            let start = cycles();
            advance_cycles(3);
            (start, cycles())
        })
        .join()
        .unwrap();
        assert_eq!(other.1, other.0 + 3);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let mine = thread_id();
        assert_eq!(mine, thread_id());
        let theirs = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn cycle_clock_saturates() {
        std::thread::spawn(|| {
            advance_cycles(u64::MAX);
            advance_cycles(10);
            assert_eq!(cycles(), u64::MAX);
        })
        .join()
        .unwrap();
    }
}
