//! Request-scoped causal context.
//!
//! A [`RequestCtx`] is minted by the serving front-end when a request
//! is admitted and rides along with it through queueing, batch
//! formation, pool dispatch, retries/hedges, DMA transfer and the
//! software fallback. It is deliberately tiny and `Copy`: threading it
//! through the serving stack must cost nothing and allocate nothing
//! (the zero-alloc serving-path guarantee includes this type).
//!
//! ## Trace-id layout
//!
//! `trace_id` packs a process-global **epoch** (one per front-end run,
//! allocated by [`next_trace_epoch`]) in the high 32 bits and a
//! per-run request sequence number in the low 32 bits. Two properties
//! follow:
//!
//! * ids are unique across concurrently running front-ends in one
//!   process (tests, sweeps), because epochs never repeat, and
//! * the *reported* behaviour of a run stays deterministic — trace ids
//!   never enter a [`FrontendReport`]-style result, only the flight
//!   recorder, so replaying a schedule still compares bit-identically.
//!
//! [`FrontendReport`]: ../cnn_serve/struct.FrontendReport.html
//!
//! ## Propagation below the `Device` trait
//!
//! The pool's `Device::dispatch` signature is context-free (many
//! implementations exist, most of them scripted mocks). Instead of
//! widening that trait, the pool installs the current context in a
//! thread-local scope ([`ctx_scope`]) around each dispatch; the
//! simulated Zynq device reads it back with [`current_ctx`] to
//! annotate DMA attempts. The scope is RAII and re-entrant: nesting
//! restores the previous context on drop.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Causal identity of one in-flight request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestCtx {
    /// Unique id of the request: `(epoch << 32) | per-run sequence`.
    pub trace_id: u64,
    /// Id of the stage currently acting on the request (0 = root).
    pub span_id: u32,
    /// Id of the stage that handed the request over (0 = none).
    pub parent_span: u32,
}

impl RequestCtx {
    /// The root context minted at admission.
    pub fn root(trace_id: u64) -> RequestCtx {
        RequestCtx {
            trace_id,
            span_id: 0,
            parent_span: 0,
        }
    }

    /// A child context for a downstream stage: same trace, new span,
    /// parented on the current span.
    pub fn child(self, span_id: u32) -> RequestCtx {
        RequestCtx {
            trace_id: self.trace_id,
            span_id,
            parent_span: self.span_id,
        }
    }

    /// The per-run request sequence number (low 32 bits).
    pub fn sequence(self) -> u32 {
        self.trace_id as u32
    }

    /// The run epoch this request belongs to (high 32 bits).
    pub fn epoch(self) -> u64 {
        self.trace_id >> 32
    }
}

/// Epoch allocator; epoch 0 is reserved so a zeroed trace id is
/// recognizably "no context".
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh trace-id epoch (the high-32-bit block all of one
/// run's trace ids share). Monotonic per process, never reused.
pub fn next_trace_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed) << 32
}

thread_local! {
    static CURRENT: Cell<Option<RequestCtx>> = const { Cell::new(None) };
}

/// The request context installed on this thread, if any. Layers below
/// the `Device` trait use this to annotate work (DMA attempts) with
/// the request that caused it.
pub fn current_ctx() -> Option<RequestCtx> {
    CURRENT.with(Cell::get)
}

/// RAII guard restoring the previously installed context on drop.
#[must_use = "dropping the scope immediately uninstalls the context"]
pub struct CtxScope {
    prev: Option<RequestCtx>,
}

/// Installs `ctx` as this thread's current request context until the
/// returned guard drops. Nesting is supported: the inner scope's drop
/// restores the outer context.
pub fn ctx_scope(ctx: RequestCtx) -> CtxScope {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    CtxScope { prev }
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_links_to_parent() {
        let root = RequestCtx::root(7);
        assert_eq!(root.span_id, 0);
        let c = root.child(3);
        assert_eq!(c.trace_id, 7);
        assert_eq!(c.parent_span, 0);
        let g = c.child(4);
        assert_eq!(g.parent_span, 3);
    }

    #[test]
    fn epochs_are_unique_and_nonzero() {
        let a = next_trace_epoch();
        let b = next_trace_epoch();
        assert_ne!(a, b);
        assert!(a >= 1 << 32, "epoch 0 is reserved");
        let ctx = RequestCtx::root(a | 42);
        assert_eq!(ctx.sequence(), 42);
        assert_eq!(ctx.epoch(), a >> 32);
    }

    #[test]
    fn scope_installs_and_restores() {
        assert_eq!(current_ctx(), None);
        let outer = RequestCtx::root(1);
        let inner = RequestCtx::root(2);
        {
            let _a = ctx_scope(outer);
            assert_eq!(current_ctx(), Some(outer));
            {
                let _b = ctx_scope(inner);
                assert_eq!(current_ctx(), Some(inner));
            }
            assert_eq!(current_ctx(), Some(outer), "nested scope restores");
        }
        assert_eq!(current_ctx(), None);
    }
}
