//! Multi-window SLO burn-rate monitoring.
//!
//! An objective is a target fraction of *good* events (deadline
//! attainment, goodput). The monitor tracks how fast the error budget
//! `1 - target` is being consumed, expressed as a **burn rate**:
//! `error_rate / (1 - target)` — burn 1.0 spends the budget exactly,
//! burn 10 spends it ten times too fast.
//!
//! One window cannot both catch a fast outage and ignore a blip, so
//! the monitor evaluates two (the classic fast/slow multi-window
//! alert): a breach requires the **fast** window (recent events,
//! catches sudden collapse with low latency) *and* the **slow**
//! window (longer history, suppresses one-off spikes) to burn above
//! their thresholds simultaneously. Windows here are event-counted,
//! not wall-timed, because the serving stack runs on simulated clocks
//! — an event window is deterministic under replay where a wall-time
//! window is not.
//!
//! Breaches are edge-triggered: [`SloMonitor::record`] returns
//! `Some(burn)` only on the transition into breach, which is what
//! arms the flight-recorder dump exactly once per incident. The
//! breached state latches until the fast window recovers below burn
//! 1.0 (spending less than budget), so a flapping signal does not
//! fire a dump storm.

use std::collections::VecDeque;

/// One service-level objective with its alerting windows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    /// Objective name (metrics label; keep it `[a-z0-9_]`).
    pub name: &'static str,
    /// Target good fraction, e.g. `0.99` (clamped below 1.0 so the
    /// error budget never divides by zero).
    pub target: f64,
    /// Events in the fast window (clamped ≥ 1).
    pub fast_window: usize,
    /// Events in the slow window (clamped ≥ `fast_window`).
    pub slow_window: usize,
    /// Fast-window burn rate required to breach.
    pub fast_burn: f64,
    /// Slow-window burn rate required to breach.
    pub slow_burn: f64,
}

impl Objective {
    /// Error budget: the tolerated bad fraction, floored to keep burn
    /// rates finite for a 100% target.
    pub fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }
}

/// Burn rates over both windows at some instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnRate {
    /// Burn over the fast window (`None` until it has filled).
    pub fast: Option<f64>,
    /// Burn over the slow window (`None` until it has filled).
    pub slow: Option<f64>,
}

/// Tracks one objective's outcomes and burn state.
#[derive(Clone, Debug)]
pub struct SloMonitor {
    objective: Objective,
    /// Outcome ring, newest at the back (`true` = bad event); bounded
    /// at `slow_window`.
    outcomes: VecDeque<bool>,
    /// Bad events currently in the ring.
    bad_in_slow: usize,
    breached: bool,
    breaches: u64,
}

impl SloMonitor {
    /// A monitor for `objective` with empty windows (no burn until
    /// both fill — cold systems never alert on absent data, the same
    /// contract as the cold-start `None` of the latency histograms).
    pub fn new(mut objective: Objective) -> SloMonitor {
        objective.target = objective.target.clamp(0.0, 1.0 - 1e-9);
        objective.fast_window = objective.fast_window.max(1);
        objective.slow_window = objective.slow_window.max(objective.fast_window);
        SloMonitor {
            outcomes: VecDeque::with_capacity(objective.slow_window),
            bad_in_slow: 0,
            objective,
            breached: false,
            breaches: 0,
        }
    }

    /// The monitored objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Records one event outcome and re-evaluates the breach state.
    /// Returns `Some(burn)` exactly when this event *entered* breach.
    pub fn record(&mut self, good: bool) -> Option<BurnRate> {
        if self.outcomes.len() == self.objective.slow_window
            && self.outcomes.pop_front() == Some(true)
        {
            self.bad_in_slow -= 1;
        }
        self.outcomes.push_back(!good);
        if !good {
            self.bad_in_slow += 1;
        }

        let burn = self.burn();
        let over = matches!(
            (burn.fast, burn.slow),
            (Some(f), Some(s)) if f >= self.objective.fast_burn && s >= self.objective.slow_burn
        );
        if over && !self.breached {
            self.breached = true;
            self.breaches += 1;
            return Some(burn);
        }
        // Release the latch only once the fast window burns below
        // budget — hysteresis against dump storms under flapping.
        if self.breached && matches!(burn.fast, Some(f) if f < 1.0) {
            self.breached = false;
        }
        None
    }

    /// Current burn rates (each `None` until its window has filled).
    pub fn burn(&self) -> BurnRate {
        let slow_n = self.outcomes.len();
        let fast_n = self.objective.fast_window;
        let fast = if slow_n >= fast_n {
            let bad = self
                .outcomes
                .iter()
                .rev()
                .take(fast_n)
                .filter(|&&b| b)
                .count();
            Some(bad as f64 / fast_n as f64 / self.objective.budget())
        } else {
            None
        };
        let slow = if slow_n >= self.objective.slow_window {
            Some(self.bad_in_slow as f64 / slow_n as f64 / self.objective.budget())
        } else {
            None
        };
        BurnRate { fast, slow }
    }

    /// Whether the objective is currently in (latched) breach.
    pub fn is_breached(&self) -> bool {
        self.breached
    }

    /// Breach edges seen so far.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burn values come out of float division (`1.0 - target` is not
    /// exact for 0.9 or 0.99), so compare with a tolerance.
    fn assert_burn(actual: Option<f64>, expected: f64) {
        let actual = actual.expect("window should be warm");
        assert!(
            (actual - expected).abs() < 1e-9,
            "burn {actual} != {expected}"
        );
    }

    fn obj() -> Objective {
        Objective {
            name: "test",
            target: 0.9, // budget 0.1
            fast_window: 4,
            slow_window: 8,
            fast_burn: 5.0,
            slow_burn: 2.5,
        }
    }

    #[test]
    fn cold_monitor_never_breaches() {
        let mut m = SloMonitor::new(obj());
        // All-bad events, but windows not full: no burn, no breach.
        for _ in 0..7 {
            assert_eq!(m.record(false), None);
        }
        assert_eq!(m.burn().slow, None, "slow window still cold");
        assert!(!m.is_breached());
    }

    #[test]
    fn sustained_errors_breach_once_both_windows_burn() {
        let mut m = SloMonitor::new(obj());
        let mut edge_at = None;
        for i in 0..16 {
            if m.record(false).is_some() {
                edge_at.get_or_insert(i);
            }
        }
        // 100% bad over budget 0.1 = burn 10 on both windows; edge
        // fires exactly when the slow window first fills.
        assert_eq!(edge_at, Some(7));
        assert!(m.is_breached());
        assert_eq!(m.breaches(), 1, "edge-triggered: one incident");
        assert_burn(m.burn().fast, 10.0);
        assert_burn(m.burn().slow, 10.0);
    }

    #[test]
    fn fast_spike_alone_does_not_breach() {
        let mut m = SloMonitor::new(obj());
        for _ in 0..8 {
            m.record(true);
        }
        // One bad event after a clean history: fast burn 1/4/0.1 =
        // 2.5, under the 5.0 threshold.
        m.record(false);
        assert!(!m.is_breached(), "one blip must not page");
        assert_eq!(m.breaches(), 0);
    }

    #[test]
    fn recovery_unlatches_and_rebreach_counts_again() {
        let mut m = SloMonitor::new(obj());
        for _ in 0..8 {
            m.record(false);
        }
        assert!(m.is_breached());
        // Good events wash the fast window below burn 1.0.
        for _ in 0..4 {
            m.record(true);
        }
        assert!(!m.is_breached(), "fast recovery releases the latch");
        for _ in 0..8 {
            m.record(false);
        }
        assert!(m.is_breached());
        assert_eq!(m.breaches(), 2, "a second incident is a second edge");
    }

    #[test]
    fn burn_is_error_rate_over_budget() {
        let mut m = SloMonitor::new(Objective {
            target: 0.99, // budget 0.01
            ..obj()
        });
        for i in 0..8 {
            m.record(i % 2 == 0); // 50% bad
        }
        let b = m.burn();
        assert_burn(b.fast, 50.0);
        assert_burn(b.slow, 50.0);
    }

    #[test]
    fn perfect_target_is_clamped_not_divided_by_zero() {
        let mut m = SloMonitor::new(Objective {
            target: 1.0,
            ..obj()
        });
        for _ in 0..8 {
            m.record(true);
        }
        assert_eq!(m.burn().fast, Some(0.0));
        assert!(!m.is_breached());
    }

    #[test]
    fn degenerate_windows_are_clamped() {
        let m = SloMonitor::new(Objective {
            fast_window: 0,
            slow_window: 0,
            ..obj()
        });
        assert_eq!(m.objective().fast_window, 1);
        assert_eq!(m.objective().slow_window, 1);
    }
}
