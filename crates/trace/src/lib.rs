#![warn(missing_docs)]

//! # cnn-trace
//!
//! The observability substrate of the cnn2fpga stack: structured
//! tracing and metrics for everything between a JSON descriptor and a
//! classified batch on the (simulated) Zynq fabric.
//!
//! The paper's whole evaluation — execution time, speedup, power,
//! energy, resources — is an observability exercise; this crate makes
//! that signal machine-readable *inside* a run instead of only at its
//! end:
//!
//! * [`span`](mod@span) — hierarchical RAII spans, timestamped on **two
//!   clocks**: wall-clock nanoseconds (what the host actually spent)
//!   and the per-thread **simulated fabric cycle counter** (what the
//!   modelled Zynq spent; advanced by the DMA/fault/compute models via
//!   [`advance_cycles`]),
//! * [`registry`] — monotonic counters and fixed-bucket histograms
//!   behind a read-mostly registry (atomics under an `RwLock` map),
//! * [`event`] — a bounded ring-buffer journal of span enters/exits
//!   and instant events (old events are evicted, never reallocated),
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`), Prometheus text exposition, and a
//!   human-readable per-span latency table,
//! * [`ctx`] — the `Copy` per-request causal context the serving
//!   stack threads from admission to DMA attempt,
//! * [`flight`](mod@flight) — the **always-on** bounded lock-free flight-recorder
//!   ring of fixed-size request-lifecycle records (dumpable as
//!   Chrome-trace flow events),
//! * [`slo`] — multi-window fast/slow burn-rate monitoring over
//!   service-level objectives,
//! * [`hist`] — the workspace's one owned latency histogram, sharing
//!   its quantile implementation (and cold-start `None` contract)
//!   with the registry snapshots.
//!
//! ## On/off
//!
//! Recording is **disabled by default**: every instrumentation call
//! starts with one relaxed atomic load and returns immediately, so
//! instrumented hot paths pay a branch, not a lock. [`enable`] turns
//! the recorder on; the `noop` cargo feature compiles every call out
//! entirely for builds that must not even carry the branch.
//!
//! Tracing is purely observational: an instrumented run computes
//! bit-identical results to an uninstrumented one.
//!
//! ```
//! cnn_trace::enable();
//! {
//!     let _outer = cnn_trace::span("demo", "outer");
//!     cnn_trace::advance_cycles(100);
//!     cnn_trace::counter_add("demo_total", &[("kind", "example")], 1);
//! }
//! let snap = cnn_trace::snapshot();
//! assert_eq!(snap.events.len(), 2); // enter + exit
//! assert!(cnn_trace::export::chrome::to_chrome_json(&snap).contains("outer"));
//! ```

pub mod clock;
pub mod ctx;
pub mod event;
pub mod export;
pub mod flight;
pub mod hist;
pub mod registry;
pub mod slo;
pub mod snapshot;
pub mod span;

pub use ctx::{ctx_scope, current_ctx, next_trace_epoch, CtxScope, RequestCtx};
pub use event::{Event, EventKind};
pub use flight::{
    flight, flight_record, FlightRecord, FlightRecorder, FlightStage, FLIGHT_CAPACITY,
    SHED_DEADLINE, SHED_QUEUE_FULL,
};
pub use hist::{LatencyHistogram, BUCKET_BOUNDS};
pub use registry::{CounterSnapshot, HistogramSnapshot, Registry};
pub use slo::{BurnRate, Objective, SloMonitor};
pub use snapshot::{SpanSummary, TraceSnapshot};
pub use span::SpanGuard;

use event::Journal;
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Events the journal retains before evicting the oldest (bounded by
/// construction: a runaway loop cannot grow the journal unboundedly).
pub const JOURNAL_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Global {
    journal: Mutex<Journal>,
    registry: Registry,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        journal: Mutex::new(Journal::with_capacity(JOURNAL_CAPACITY)),
        registry: Registry::new(),
    })
}

/// Poison-tolerant journal lock: a panic inside an instrumented span
/// must not take the whole recorder down with it.
fn journal(g: &Global) -> MutexGuard<'_, Journal> {
    g.journal.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether the recorder is currently on. With the `noop` feature this
/// is a compile-time `false` and every instrumentation call inlines
/// away.
#[inline(always)]
pub fn is_enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on (idempotent). Also pins the wall-clock epoch
/// on first use so every timestamp is relative to the same instant.
pub fn enable() {
    clock::epoch(); // pin t=0 before the first event
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the recorder off. In-flight span guards still drop cheaply
/// (their exit is recorded so trees stay balanced).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears the journal and the metrics registry (the per-thread cycle
/// clocks keep running — they are monotonic by contract).
pub fn reset() {
    let g = global();
    journal(g).clear();
    g.registry.clear();
}

/// Opens a span. The guard records the matching exit when dropped;
/// both edges carry wall-clock and cycle timestamps. `cat` groups
/// spans by subsystem (`"nn"`, `"fpga"`, ...) and becomes the Chrome
/// trace category.
#[inline]
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::inactive();
    }
    SpanGuard::enter(cat, name.into())
}

/// [`span`](fn@span) with a lazily built name: the closure (and its allocation)
/// runs only when the recorder is on — use for `format!`ed names on
/// hot paths.
#[inline]
pub fn span_lazy<F>(cat: &'static str, name: F) -> SpanGuard
where
    F: FnOnce() -> Cow<'static, str>,
{
    if !is_enabled() {
        return SpanGuard::inactive();
    }
    SpanGuard::enter(cat, name())
}

/// Records a zero-duration instant event (a fault injection, a DMA
/// soft reset, ...).
#[inline]
pub fn instant(cat: &'static str, name: impl Into<Cow<'static, str>>) {
    if !is_enabled() {
        return;
    }
    record(Event::now(EventKind::Instant, cat, name.into()));
}

/// Adds `delta` to a monotonic counter, creating it at zero first if
/// this is its first sighting (so `delta = 0` pre-registers a counter
/// and guarantees it appears in the Prometheus exposition).
#[inline]
pub fn counter_add(name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
    if !is_enabled() {
        return;
    }
    global().registry.counter_add(name, labels, delta);
}

/// Records `value` into the fixed-bucket histogram `name` (created on
/// first observation with [`registry::DEFAULT_BUCKETS`]).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    global().registry.observe(name, value);
}

/// Advances this thread's simulated-cycle clock by `n` fabric cycles.
/// The models call this wherever they account simulated time (DMA
/// transfers, fault penalties, core compute), so span cycle deltas
/// measure simulated-Zynq time. Monotonic per thread by construction.
#[inline]
pub fn advance_cycles(n: u64) {
    if !is_enabled() {
        return;
    }
    clock::advance_cycles(n);
}

/// This thread's simulated-cycle clock.
#[inline]
pub fn cycles() -> u64 {
    clock::cycles()
}

/// Appends an event to the journal (internal; used by [`span`]).
pub(crate) fn record(ev: Event) {
    journal(global()).push(ev);
}

/// A consistent copy of everything recorded so far: journal events
/// (oldest first), eviction count, counters and histograms.
pub fn snapshot() -> TraceSnapshot {
    let g = global();
    let (events, dropped) = {
        let j = journal(g);
        (j.events(), j.dropped())
    };
    TraceSnapshot {
        events,
        dropped,
        counters: g.registry.counters(),
        histograms: g.registry.histograms(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide, so the unit tests here run
    // as one sequential scenario to avoid cross-test interference.
    #[test]
    fn recorder_end_to_end() {
        // Disabled: nothing records, guards are inert.
        disable();
        reset();
        {
            let _s = span("test", "ignored");
            counter_add("ignored_total", &[], 5);
            observe("ignored_hist", 1);
            advance_cycles(10);
        }
        let snap = snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());

        // Enabled: spans nest, counters count, cycles advance.
        enable();
        reset();
        let c0 = cycles();
        {
            let _outer = span("test", "outer");
            advance_cycles(100);
            {
                let _inner = span_lazy("test", || format!("inner {}", 1).into());
                advance_cycles(50);
            }
            instant("test", "tick");
            counter_add("events_total", &[("kind", "tick")], 3);
            counter_add("events_total", &[("kind", "tick")], 2);
            observe("latency_cycles", 150);
        }
        let snap = snapshot();
        assert_eq!(snap.events.len(), 5); // 2 enters + 2 exits + 1 instant
        assert_eq!(cycles(), c0 + 150);
        assert_eq!(snap.dropped, 0);
        let c = &snap.counters[0];
        assert_eq!(c.name, "events_total");
        assert_eq!(c.labels, vec![("kind".to_string(), "tick".to_string())]);
        assert_eq!(c.value, 5);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.histograms[0].sum, 150);

        // Summaries: outer contains inner, cycle deltas attribute 150
        // to outer and 50 to inner.
        let sums = snap.span_summaries();
        let outer = sums.iter().find(|s| s.name == "outer").unwrap();
        let inner = sums.iter().find(|s| s.name == "inner 1").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(outer.cycles, 150);
        assert_eq!(inner.cycles, 50);
        assert!(outer.wall_ns >= inner.wall_ns);

        // Zero-delta counter_add pre-registers for the exposition.
        reset();
        counter_add("preregistered_total", &[("outcome", "clean")], 0);
        let snap = snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 0);
        disable();
    }

    #[test]
    fn journal_is_bounded() {
        let mut j = Journal::with_capacity(4);
        for i in 0..10u64 {
            j.push(Event {
                kind: EventKind::Instant,
                cat: "t",
                name: format!("e{i}").into(),
                thread: 0,
                wall_ns: i,
                cycles: i,
            });
        }
        assert_eq!(j.events().len(), 4);
        assert_eq!(j.dropped(), 6);
        assert_eq!(j.events()[0].name, "e6");
    }
}
