//! The workspace's one owned latency histogram.
//!
//! Same fixed power-of-four bucket layout as the registry histograms
//! (so dashboards, the hedger and the admission estimator all agree
//! on boundaries), but locally owned and lock-free-by-ownership: the
//! serving pool gives each device slot one, and the front-end's
//! queue-delay estimator keeps two.
//!
//! There is exactly **one** quantile implementation in the workspace
//! — [`bucket_quantile`] — shared by this type and by
//! [`crate::HistogramSnapshot`], and exactly one cold-start contract:
//! an empty histogram has **no** quantile (`None`), never a
//! fabricated sentinel. Admission control is built on that `None`
//! (cold systems admit optimistically); see
//! `cnn-serve::deadline` for the regression tests pinning it.

use crate::registry::DEFAULT_BUCKETS;

/// Bucket upper bounds shared with the registry histograms (the
/// `+Inf` bucket is implicit).
pub use crate::registry::DEFAULT_BUCKETS as BUCKET_BOUNDS;

/// Upper-bound estimate of the `q`-quantile over fixed buckets: the
/// smallest bound whose cumulative count covers a `q` fraction of the
/// `count` observations. `cumulative` yields the running totals per
/// bound (the final `+Inf` entry may be included or implied);
/// quantiles falling past the last bound report `u64::MAX`. Returns
/// `None` for an empty histogram or a non-finite `q` — the
/// load-bearing cold-start contract.
pub fn bucket_quantile<I>(bounds: &[u64], cumulative: I, count: u64, q: f64) -> Option<u64>
where
    I: IntoIterator<Item = u64>,
{
    if count == 0 || !q.is_finite() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target observation, 1-based, under `le` semantics;
    // q = 0 maps to the first observation.
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    for (i, cum) in cumulative.into_iter().enumerate() {
        if cum >= rank {
            return Some(bounds.get(i).copied().unwrap_or(u64::MAX));
        }
    }
    Some(u64::MAX)
}

/// Fixed-bucket owned latency histogram.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one latency observation (simulated cycles).
    pub fn observe(&mut self, cycles: u64) {
        let idx = DEFAULT_BUCKETS.partition_point(|&b| b < cycles);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(cycles);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed cycles (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Upper-bound estimate of the `q`-quantile: smallest bucket
    /// bound covering a `q` fraction of observations (`u64::MAX` for
    /// the `+Inf` bucket, `None` while empty). Conservative, so a
    /// hedge never fires on a latency the histogram cannot resolve.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let mut cum = 0u64;
        bucket_quantile(
            &BUCKET_BOUNDS,
            self.buckets.iter().map(move |&c| {
                cum += c;
                cum
            }),
            self.count,
            q,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_is_bucket_upper_bound() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe(200); // <= 256
        }
        h.observe(100_000); // <= 262_144
        assert_eq!(h.quantile(0.5), Some(256));
        assert_eq!(h.quantile(0.99), Some(256));
        assert_eq!(h.quantile(1.0), Some(262_144));
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn overflow_bucket_reports_max() {
        let mut h = LatencyHistogram::new();
        h.observe(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX);
        h.observe(u64::MAX); // sum saturates instead of wrapping
        assert_eq!(h.sum(), u64::MAX);
    }

    /// The owned histogram and the registry snapshot must agree on
    /// every quantile — they share [`bucket_quantile`] by
    /// construction, and this pins the shared bucket layout too.
    #[test]
    fn owned_and_snapshot_quantiles_agree() {
        let mut h = LatencyHistogram::new();
        let r = crate::Registry::new();
        let values = [0, 1, 200, 256, 257, 5_000, 70_000, 1 << 30, u64::MAX];
        for &v in &values {
            h.observe(v);
            r.observe("lat", v);
        }
        let snap = &r.histograms()[0];
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), snap.quantile(q), "q={q}");
        }
        assert_eq!(h.quantile(f64::NAN), None);
        assert_eq!(snap.quantile(f64::NAN), None);
    }
}
