//! A consistent copy of the recorder's state, plus span aggregation.

use crate::event::{Event, EventKind};
use crate::registry::{CounterSnapshot, HistogramSnapshot};
use std::collections::{BTreeMap, HashMap};

/// Everything recorded up to [`crate::snapshot`](fn@crate::snapshot) time.
#[derive(Clone, Debug)]
pub struct TraceSnapshot {
    /// Journal events, oldest first.
    pub events: Vec<Event>,
    /// Events the bounded journal evicted before this snapshot.
    pub dropped: u64,
    /// Counter series.
    pub counters: Vec<CounterSnapshot>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Aggregate of every completed span with one `(cat, name)` identity:
/// the per-layer latency table's row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// Subsystem category.
    pub cat: &'static str,
    /// Span name.
    pub name: String,
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Total wall nanoseconds across all completions.
    pub wall_ns: u64,
    /// Total simulated cycles across all completions.
    pub cycles: u64,
}

impl TraceSnapshot {
    /// Matches enter/exit pairs per thread (stack discipline) and
    /// aggregates them by `(cat, name)`. Unbalanced edges — a span
    /// still open at snapshot time, or an enter evicted from the
    /// bounded journal — are skipped rather than guessed at.
    pub fn span_summaries(&self) -> Vec<SpanSummary> {
        let mut stacks: HashMap<u64, Vec<&Event>> = HashMap::new();
        let mut agg: BTreeMap<(&'static str, &str), SpanSummary> = BTreeMap::new();
        for ev in &self.events {
            match ev.kind {
                EventKind::Enter => stacks.entry(ev.thread).or_default().push(ev),
                EventKind::Exit => {
                    let stack = stacks.entry(ev.thread).or_default();
                    // Pop until the matching enter: an exit whose
                    // enter was evicted unwinds nothing real.
                    let matched = stack
                        .iter()
                        .rposition(|e| e.cat == ev.cat && e.name == ev.name)
                        .map(|i| stack.split_off(i).swap_remove(0));
                    if let Some(enter) = matched {
                        let s = agg
                            .entry((ev.cat, &*enter.name))
                            .or_insert_with(|| SpanSummary {
                                cat: ev.cat,
                                name: enter.name.to_string(),
                                count: 0,
                                wall_ns: 0,
                                cycles: 0,
                            });
                        s.count += 1;
                        s.wall_ns += ev.wall_ns.saturating_sub(enter.wall_ns);
                        s.cycles += ev.cycles.saturating_sub(enter.cycles);
                    }
                }
                EventKind::Instant => {}
            }
        }
        agg.into_values().collect()
    }

    /// The distinct categories that completed at least one span —
    /// a quick "which subsystems are present in this trace" probe.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> = self.span_summaries().iter().map(|s| s.cat).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn ev(kind: EventKind, name: &str, thread: u64, wall: u64, cyc: u64) -> Event {
        Event {
            kind,
            cat: "t",
            name: Cow::Owned(name.to_string()),
            thread,
            wall_ns: wall,
            cycles: cyc,
        }
    }

    #[test]
    fn nested_spans_aggregate_independently() {
        let snap = TraceSnapshot {
            events: vec![
                ev(EventKind::Enter, "outer", 1, 0, 0),
                ev(EventKind::Enter, "inner", 1, 10, 5),
                ev(EventKind::Exit, "inner", 1, 20, 15),
                ev(EventKind::Exit, "outer", 1, 30, 15),
                // Same names on another thread, interleaved in time.
                ev(EventKind::Enter, "outer", 2, 5, 0),
                ev(EventKind::Exit, "outer", 2, 6, 2),
            ],
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        let sums = snap.span_summaries();
        let outer = sums.iter().find(|s| s.name == "outer").unwrap();
        let inner = sums.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.count, 2);
        assert_eq!(outer.wall_ns, 30 + 1);
        assert_eq!(outer.cycles, 15 + 2);
        assert_eq!(inner.count, 1);
        assert_eq!(inner.cycles, 10);
        assert_eq!(snap.categories(), vec!["t"]);
    }

    #[test]
    fn unmatched_edges_are_skipped() {
        let snap = TraceSnapshot {
            events: vec![
                // Exit with no enter (evicted), then a clean pair, then
                // an enter never closed.
                ev(EventKind::Exit, "orphan", 1, 1, 1),
                ev(EventKind::Enter, "ok", 1, 2, 2),
                ev(EventKind::Exit, "ok", 1, 3, 4),
                ev(EventKind::Enter, "open", 1, 4, 4),
            ],
            dropped: 1,
            counters: vec![],
            histograms: vec![],
        };
        let sums = snap.span_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].name, "ok");
        assert_eq!(sums[0].cycles, 2);
    }
}
