//! The always-on flight recorder: a bounded, lock-free,
//! overwrite-oldest ring of fixed-size request-lifecycle records.
//!
//! Unlike the span journal (which is off unless [`crate::enable`] has
//! been called, and records free-form names), the flight recorder is
//! **always on**: every serving-stack stage transition is written into
//! a pre-allocated ring of atomic slots, so when an SLO burns there is
//! a causal record of the recent past to dump — the same reason an
//! aircraft records continuously rather than from the first sign of
//! trouble. The costs are fixed by construction:
//!
//! * records are fixed-size (four data words; no strings, no heap),
//! * the ring is pre-allocated once; recording never allocates, which
//!   keeps the zero-alloc serving-path guarantee intact,
//! * writers are lock-free: a ticket from one `fetch_add` picks the
//!   slot, and a per-slot version word (odd = write in progress) lets
//!   readers detect and skip torn records instead of blocking.
//!
//! Overwrite-oldest means a dump reconstructs the *recent* history —
//! [`FLIGHT_CAPACITY`] records deep — which is exactly the window an
//! SLO-breach post-mortem needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Records the global ring retains before overwriting the oldest.
pub const FLIGHT_CAPACITY: usize = 1 << 14;

/// Lifecycle stage a flight record marks. The `arg` word of the
/// record is stage-specific (documented per variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FlightStage {
    /// Request reached admission (`arg` = queue depth observed).
    Admit = 0,
    /// Request reached its queue lane (`arg` = lane depth before it).
    Enqueue = 1,
    /// Request was refused (`arg` = [`SHED_DEADLINE`] or
    /// [`SHED_QUEUE_FULL`]).
    Shed = 2,
    /// Request was drained into a batch (`arg` = batch sequence).
    BatchForm = 3,
    /// Pool routed a dispatch for it (`arg` = device index).
    Dispatch = 4,
    /// Pool granted a budgeted re-dispatch (`arg` = dispatches already
    /// spent on the request; the retry's own [`FlightStage::Dispatch`]
    /// record carries the device it landed on).
    Retry = 5,
    /// Pool issued a hedge duplicate (`arg` = hedge device index).
    Hedge = 6,
    /// Request degraded to the software fallback (`arg` = dispatches
    /// spent before degrading).
    Fallback = 7,
    /// One on-device DMA transfer attempt ran under this request
    /// (`arg` = attempt ordinal within the dispatch).
    DmaAttempt = 8,
    /// Request completed (`arg` = 1 if its deadline was met).
    Complete = 9,
    /// An SLO objective entered breach while this request was being
    /// accounted (`arg` = objective index).
    SloBreach = 10,
    /// A seeded SEU bit flip landed in a device's weight memory
    /// (`arg` = bank index hit). Stamped by the fault injector, not a
    /// detector — its presence in a dump proves the corruption window.
    SeuInject = 11,
    /// An SDC detector fired on a device (`arg` = detector ordinal:
    /// 0 scrub, 1 canary, 2 attestation).
    SdcDetect = 12,
    /// A device was quarantined for silent data corruption
    /// (`arg` = device index).
    Quarantine = 13,
    /// A device's weight memory was reloaded from the golden image
    /// (`arg` = banks rewritten).
    WeightReload = 14,
    /// A golden canary probe ran on a device (`arg` = 1 pass, 0 fail).
    CanaryProbe = 15,
    /// A quarantined device completed probation and rejoined the pool
    /// (`arg` = device index).
    Rejoin = 16,
    /// A rolling reconfiguration began (`arg` = target model version).
    RolloutStart = 17,
    /// A device began draining for reconfiguration (`arg` = device
    /// index).
    Drain = 18,
    /// A drained device's bitstream + weight banks were swapped to a
    /// new model version (`arg` = device index).
    Swap = 19,
    /// The rollout promoted the new version fleet-wide (`arg` = model
    /// version promoted).
    Promote = 20,
    /// The rollout rolled the fleet back to the prior version
    /// (`arg` = model version restored).
    Rollback = 21,
}

/// `arg` value of a [`FlightStage::Shed`] record: the completion
/// estimate overran the deadline.
pub const SHED_DEADLINE: u64 = 0;
/// `arg` value of a [`FlightStage::Shed`] record: the tenant lane was
/// full (backpressure).
pub const SHED_QUEUE_FULL: u64 = 1;

impl FlightStage {
    /// Stable label (used as the Chrome event name).
    pub fn as_str(self) -> &'static str {
        match self {
            FlightStage::Admit => "admit",
            FlightStage::Enqueue => "enqueue",
            FlightStage::Shed => "shed",
            FlightStage::BatchForm => "batch_form",
            FlightStage::Dispatch => "dispatch",
            FlightStage::Retry => "retry",
            FlightStage::Hedge => "hedge",
            FlightStage::Fallback => "fallback",
            FlightStage::DmaAttempt => "dma_attempt",
            FlightStage::Complete => "complete",
            FlightStage::SloBreach => "slo_breach",
            FlightStage::SeuInject => "seu_inject",
            FlightStage::SdcDetect => "sdc_detect",
            FlightStage::Quarantine => "quarantine",
            FlightStage::WeightReload => "weight_reload",
            FlightStage::CanaryProbe => "canary_probe",
            FlightStage::Rejoin => "rejoin",
            FlightStage::RolloutStart => "rollout_start",
            FlightStage::Drain => "drain",
            FlightStage::Swap => "swap",
            FlightStage::Promote => "promote",
            FlightStage::Rollback => "rollback",
        }
    }

    fn from_u64(v: u64) -> Option<FlightStage> {
        Some(match v {
            0 => FlightStage::Admit,
            1 => FlightStage::Enqueue,
            2 => FlightStage::Shed,
            3 => FlightStage::BatchForm,
            4 => FlightStage::Dispatch,
            5 => FlightStage::Retry,
            6 => FlightStage::Hedge,
            7 => FlightStage::Fallback,
            8 => FlightStage::DmaAttempt,
            9 => FlightStage::Complete,
            10 => FlightStage::SloBreach,
            11 => FlightStage::SeuInject,
            12 => FlightStage::SdcDetect,
            13 => FlightStage::Quarantine,
            14 => FlightStage::WeightReload,
            15 => FlightStage::CanaryProbe,
            16 => FlightStage::Rejoin,
            17 => FlightStage::RolloutStart,
            18 => FlightStage::Drain,
            19 => FlightStage::Swap,
            20 => FlightStage::Promote,
            21 => FlightStage::Rollback,
            _ => return None,
        })
    }
}

/// One decoded flight record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// The request's trace id (see [`crate::RequestCtx`]); 0 marks
    /// records written outside any request context.
    pub trace_id: u64,
    /// Lifecycle stage.
    pub stage: FlightStage,
    /// Clock at recording time, in simulated cycles. Front-end stages
    /// stamp the front-end clock, pool/device stages the pool clock —
    /// two timelines, ordered within themselves.
    pub clock: u64,
    /// Stage-specific argument (see [`FlightStage`]).
    pub arg: u64,
}

/// One pre-allocated ring slot: a seqlock version word plus the four
/// record words. Odd version = a writer is mid-flight; readers skip.
struct Slot {
    version: AtomicU64,
    trace_id: AtomicU64,
    stage: AtomicU64,
    clock: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            stage: AtomicU64::new(u64::MAX), // decodes to None: never dumped
            clock: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// A bounded, lock-free, overwrite-oldest flight-record ring.
///
/// The process-wide instance lives behind [`flight`]; tests that need
/// isolation build their own with [`FlightRecorder::with_capacity`].
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRecorder {
    /// A ring holding the newest `capacity` records (clamped ≥ 1).
    /// Allocation happens here, once; recording never allocates.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    /// Records one stage transition. Lock-free and allocation-free:
    /// one `fetch_add` claims the slot, the version word brackets the
    /// field stores so readers can detect a torn record.
    pub fn record(&self, trace_id: u64, stage: FlightStage, clock: u64, arg: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.version.fetch_add(1, Ordering::AcqRel); // odd: in progress
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        slot.stage.store(stage as u64, Ordering::Relaxed);
        slot.clock.store(clock, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.version.fetch_add(1, Ordering::AcqRel); // even: complete
    }

    /// Total records ever written (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Decodes the ring's current contents, oldest first. Records a
    /// concurrent writer is mid-way through (or that were claimed but
    /// not yet written) are skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let n = head.min(cap);
        let mut out = Vec::with_capacity(n as usize);
        for ticket in (head - n)..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let v0 = slot.version.load(Ordering::Acquire);
            if v0 % 2 == 1 {
                continue; // write in progress
            }
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let stage = slot.stage.load(Ordering::Relaxed);
            let clock = slot.clock.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            if slot.version.load(Ordering::Acquire) != v0 {
                continue; // torn by a concurrent overwrite
            }
            let Some(stage) = FlightStage::from_u64(stage) else {
                continue; // slot claimed but never written
            };
            out.push(FlightRecord {
                trace_id,
                stage,
                clock,
                arg,
            });
        }
        out
    }

    /// Records in the ring belonging to `trace_id`, oldest first.
    pub fn records_for(&self, trace_id: u64) -> Vec<FlightRecord> {
        self.snapshot()
            .into_iter()
            .filter(|r| r.trace_id == trace_id)
            .collect()
    }
}

/// The process-wide flight recorder ([`FLIGHT_CAPACITY`] records).
/// Always on — independent of [`crate::enable`]/[`crate::disable`].
pub fn flight() -> &'static FlightRecorder {
    static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();
    FLIGHT.get_or_init(|| FlightRecorder::with_capacity(FLIGHT_CAPACITY))
}

/// Records into the process-wide ring. With the `noop` feature the
/// call compiles out like the rest of the instrumentation surface.
#[inline]
pub fn flight_record(trace_id: u64, stage: FlightStage, clock: u64, arg: u64) {
    if cfg!(feature = "noop") {
        return;
    }
    flight().record(trace_id, stage, clock, arg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.record(i, FlightStage::Admit, i * 10, 0);
        }
        let snap = r.snapshot();
        assert_eq!(r.recorded(), 10);
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap.iter().map(|r| r.trace_id).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "oldest first, newest retained"
        );
    }

    #[test]
    fn records_round_trip_every_stage() {
        let r = FlightRecorder::with_capacity(32);
        let stages = [
            FlightStage::Admit,
            FlightStage::Enqueue,
            FlightStage::Shed,
            FlightStage::BatchForm,
            FlightStage::Dispatch,
            FlightStage::Retry,
            FlightStage::Hedge,
            FlightStage::Fallback,
            FlightStage::DmaAttempt,
            FlightStage::Complete,
            FlightStage::SloBreach,
            FlightStage::SeuInject,
            FlightStage::SdcDetect,
            FlightStage::Quarantine,
            FlightStage::WeightReload,
            FlightStage::CanaryProbe,
            FlightStage::Rejoin,
            FlightStage::RolloutStart,
            FlightStage::Drain,
            FlightStage::Swap,
            FlightStage::Promote,
            FlightStage::Rollback,
        ];
        for (i, &s) in stages.iter().enumerate() {
            r.record(99, s, i as u64, i as u64 * 2);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), stages.len());
        for (i, rec) in snap.iter().enumerate() {
            assert_eq!(rec.stage, stages[i]);
            assert_eq!(rec.clock, i as u64);
            assert_eq!(rec.arg, i as u64 * 2);
        }
        assert_eq!(r.records_for(99).len(), stages.len());
        assert!(r.records_for(98).is_empty());
    }

    #[test]
    fn unwritten_slots_never_dump() {
        let r = FlightRecorder::with_capacity(8);
        assert!(r.snapshot().is_empty());
        r.record(1, FlightStage::Admit, 0, 0);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_records() {
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Each writer stamps its own tag in every
                        // word so a torn read is detectable.
                        let tag = t * 1_000_000 + i;
                        r.record(tag, FlightStage::Dispatch, tag, tag);
                    }
                })
            })
            .collect();
        // Read concurrently with the writers.
        for _ in 0..50 {
            for rec in r.snapshot() {
                assert_eq!(rec.trace_id, rec.clock);
                assert_eq!(rec.trace_id, rec.arg);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(r.recorded(), 8_000);
        for rec in r.snapshot() {
            assert_eq!(rec.trace_id, rec.clock);
            assert_eq!(rec.trace_id, rec.arg);
        }
    }

    #[test]
    fn global_ring_is_always_on() {
        crate::disable(); // flight recording must not care
        let before = flight().recorded();
        flight_record(12_345, FlightStage::Admit, 1, 2);
        assert!(flight().recorded() > before);
    }
}
