//! The human-readable per-span latency table — the "where do the
//! cycles go" view toolflow surveys lean on for tuning.

use crate::snapshot::{SpanSummary, TraceSnapshot};
use std::fmt::Write;

/// Renders every completed span, grouped by category and sorted by
/// total simulated cycles (hottest first), with per-call averages.
/// Spans that never advanced the cycle clock (pure host work like the
/// workflow's codegen stages) fall back to wall time for ordering
/// within their category.
pub fn to_latency_table(snapshot: &TraceSnapshot) -> String {
    let mut rows: Vec<SpanSummary> = snapshot.span_summaries();
    rows.sort_by(|a, b| {
        a.cat
            .cmp(b.cat)
            .then(b.cycles.cmp(&a.cycles))
            .then(b.wall_ns.cmp(&a.wall_ns))
    });
    let name_w = rows
        .iter()
        .map(|r| r.cat.len() + r.name.len() + 1)
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>8}  {:>14}  {:>12}  {:>10}  {:>10}",
        "span", "calls", "cycles", "cyc/call", "wall ms", "ms/call"
    );
    for r in &rows {
        let calls = r.count.max(1);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>8}  {:>14}  {:>12}  {:>10.3}  {:>10.4}",
            format!("{}/{}", r.cat, r.name),
            r.count,
            r.cycles,
            r.cycles / calls,
            r.wall_ns as f64 / 1e6,
            r.wall_ns as f64 / 1e6 / calls as f64,
        );
    }
    if rows.is_empty() {
        let _ = writeln!(out, "(no completed spans)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};
    use std::borrow::Cow;

    fn pair(name: &'static str, cat: &'static str, cyc: u64, wall: u64) -> [Event; 2] {
        [
            Event {
                kind: EventKind::Enter,
                cat,
                name: Cow::Borrowed(name),
                thread: 1,
                wall_ns: 0,
                cycles: 0,
            },
            Event {
                kind: EventKind::Exit,
                cat,
                name: Cow::Borrowed(name),
                thread: 1,
                wall_ns: wall,
                cycles: cyc,
            },
        ]
    }

    #[test]
    fn hottest_span_leads_its_category() {
        let mut events = vec![];
        events.extend(pair("cold", "nn", 10, 50));
        events.extend(pair("hot", "nn", 500, 10));
        let snap = TraceSnapshot {
            events,
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        let table = to_latency_table(&snap);
        let hot = table.find("nn/hot").unwrap();
        let cold = table.find("nn/cold").unwrap();
        assert!(hot < cold, "{table}");
        assert!(table.lines().next().unwrap().contains("cyc/call"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        assert!(to_latency_table(&snap).contains("no completed spans"));
    }
}
