//! A minimal JSON reader for *verifying* exported documents.
//!
//! The exporters in this crate emit JSON by hand (the substrate is
//! dependency-free), so something has to prove the output actually
//! parses — with a real parser, not substring checks. This module is
//! that parser: a strict recursive-descent reader covering exactly
//! RFC 8259 (objects, arrays, strings with escapes, numbers, bools,
//! null). It is used by the exporter tests, by the benchmark
//! harnesses that validate flight-recorder dumps, and by the CLI's
//! `trace dump` self-check. It is a *reader* only — the exporters do
//! not round-trip through it.

/// A parsed JSON value. Object keys keep document order (duplicate
/// keys are rejected — the exporters must never emit them).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// exporters emit: timestamps, counts and ids below 2^53).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (numbers
    /// with a fractional part return `None`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Trailing non-whitespace (or any
/// grammar violation) is an error carrying a byte offset and a short
/// description — enough for a test failure message to point at the
/// defect in the exported text.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("JSON error at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates don't appear in the exporters'
                            // output (they only \u-escape control chars).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is fine: copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn decodes_string_escapes() {
        let doc = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "01",
            "1.e3",
            "\"unterminated",
            "\"bad\\q\"",
            "nul",
            "{\"a\":1} trailing",
            "{\"dup\":1,\"dup\":2}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integers_round_trip_through_as_u64() {
        let doc = parse("[0, 42, 4294967296, 1.5]").unwrap();
        let a = doc.as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_u64(), Some(42));
        assert_eq!(a[2].as_u64(), Some(4_294_967_296));
        assert_eq!(a[3].as_u64(), None, "fractional numbers are not u64s");
    }
}
