//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! "JSON Object Format"): span enters become phase-`B` events, exits
//! phase-`E`, instants phase-`i`, and every counter series emits one
//! final phase-`C` sample. Timestamps are wall-clock microseconds
//! since the recorder epoch; the simulated cycle clock rides along in
//! `args.cycles`.
//!
//! The document is emitted by hand (the substrate is dependency-free),
//! which is easy because the schema is flat: only `name` strings need
//! escaping.

use crate::event::EventKind;
use crate::flight::FlightRecord;
use crate::snapshot::TraceSnapshot;
use std::fmt::Write;

/// Escapes `s` for inclusion inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a microsecond timestamp; half-microsecond resolution is
/// preserved (`1500 ns -> 1.5`), and whole values print without a
/// trailing `.0` — both are valid JSON numbers.
fn ts_us(wall_ns: u64) -> String {
    format!("{}", wall_ns as f64 / 1_000.0)
}

/// Renders the snapshot as a complete Chrome trace JSON document
/// (an object with `traceEvents`, as Perfetto prefers).
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    let mut body = String::new();
    let mut last_ts = String::from("0");
    let mut last_wall = 0u64;
    let mut first = true;
    for ev in &snapshot.events {
        let ph = match ev.kind {
            EventKind::Enter => "B",
            EventKind::Exit => "E",
            EventKind::Instant => "i",
        };
        let ts = ts_us(ev.wall_ns);
        if ev.wall_ns >= last_wall {
            last_wall = ev.wall_ns;
            last_ts = ts.clone();
        }
        let scope = if ev.kind == EventKind::Instant {
            ",\"s\":\"t\""
        } else {
            ""
        };
        let _ = write!(
            body,
            "{}    {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{ts}{scope},\"args\":{{\"cycles\":{}}}}}",
            if first { "" } else { ",\n" },
            escape(&ev.name),
            escape(ev.cat),
            ev.thread,
            ev.cycles,
        );
        first = false;
    }
    // Counters as one closing sample each, so the totals are visible
    // on the timeline without replaying every increment.
    for c in &snapshot.counters {
        let series = if c.labels.is_empty() {
            c.name.to_string()
        } else {
            let labels: Vec<String> = c.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}[{}]", c.name, labels.join(","))
        };
        let _ = write!(
            body,
            "{}    {{\"name\":\"{}\",\"cat\":\"metrics\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{last_ts},\"args\":{{\"value\":{}}}}}",
            if first { "" } else { ",\n" },
            escape(&series),
            c.value,
        );
        first = false;
    }
    format!(
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"droppedEvents\": {}}},\n  \"traceEvents\": [\n{body}\n  ]\n}}\n",
        snapshot.dropped
    )
}

/// Renders flight-recorder records as a Chrome trace document whose
/// **flow events** stitch each request's lifecycle into one arrowed
/// chain across the serving stack.
///
/// Per record one 1-µs phase-`X` slice is emitted (name = stage,
/// `tid` = the request's per-run sequence number so each request gets
/// its own row, `ts` = the record's simulated-cycle clock rendered as
/// microseconds) plus one flow event bound to it: phase `s` on a
/// request's first record, `t` on intermediate ones and `f` (binding
/// point `e`) on its last, all sharing `id` = trace id — which is
/// exactly how Chrome/Perfetto draw admission → queue → batch →
/// dispatch → completion arrows for one request.
///
/// Front-end stages are stamped on the front-end clock and pool/device
/// stages on the pool clock; within one request the record *order* is
/// causal even where the two timelines' values interleave.
pub fn flight_to_chrome_json(records: &[FlightRecord]) -> String {
    use std::collections::HashMap;
    // Per trace: (records seen, index of this record within its trace).
    let mut totals: HashMap<u64, u64> = HashMap::new();
    for r in records {
        *totals.entry(r.trace_id).or_insert(0) += 1;
    }
    let mut seen: HashMap<u64, u64> = HashMap::new();
    let mut body = String::new();
    let mut first = true;
    for r in records {
        let nth = seen.entry(r.trace_id).or_insert(0);
        *nth += 1;
        let total = totals[&r.trace_id];
        let tid = r.trace_id as u32;
        let ts = r.clock;
        let name = r.stage.as_str();
        let _ = write!(
            body,
            "{}    {{\"name\":\"{name}\",\"cat\":\"flight\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":1,\"args\":{{\"trace_id\":{},\"arg\":{}}}}}",
            if first { "" } else { ",\n" },
            r.trace_id,
            r.arg,
        );
        first = false;
        // The flow arrow binding this slice to the request chain.
        let (ph, bp) = if *nth == 1 {
            ("s", "")
        } else if *nth == total {
            ("f", ",\"bp\":\"e\"")
        } else {
            ("t", "")
        };
        if total > 1 {
            let _ = write!(
                body,
                ",\n    {{\"name\":\"request\",\"cat\":\"flight\",\"ph\":\"{ph}\",\"id\":{}{bp},\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}",
                r.trace_id,
            );
        }
    }
    format!("{{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n{body}\n  ]\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::flight::FlightStage;
    use crate::registry::CounterSnapshot;
    use std::borrow::Cow;

    #[test]
    fn export_has_balanced_phases_and_counter_samples() {
        let snap = TraceSnapshot {
            events: vec![
                Event {
                    kind: EventKind::Enter,
                    cat: "nn",
                    name: Cow::Borrowed("forward"),
                    thread: 3,
                    wall_ns: 1_500,
                    cycles: 10,
                },
                Event {
                    kind: EventKind::Instant,
                    cat: "fpga",
                    name: Cow::Borrowed("fault"),
                    thread: 3,
                    wall_ns: 2_000,
                    cycles: 10,
                },
                Event {
                    kind: EventKind::Exit,
                    cat: "nn",
                    name: Cow::Borrowed("forward"),
                    thread: 3,
                    wall_ns: 2_500,
                    cycles: 60,
                },
            ],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "beats_total",
                labels: vec![("channel".into(), "mm2s".into())],
                value: 256,
            }],
            histograms: vec![],
        };
        let text = to_chrome_json(&snap);
        assert!(text.contains("\"traceEvents\": ["));
        assert!(text.contains(
            "{\"name\":\"forward\",\"cat\":\"nn\",\"ph\":\"B\",\"pid\":1,\"tid\":3,\"ts\":1.5,\"args\":{\"cycles\":10}}"
        ));
        assert!(text.contains("\"ph\":\"i\",\"pid\":1,\"tid\":3,\"ts\":2,\"s\":\"t\""));
        assert!(text.contains("\"ph\":\"E\",\"pid\":1,\"tid\":3,\"ts\":2.5"));
        // Counter sample lands at the last event timestamp.
        assert!(text.contains(
            "{\"name\":\"beats_total[channel=mm2s]\",\"cat\":\"metrics\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2.5,\"args\":{\"value\":256}}"
        ));
        assert!(text.contains("\"droppedEvents\": 0"));
        // Exactly four events -> three separating commas in the array.
        assert_eq!(text.matches("}},\n").count(), 3);
    }

    #[test]
    fn names_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![Event {
                kind: EventKind::Instant,
                cat: "t",
                name: Cow::Borrowed("a\"b\\c\nd"),
                thread: 1,
                wall_ns: 0,
                cycles: 0,
            }],
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        assert!(to_chrome_json(&snap).contains(r#""name":"a\"b\\c\nd""#));
    }

    #[test]
    fn empty_snapshot_is_a_complete_document() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        let text = to_chrome_json(&snap);
        assert!(text.starts_with('{'));
        assert!(text.trim_end().ends_with('}'));
        assert!(text.contains("\"traceEvents\": ["));
    }

    fn ev(kind: EventKind, name: &'static str, wall_ns: u64) -> Event {
        Event {
            kind,
            cat: "serve",
            name: Cow::Borrowed(name),
            thread: 1,
            wall_ns,
            cycles: wall_ns,
        }
    }

    /// The exported document must be valid JSON end to end — parsed
    /// with a real JSON parser, not substring checks.
    #[test]
    fn span_export_parses_as_json_and_nests_b_e_pairs() {
        let snap = TraceSnapshot {
            events: vec![
                ev(EventKind::Enter, "outer", 100),
                ev(EventKind::Enter, "inner \"quoted\"\n", 200),
                ev(EventKind::Exit, "inner \"quoted\"\n", 300),
                ev(EventKind::Instant, "tick", 350),
                ev(EventKind::Exit, "outer", 400),
            ],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "beats_total",
                labels: vec![],
                value: 3,
            }],
            histograms: vec![],
        };
        let doc = crate::export::json::parse(&to_chrome_json(&snap)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // B/E pairing: walking the array keeps a per-tid stack that
        // never underflows and ends balanced, with matching names.
        let mut stack: Vec<&str> = Vec::new();
        for e in events {
            match e.get("ph").unwrap().as_str().unwrap() {
                "B" => stack.push(e.get("name").unwrap().as_str().unwrap()),
                "E" => {
                    let open = stack.pop().expect("exit without matching enter");
                    let name = e.get("name").unwrap().as_str().unwrap();
                    assert_eq!(open, name, "spans must nest");
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "every span must close");
        // Timestamps are numbers, not strings.
        assert!(events[0].get("ts").unwrap().as_f64().is_some());
    }

    /// Flow events stitch one request across the serving stack: the
    /// chain starts at the front-end (admit), steps through the pool
    /// (dispatch) and ends at the device (completion), all bound by
    /// one flow id.
    #[test]
    fn flight_flow_events_connect_frontend_pool_device() {
        let trace = (5u64 << 32) | 7;
        let records = vec![
            FlightRecord {
                trace_id: trace,
                stage: FlightStage::Admit,
                clock: 10,
                arg: 0,
            },
            FlightRecord {
                trace_id: trace,
                stage: FlightStage::Enqueue,
                clock: 11,
                arg: 0,
            },
            FlightRecord {
                trace_id: trace,
                stage: FlightStage::Dispatch,
                clock: 20,
                arg: 1,
            },
            FlightRecord {
                trace_id: trace,
                stage: FlightStage::DmaAttempt,
                clock: 25,
                arg: 0,
            },
            FlightRecord {
                trace_id: trace,
                stage: FlightStage::Complete,
                clock: 40,
                arg: 1,
            },
            // An unrelated single-record trace must not join the chain.
            FlightRecord {
                trace_id: 999,
                stage: FlightStage::Shed,
                clock: 12,
                arg: crate::flight::SHED_DEADLINE,
            },
        ];
        let text = flight_to_chrome_json(&records);
        let doc = crate::export::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ph = |e: &crate::export::json::Json| e.get("ph").unwrap().as_str().unwrap().to_string();

        let flows: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(ph(e).as_str(), "s" | "t" | "f")
                    && e.get("id").and_then(|v| v.as_u64()) == Some(trace)
            })
            .collect();
        assert_eq!(flows.len(), 5, "one flow edge per lifecycle record");
        assert_eq!(ph(flows[0]), "s", "chain starts at admission");
        assert_eq!(ph(flows[4]), "f", "chain ends at completion");
        assert_eq!(flows[4].get("bp").unwrap().as_str(), Some("e"));
        for mid in &flows[1..4] {
            assert_eq!(ph(mid), "t");
        }
        // The slices the flow binds to span frontend → pool → device.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| {
                ph(e) == "X"
                    && e.get("args")
                        .and_then(|a| a.get("trace_id"))
                        .and_then(|v| v.as_u64())
                        == Some(trace)
            })
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(
            names,
            vec!["admit", "enqueue", "dispatch", "dma_attempt", "complete"]
        );
        // Single-record traces emit a slice but no dangling flow.
        assert!(events
            .iter()
            .any(|e| ph(e) == "X" && e.get("name").unwrap().as_str() == Some("shed")));
        assert!(!events
            .iter()
            .any(|e| e.get("id").and_then(|v| v.as_u64()) == Some(999) && ph(e) != "X"));
    }
}
