//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! "JSON Object Format"): span enters become phase-`B` events, exits
//! phase-`E`, instants phase-`i`, and every counter series emits one
//! final phase-`C` sample. Timestamps are wall-clock microseconds
//! since the recorder epoch; the simulated cycle clock rides along in
//! `args.cycles`.
//!
//! The document is emitted by hand (the substrate is dependency-free),
//! which is easy because the schema is flat: only `name` strings need
//! escaping.

use crate::event::EventKind;
use crate::snapshot::TraceSnapshot;
use std::fmt::Write;

/// Escapes `s` for inclusion inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a microsecond timestamp; half-microsecond resolution is
/// preserved (`1500 ns -> 1.5`), and whole values print without a
/// trailing `.0` — both are valid JSON numbers.
fn ts_us(wall_ns: u64) -> String {
    format!("{}", wall_ns as f64 / 1_000.0)
}

/// Renders the snapshot as a complete Chrome trace JSON document
/// (an object with `traceEvents`, as Perfetto prefers).
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    let mut body = String::new();
    let mut last_ts = String::from("0");
    let mut last_wall = 0u64;
    let mut first = true;
    for ev in &snapshot.events {
        let ph = match ev.kind {
            EventKind::Enter => "B",
            EventKind::Exit => "E",
            EventKind::Instant => "i",
        };
        let ts = ts_us(ev.wall_ns);
        if ev.wall_ns >= last_wall {
            last_wall = ev.wall_ns;
            last_ts = ts.clone();
        }
        let scope = if ev.kind == EventKind::Instant {
            ",\"s\":\"t\""
        } else {
            ""
        };
        let _ = write!(
            body,
            "{}    {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{ts}{scope},\"args\":{{\"cycles\":{}}}}}",
            if first { "" } else { ",\n" },
            escape(&ev.name),
            escape(ev.cat),
            ev.thread,
            ev.cycles,
        );
        first = false;
    }
    // Counters as one closing sample each, so the totals are visible
    // on the timeline without replaying every increment.
    for c in &snapshot.counters {
        let series = if c.labels.is_empty() {
            c.name.to_string()
        } else {
            let labels: Vec<String> = c.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}[{}]", c.name, labels.join(","))
        };
        let _ = write!(
            body,
            "{}    {{\"name\":\"{}\",\"cat\":\"metrics\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{last_ts},\"args\":{{\"value\":{}}}}}",
            if first { "" } else { ",\n" },
            escape(&series),
            c.value,
        );
        first = false;
    }
    format!(
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {{\"droppedEvents\": {}}},\n  \"traceEvents\": [\n{body}\n  ]\n}}\n",
        snapshot.dropped
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::registry::CounterSnapshot;
    use std::borrow::Cow;

    #[test]
    fn export_has_balanced_phases_and_counter_samples() {
        let snap = TraceSnapshot {
            events: vec![
                Event {
                    kind: EventKind::Enter,
                    cat: "nn",
                    name: Cow::Borrowed("forward"),
                    thread: 3,
                    wall_ns: 1_500,
                    cycles: 10,
                },
                Event {
                    kind: EventKind::Instant,
                    cat: "fpga",
                    name: Cow::Borrowed("fault"),
                    thread: 3,
                    wall_ns: 2_000,
                    cycles: 10,
                },
                Event {
                    kind: EventKind::Exit,
                    cat: "nn",
                    name: Cow::Borrowed("forward"),
                    thread: 3,
                    wall_ns: 2_500,
                    cycles: 60,
                },
            ],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "beats_total",
                labels: vec![("channel".into(), "mm2s".into())],
                value: 256,
            }],
            histograms: vec![],
        };
        let text = to_chrome_json(&snap);
        assert!(text.contains("\"traceEvents\": ["));
        assert!(text.contains(
            "{\"name\":\"forward\",\"cat\":\"nn\",\"ph\":\"B\",\"pid\":1,\"tid\":3,\"ts\":1.5,\"args\":{\"cycles\":10}}"
        ));
        assert!(text.contains("\"ph\":\"i\",\"pid\":1,\"tid\":3,\"ts\":2,\"s\":\"t\""));
        assert!(text.contains("\"ph\":\"E\",\"pid\":1,\"tid\":3,\"ts\":2.5"));
        // Counter sample lands at the last event timestamp.
        assert!(text.contains(
            "{\"name\":\"beats_total[channel=mm2s]\",\"cat\":\"metrics\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":2.5,\"args\":{\"value\":256}}"
        ));
        assert!(text.contains("\"droppedEvents\": 0"));
        // Exactly four events -> three separating commas in the array.
        assert_eq!(text.matches("}},\n").count(), 3);
    }

    #[test]
    fn names_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![Event {
                kind: EventKind::Instant,
                cat: "t",
                name: Cow::Borrowed("a\"b\\c\nd"),
                thread: 1,
                wall_ns: 0,
                cycles: 0,
            }],
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        assert!(to_chrome_json(&snap).contains(r#""name":"a\"b\\c\nd""#));
    }

    #[test]
    fn empty_snapshot_is_a_complete_document() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![],
            histograms: vec![],
        };
        let text = to_chrome_json(&snap);
        assert!(text.starts_with('{'));
        assert!(text.trim_end().ends_with('}'));
        assert!(text.contains("\"traceEvents\": ["));
    }
}
