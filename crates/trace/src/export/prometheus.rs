//! Prometheus text exposition (format version 0.0.4): counters with
//! label sets, histograms with cumulative `le` buckets, `_sum` and
//! `_count`, and the recorder's own journal health gauge.

use crate::snapshot::TraceSnapshot;
use std::fmt::Write;

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders the snapshot's metrics as a Prometheus exposition.
pub fn to_prometheus_text(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for c in &snapshot.counters {
        if c.name != last_name {
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            last_name = c.name;
        }
        let _ = writeln!(out, "{}{} {}", c.name, render_labels(&c.labels), c.value);
    }
    for h in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        for (i, bound) in h.bounds.iter().enumerate() {
            let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {}", h.name, h.buckets[i]);
        }
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"+Inf\"}} {}",
            h.name,
            h.buckets.last().copied().unwrap_or(0)
        );
        let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    let _ = writeln!(out, "# TYPE cnn_trace_journal_dropped_events gauge");
    let _ = writeln!(out, "cnn_trace_journal_dropped_events {}", snapshot.dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSnapshot, HistogramSnapshot};

    #[test]
    fn exposition_layout() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 2,
            counters: vec![
                CounterSnapshot {
                    name: "cnn_dma_beats_total",
                    labels: vec![("channel".into(), "mm2s".into())],
                    value: 512,
                },
                CounterSnapshot {
                    name: "cnn_dma_beats_total",
                    labels: vec![("channel".into(), "s2mm".into())],
                    value: 2,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "cnn_image_cycles",
                bounds: vec![256, 1024],
                buckets: vec![1, 3, 4],
                sum: 2000,
                count: 4,
            }],
        };
        let text = to_prometheus_text(&snap);
        // One TYPE line per metric family, not per series.
        assert_eq!(
            text.matches("# TYPE cnn_dma_beats_total counter").count(),
            1
        );
        assert!(text.contains("cnn_dma_beats_total{channel=\"mm2s\"} 512"));
        assert!(text.contains("cnn_dma_beats_total{channel=\"s2mm\"} 2"));
        assert!(text.contains("# TYPE cnn_image_cycles histogram"));
        assert!(text.contains("cnn_image_cycles_bucket{le=\"256\"} 1"));
        assert!(text.contains("cnn_image_cycles_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cnn_image_cycles_sum 2000"));
        assert!(text.contains("cnn_image_cycles_count 4"));
        assert!(text.contains("cnn_trace_journal_dropped_events 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "odd_total",
                labels: vec![("msg".into(), "a\"b\\c".into())],
                value: 1,
            }],
            histograms: vec![],
        };
        assert!(to_prometheus_text(&snap).contains(r#"odd_total{msg="a\"b\\c"} 1"#));
    }
}
