//! Prometheus text exposition (format version 0.0.4): counters with
//! label sets, histograms with cumulative `le` buckets, `_sum` and
//! `_count`, and the recorder's own journal health gauge.

use crate::snapshot::TraceSnapshot;
use std::fmt::Write;

/// Static help text for the workspace's well-known metric families.
///
/// Prometheus treats two series with the same name but different help
/// strings as a scrape error, so every binary that exposes one of these
/// families must describe it identically — which is why the text lives
/// here, next to the exposition writer, instead of at each call site.
/// Returns `None` for ad-hoc metrics; those get a `# TYPE` line only.
pub fn help_for(name: &str) -> Option<&'static str> {
    Some(match name {
        // Front-end (admission, batching, degradation).
        "cnn_frontend_admitted_total" => "Requests accepted into the batching queue.",
        "cnn_frontend_shed_total" => {
            "Requests refused at admission, by reason (deadline estimate or queue_full backpressure)."
        }
        "cnn_frontend_deadline_miss_total" => {
            "Admitted requests whose response completed after their deadline."
        }
        "cnn_frontend_batches_total" => {
            "Batches dispatched by the front-end, by mode (hw or software fallback tier)."
        }
        "cnn_frontend_degrade_transitions_total" => {
            "Degradation-tier changes made by the overload controller."
        }
        "cnn_frontend_queue_depth" => "Queue depth observed at each admission decision.",
        "cnn_frontend_queue_delay_cycles" => {
            "Cycles a request waited in the queue before its batch dispatched."
        }
        // Device pool (retries, hedging, deadline gating).
        "cnn_pool_redispatches_total" => "Retries granted by the pool's retry budget.",
        "cnn_pool_deadline_gated_total" => {
            "Retries or hedges suppressed because they could not finish before the request deadline."
        }
        // Bench sweeps.
        "cnn_fault_sweep_abandoned_images_total" => {
            "Images the fault sweep gave up on after exhausting retries and fallback."
        }
        // Workspace arena.
        "cnn_tensor_workspace_bytes_total" => "Bytes newly allocated into workspace arenas.",
        "cnn_tensor_workspace_shrinks_total" => {
            "Workspace arenas released for exceeding the pool retention cap."
        }
        _ => return None,
    })
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders the snapshot's metrics as a Prometheus exposition.
pub fn to_prometheus_text(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for c in &snapshot.counters {
        if c.name != last_name {
            if let Some(help) = help_for(c.name) {
                let _ = writeln!(out, "# HELP {} {help}", c.name);
            }
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            last_name = c.name;
        }
        let _ = writeln!(out, "{}{} {}", c.name, render_labels(&c.labels), c.value);
    }
    for h in &snapshot.histograms {
        if let Some(help) = help_for(h.name) {
            let _ = writeln!(out, "# HELP {} {help}", h.name);
        }
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        for (i, bound) in h.bounds.iter().enumerate() {
            let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {}", h.name, h.buckets[i]);
        }
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"+Inf\"}} {}",
            h.name,
            h.buckets.last().copied().unwrap_or(0)
        );
        let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    let _ = writeln!(out, "# TYPE cnn_trace_journal_dropped_events gauge");
    let _ = writeln!(out, "cnn_trace_journal_dropped_events {}", snapshot.dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSnapshot, HistogramSnapshot};

    #[test]
    fn exposition_layout() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 2,
            counters: vec![
                CounterSnapshot {
                    name: "cnn_dma_beats_total",
                    labels: vec![("channel".into(), "mm2s".into())],
                    value: 512,
                },
                CounterSnapshot {
                    name: "cnn_dma_beats_total",
                    labels: vec![("channel".into(), "s2mm".into())],
                    value: 2,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "cnn_image_cycles",
                bounds: vec![256, 1024],
                buckets: vec![1, 3, 4],
                sum: 2000,
                count: 4,
            }],
        };
        let text = to_prometheus_text(&snap);
        // One TYPE line per metric family, not per series.
        assert_eq!(
            text.matches("# TYPE cnn_dma_beats_total counter").count(),
            1
        );
        assert!(text.contains("cnn_dma_beats_total{channel=\"mm2s\"} 512"));
        assert!(text.contains("cnn_dma_beats_total{channel=\"s2mm\"} 2"));
        assert!(text.contains("# TYPE cnn_image_cycles histogram"));
        assert!(text.contains("cnn_image_cycles_bucket{le=\"256\"} 1"));
        assert!(text.contains("cnn_image_cycles_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cnn_image_cycles_sum 2000"));
        assert!(text.contains("cnn_image_cycles_count 4"));
        assert!(text.contains("cnn_trace_journal_dropped_events 2"));
    }

    #[test]
    fn known_families_get_a_help_line_before_type() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "cnn_frontend_shed_total",
                labels: vec![("reason".into(), "deadline".into())],
                value: 3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "cnn_frontend_queue_delay_cycles",
                bounds: vec![64],
                buckets: vec![1, 0],
                sum: 10,
                count: 1,
            }],
        };
        let text = to_prometheus_text(&snap);
        let help = text.find("# HELP cnn_frontend_shed_total ").unwrap();
        let ty = text.find("# TYPE cnn_frontend_shed_total counter").unwrap();
        assert!(help < ty, "HELP must precede TYPE");
        assert!(text.contains("# HELP cnn_frontend_queue_delay_cycles "));
        // One HELP line per family, not per series.
        assert_eq!(text.matches("# HELP cnn_frontend_shed_total").count(), 1);
    }

    #[test]
    fn abandoned_and_shed_families_are_distinct() {
        // The fault sweep's abandoned-image counter and the front-end's
        // shed counter measure different failures; their families must
        // never collide in one exposition.
        let a = help_for("cnn_fault_sweep_abandoned_images_total").unwrap();
        let s = help_for("cnn_frontend_shed_total").unwrap();
        assert_ne!(a, s);
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "odd_total",
                labels: vec![("msg".into(), "a\"b\\c".into())],
                value: 1,
            }],
            histograms: vec![],
        };
        assert!(to_prometheus_text(&snap).contains(r#"odd_total{msg="a\"b\\c"} 1"#));
    }
}
