//! Prometheus text exposition (format version 0.0.4): counters with
//! label sets, histograms with cumulative `le` buckets, `_sum` and
//! `_count`, and the recorder's own journal health gauge.

use crate::snapshot::TraceSnapshot;
use std::fmt::Write;

/// Static help text for **every** metric family the workspace
/// registers, one entry per family.
///
/// Prometheus treats two series with the same name but different help
/// strings as a scrape error, so every binary that exposes one of
/// these families must describe it identically — which is why the
/// text lives here, next to the exposition writer, instead of at each
/// call site. The conformance suite (`tests/metrics_conformance.rs`
/// at the workspace root plus the unit tests below) fails the build
/// when a metric is registered without an entry here, when a name
/// drifts off the `cnn_[a-z0-9_]+` grammar, or when a counter loses
/// its `_total` suffix.
pub const METRIC_HELP: &[(&str, &str)] = &[
    // Front-end (admission, batching, degradation, SLO).
    (
        "cnn_frontend_admitted_total",
        "Requests accepted into the batching queue.",
    ),
    (
        "cnn_frontend_shed_total",
        "Requests refused at admission, by reason (deadline estimate or queue_full backpressure).",
    ),
    (
        "cnn_frontend_deadline_miss_total",
        "Admitted requests whose response completed after their deadline.",
    ),
    (
        "cnn_frontend_batches_total",
        "Batches dispatched by the front-end, by mode (hw or software fallback tier).",
    ),
    (
        "cnn_frontend_degrade_transitions_total",
        "Degradation-tier changes made by the overload controller.",
    ),
    (
        "cnn_frontend_slo_breaches_total",
        "SLO burn-rate breach edges detected by the front-end, by objective.",
    ),
    (
        "cnn_frontend_queue_depth",
        "Queue depth observed at each admission decision.",
    ),
    (
        "cnn_frontend_queue_delay_cycles",
        "Cycles a request waited in the queue before its batch dispatched.",
    ),
    // Device pool (dispatching, retries, hedging, deadline gating).
    (
        "cnn_pool_dispatches_total",
        "Device dispatches routed by the pool, by outcome (ok or abandoned).",
    ),
    (
        "cnn_pool_redispatches_total",
        "Retries granted by the pool's retry budget.",
    ),
    (
        "cnn_pool_hedges_total",
        "Hedge duplicates issued for dispatches that ran past their device's tail latency.",
    ),
    (
        "cnn_pool_fallback_total",
        "Requests degraded to the bit-exact software fallback after every device declined.",
    ),
    (
        "cnn_pool_deadline_gated_total",
        "Retries or hedges suppressed because they could not finish before the request deadline.",
    ),
    (
        "cnn_pool_dispatch_cycles",
        "Simulated cycles consumed per pool dispatch.",
    ),
    // Device / DMA transport.
    (
        "cnn_images_total",
        "Images processed by batch device dispatch, by outcome.",
    ),
    (
        "cnn_image_dma_cycles",
        "Simulated DMA cycles consumed per dispatched image.",
    ),
    (
        "cnn_dma_beats_total",
        "AXI-Stream data beats transferred, by channel (mm2s or s2mm).",
    ),
    (
        "cnn_dma_reg_writes_total",
        "DMA control-register writes issued to the register file.",
    ),
    (
        "cnn_dma_retries_total",
        "Image transfer attempts retried after a detected transport fault.",
    ),
    (
        "cnn_dma_resets_total",
        "DMA soft resets issued while recovering from transport faults.",
    ),
    (
        "cnn_faults_injected_total",
        "Transport faults injected by the configured fault plan.",
    ),
    (
        "cnn_crc_detected_total",
        "Corrupted streams caught by the CRC trailer check.",
    ),
    (
        "cnn_sw_fallback_images_total",
        "Images classified by the software fallback path.",
    ),
    // Silent-data-corruption defense (scrubber, canaries, attestation).
    (
        "cnn_scrub_runs_total",
        "Weight-memory scrub passes executed against the golden digests.",
    ),
    (
        "cnn_scrub_dirty_banks_total",
        "Weight banks whose checksum diverged from the golden digest during a scrub.",
    ),
    (
        "cnn_canary_probes_total",
        "Golden canary probes dispatched to devices, by result (pass or fail).",
    ),
    (
        "cnn_sdc_seu_injected_total",
        "Seeded SEU bit flips applied to on-device weight memory by the fault plan.",
    ),
    (
        "cnn_sdc_attest_checks_total",
        "Served predictions re-executed on the bit-exact software path for attestation.",
    ),
    (
        "cnn_sdc_attest_mismatches_total",
        "Attestation re-executions whose software prediction disagreed with the device.",
    ),
    (
        "cnn_sdc_quarantines_total",
        "Devices quarantined for silent data corruption, by detector (scrub, canary or attest).",
    ),
    (
        "cnn_sdc_reloads_total",
        "Weight-memory reloads from the golden image triggered by an SDC detector.",
    ),
    (
        "cnn_sdc_correctness_breaches_total",
        "Correctness SLO burn-rate breach edges driven by canary and attestation outcomes.",
    ),
    // Rolling reconfiguration (blue-green model rollout).
    (
        "cnn_rollout_started_total",
        "Rolling reconfigurations begun against a device pool.",
    ),
    (
        "cnn_rollout_drains_total",
        "Devices drained of in-flight work ahead of a version swap.",
    ),
    (
        "cnn_rollout_swaps_total",
        "Device bitstream + weight-bank swaps performed, by outcome (ok or failed).",
    ),
    (
        "cnn_rollout_canary_probes_total",
        "Golden canary probes run against freshly swapped devices, by result (pass or fail).",
    ),
    (
        "cnn_rollout_promotions_total",
        "Rollouts promoted fleet-wide after a clean canary SLO window.",
    ),
    (
        "cnn_rollout_rollbacks_total",
        "Rollouts rolled back to the prior version, by reason (canary, slo or resume).",
    ),
    (
        "cnn_rollout_journal_records_total",
        "Rollout journal records appended to the crash-safe store, by step.",
    ),
    (
        "cnn_rollout_resumes_total",
        "Rollouts resumed from a persisted journal after a restart, by direction (forward or rollback).",
    ),
    // Bench sweeps.
    (
        "cnn_fault_sweep_abandoned_images_total",
        "Images the fault sweep gave up on after exhausting retries and fallback.",
    ),
    // Tensor engine and workspace arena.
    (
        "cnn_tensor_gemm_flops_total",
        "Floating-point operations executed by the blocked GEMM engine.",
    ),
    ("cnn_tensor_pack_hits_total", "GEMM weight-pack cache hits."),
    (
        "cnn_tensor_pack_misses_total",
        "GEMM weight-pack cache misses (pack computed and cached).",
    ),
    (
        "cnn_tensor_gemm_int8_macs_total",
        "Widening multiply-accumulates executed by the int8 GEMM engine.",
    ),
    (
        "cnn_tensor_gemm_int8_calls_total",
        "Int8 GEMM invocations.",
    ),
    // Quantized inference.
    (
        "cnn_quant_infer_total",
        "Images inferred through the int8 quantized engine.",
    ),
    (
        "cnn_quant_pack_hits_total",
        "Quantized weight-pack cache hits.",
    ),
    (
        "cnn_quant_pack_misses_total",
        "Quantized weight-pack cache misses (pack computed and cached).",
    ),
    (
        "cnn_quant_requant_saturations_total",
        "Requantize epilogue outputs clamped to the i8 boundary.",
    ),
    (
        "cnn_tensor_workspace_bytes_total",
        "Bytes newly allocated into workspace arenas.",
    ),
    (
        "cnn_tensor_workspace_shrinks_total",
        "Workspace arenas released for exceeding the pool retention cap.",
    ),
    // Training and resumable workflows.
    ("cnn_train_epochs_total", "Training epochs completed."),
    (
        "cnn_resume_stages_executed_total",
        "Workflow stages executed (not satisfied from checkpoints).",
    ),
    (
        "cnn_resume_stages_skipped_total",
        "Workflow stages satisfied from persisted checkpoints.",
    ),
    // Artifact store.
    ("cnn_store_puts_total", "Artifacts written to the store."),
    (
        "cnn_store_put_hits_total",
        "Store writes deduplicated against an existing identical artifact.",
    ),
    ("cnn_store_gets_total", "Artifacts read from the store."),
    (
        "cnn_store_verify_failures_total",
        "Store reads that failed checksum verification.",
    ),
    // The recorder's own health gauge (synthesized by this exporter).
    (
        "cnn_trace_journal_dropped_events",
        "Journal events evicted because the bounded ring was full.",
    ),
];

/// Help text for `name`, looked up in [`METRIC_HELP`]. `None` for
/// ad-hoc metrics (tests, scratch series); those get a `# TYPE` line
/// only.
pub fn help_for(name: &str) -> Option<&'static str> {
    METRIC_HELP
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, help)| help)
}

/// Whether `name` follows the workspace metric-name grammar:
/// `cnn_` followed by at least one of `[a-z0-9_]`.
pub fn metric_name_conforms(name: &str) -> bool {
    name.strip_prefix("cnn_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and line feed.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text per the exposition format: backslash and
/// line feed (quotes are legal in help text).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders the snapshot's metrics as a Prometheus exposition.
pub fn to_prometheus_text(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for c in &snapshot.counters {
        if c.name != last_name {
            if let Some(help) = help_for(c.name) {
                let _ = writeln!(out, "# HELP {} {}", c.name, escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {} counter", c.name);
            last_name = c.name;
        }
        let _ = writeln!(out, "{}{} {}", c.name, render_labels(&c.labels), c.value);
    }
    for h in &snapshot.histograms {
        if let Some(help) = help_for(h.name) {
            let _ = writeln!(out, "# HELP {} {}", h.name, escape_help(help));
        }
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        for (i, bound) in h.bounds.iter().enumerate() {
            let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {}", h.name, h.buckets[i]);
        }
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"+Inf\"}} {}",
            h.name,
            h.buckets.last().copied().unwrap_or(0)
        );
        let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    let _ = writeln!(out, "# TYPE cnn_trace_journal_dropped_events gauge");
    let _ = writeln!(out, "cnn_trace_journal_dropped_events {}", snapshot.dropped);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterSnapshot, HistogramSnapshot};

    #[test]
    fn exposition_layout() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 2,
            counters: vec![
                CounterSnapshot {
                    name: "cnn_dma_beats_total",
                    labels: vec![("channel".into(), "mm2s".into())],
                    value: 512,
                },
                CounterSnapshot {
                    name: "cnn_dma_beats_total",
                    labels: vec![("channel".into(), "s2mm".into())],
                    value: 2,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "cnn_image_cycles",
                bounds: vec![256, 1024],
                buckets: vec![1, 3, 4],
                sum: 2000,
                count: 4,
            }],
        };
        let text = to_prometheus_text(&snap);
        // One TYPE line per metric family, not per series.
        assert_eq!(
            text.matches("# TYPE cnn_dma_beats_total counter").count(),
            1
        );
        assert!(text.contains("cnn_dma_beats_total{channel=\"mm2s\"} 512"));
        assert!(text.contains("cnn_dma_beats_total{channel=\"s2mm\"} 2"));
        assert!(text.contains("# TYPE cnn_image_cycles histogram"));
        assert!(text.contains("cnn_image_cycles_bucket{le=\"256\"} 1"));
        assert!(text.contains("cnn_image_cycles_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("cnn_image_cycles_sum 2000"));
        assert!(text.contains("cnn_image_cycles_count 4"));
        assert!(text.contains("cnn_trace_journal_dropped_events 2"));
    }

    #[test]
    fn known_families_get_a_help_line_before_type() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "cnn_frontend_shed_total",
                labels: vec![("reason".into(), "deadline".into())],
                value: 3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "cnn_frontend_queue_delay_cycles",
                bounds: vec![64],
                buckets: vec![1, 0],
                sum: 10,
                count: 1,
            }],
        };
        let text = to_prometheus_text(&snap);
        let help = text.find("# HELP cnn_frontend_shed_total ").unwrap();
        let ty = text.find("# TYPE cnn_frontend_shed_total counter").unwrap();
        assert!(help < ty, "HELP must precede TYPE");
        assert!(text.contains("# HELP cnn_frontend_queue_delay_cycles "));
        // One HELP line per family, not per series.
        assert_eq!(text.matches("# HELP cnn_frontend_shed_total").count(), 1);
    }

    #[test]
    fn abandoned_and_shed_families_are_distinct() {
        // The fault sweep's abandoned-image counter and the front-end's
        // shed counter measure different failures; their families must
        // never collide in one exposition.
        let a = help_for("cnn_fault_sweep_abandoned_images_total").unwrap();
        let s = help_for("cnn_frontend_shed_total").unwrap();
        assert_ne!(a, s);
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "odd_total",
                labels: vec![("msg".into(), "a\"b\\c".into())],
                value: 1,
            }],
            histograms: vec![],
        };
        assert!(to_prometheus_text(&snap).contains(r#"odd_total{msg="a\"b\\c"} 1"#));
    }

    /// Exposition-format grammar: a linefeed in a label value must be
    /// escaped to `\n` — a raw newline splits the sample line and
    /// corrupts the whole scrape.
    #[test]
    fn newlines_in_label_values_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![],
            dropped: 0,
            counters: vec![CounterSnapshot {
                name: "odd_total",
                labels: vec![("msg".into(), "line1\nline2".into())],
                value: 1,
            }],
            histograms: vec![],
        };
        let text = to_prometheus_text(&snap);
        assert!(text.contains(r#"odd_total{msg="line1\nline2"} 1"#));
        // Every line of the exposition must be a comment, a sample, or
        // blank — i.e. no line may *start* mid-value.
        for line in text.lines() {
            assert!(
                line.is_empty()
                    || line.starts_with('#')
                    || line
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_'),
                "malformed exposition line: {line:?}"
            );
        }
    }

    /// `# HELP` text is escaped per the grammar: `\\` for backslash,
    /// `\n` for line feed — and the escaping round-trips.
    #[test]
    fn help_text_is_escaped() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label_value("a\\\"b\nc"), "a\\\\\\\"b\\nc");
        // Escape backslashes first: the output of one escape must not
        // be re-escaped by the next.
        assert_eq!(escape_help("\\n"), "\\\\n");
    }

    /// Every entry of the help table itself obeys the naming and
    /// formatting rules — the table is the conformance baseline, so
    /// it must not drift either.
    #[test]
    fn help_table_is_self_conformant() {
        let mut seen = std::collections::BTreeSet::new();
        for &(name, help) in METRIC_HELP {
            assert!(metric_name_conforms(name), "{name} violates cnn_[a-z0-9_]+");
            assert!(seen.insert(name), "duplicate help entry for {name}");
            assert!(!help.is_empty(), "{name} has empty help");
            assert!(
                !help.contains('\n') && !help.contains('\\'),
                "{name} help needs no escaping by construction"
            );
        }
    }

    #[test]
    fn name_grammar_rejects_drift() {
        assert!(metric_name_conforms("cnn_pool_hedges_total"));
        assert!(metric_name_conforms("cnn_image_dma_cycles"));
        assert!(!metric_name_conforms("cnn_"), "empty suffix");
        assert!(!metric_name_conforms("pool_hedges_total"), "no prefix");
        assert!(!metric_name_conforms("cnn_Pool_hedges_total"), "uppercase");
        assert!(!metric_name_conforms("cnn_pool-hedges"), "dash");
        assert!(!metric_name_conforms("cnn_pool hedges"), "space");
    }
}
