//! Snapshot exporters: Chrome trace-event JSON, Prometheus text
//! exposition, and the human-readable per-span latency table.

pub mod chrome;
pub mod json;
pub mod prometheus;
pub mod table;
