//! The metrics registry: monotonic counters and fixed-bucket
//! histograms.
//!
//! The hot path is "add to an existing counter", which takes one read
//! lock plus one relaxed atomic add; the write lock is only ever taken
//! to create a series. That is lock-free enough for the stack's
//! instrumentation density (a handful of series, updated from rayon
//! workers and the co-simulation threads). Locks are poison-tolerant:
//! a panicking instrumented thread must not disable metrics for the
//! rest of the process.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Bucket upper bounds (inclusive, in simulated cycles) used for every
/// histogram: powers of four spanning one stream beat to a whole
/// CIFAR-scale batch. Fixed at creation — observations never
/// reallocate.
pub const DEFAULT_BUCKETS: [u64; 10] = [
    256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216, 67_108_864,
];

/// One counter series, fully resolved (name + sorted labels).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name (Prometheus-style `*_total`).
    pub name: &'static str,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: u64,
}

/// One histogram's state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Bucket upper bounds (a final `+Inf` bucket is implicit).
    pub bounds: Vec<u64>,
    /// Cumulative counts per bound, plus the `+Inf` count last
    /// (Prometheus `le` semantics: `buckets[i]` counts observations
    /// `<= bounds[i]`).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// smallest bucket bound whose cumulative count covers a `q`
    /// fraction of the observations. Returns `None` for an empty
    /// histogram, and `u64::MAX` when the quantile falls in the
    /// implicit `+Inf` bucket — callers comparing a latency against
    /// `quantile(0.99)` get a conservative (never under-reported)
    /// threshold.
    ///
    /// The `None` cold-start case is load-bearing for admission
    /// control: `cnn-serve`'s queue-delay estimator treats "no
    /// observations yet" as *no estimate* and admits optimistically,
    /// rather than inventing a zero that would never shed or an
    /// infinity that would shed everything. Don't replace `None`
    /// with a default here; `cnn-serve::deadline` has a regression
    /// test pinning this contract.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        crate::hist::bucket_quantile(&self.bounds, self.buckets.iter().copied(), self.count, q)
    }
}

struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (the +Inf bucket)
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A series key: metric name plus rendered labels — the `BTreeMap`
/// order gives the exposition a deterministic layout.
type SeriesKey = (&'static str, Vec<(String, String)>);

/// The counter + histogram store.
pub struct Registry {
    counters: RwLock<BTreeMap<SeriesKey, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Adds `delta` to the counter series, creating it at zero first.
    pub fn counter_add(&self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        let key: SeriesKey = (
            name,
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
        if let Some(c) = read(&self.counters).get(&key) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let mut w = write(&self.counters);
        w.entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Observes `value` in histogram `name` (created on first use with
    /// [`DEFAULT_BUCKETS`]).
    pub fn observe(&self, name: &'static str, value: u64) {
        if let Some(h) = read(&self.histograms).get(name) {
            h.observe(value);
            return;
        }
        let h = {
            let mut w = write(&self.histograms);
            w.entry(name)
                .or_insert_with(|| Arc::new(Histogram::new(&DEFAULT_BUCKETS)))
                .clone()
        };
        h.observe(value);
    }

    /// All counter series, deterministically ordered.
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        read(&self.counters)
            .iter()
            .map(|((name, labels), v)| CounterSnapshot {
                name,
                labels: labels.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// All histograms, deterministically ordered. Bucket counts are
    /// cumulative (Prometheus `le` convention).
    pub fn histograms(&self) -> Vec<HistogramSnapshot> {
        read(&self.histograms)
            .iter()
            .map(|(name, h)| {
                let raw: Vec<u64> = h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect();
                let mut cumulative = Vec::with_capacity(raw.len());
                let mut acc = 0;
                for c in raw {
                    acc += c;
                    cumulative.push(acc);
                }
                HistogramSnapshot {
                    name,
                    bounds: h.bounds.clone(),
                    buckets: cumulative,
                    sum: h.sum.load(Ordering::Relaxed),
                    count: h.count.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Drops every series.
    pub fn clear(&self) {
        write(&self.counters).clear();
        write(&self.histograms).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.counter_add("beats_total", &[("channel", "mm2s")], 10);
        r.counter_add("beats_total", &[("channel", "mm2s")], 5);
        r.counter_add("beats_total", &[("channel", "s2mm")], 1);
        let c = r.counters();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].labels[0].1, "mm2s");
        assert_eq!(c[0].value, 15);
        assert_eq!(c[1].value, 1);
    }

    #[test]
    fn zero_add_registers_the_series() {
        let r = Registry::new();
        r.counter_add("faults_total", &[], 0);
        assert_eq!(
            r.counters(),
            vec![CounterSnapshot {
                name: "faults_total",
                labels: vec![],
                value: 0
            }]
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let r = Registry::new();
        r.observe("lat", 100); // <= 256
        r.observe("lat", 300); // <= 1024
        r.observe("lat", u64::MAX); // +Inf
        let h = &r.histograms()[0];
        assert_eq!(h.bounds, DEFAULT_BUCKETS.to_vec());
        assert_eq!(h.buckets.len(), DEFAULT_BUCKETS.len() + 1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(*h.buckets.last().unwrap(), 3);
        assert_eq!(h.count, 3);
    }

    #[test]
    fn quantile_walks_cumulative_buckets() {
        let r = Registry::new();
        for _ in 0..99 {
            r.observe("lat", 100); // bucket <= 256
        }
        r.observe("lat", 5_000); // bucket <= 16_384
        let h = &r.histograms()[0];
        assert_eq!(h.quantile(0.5), Some(256));
        assert_eq!(h.quantile(0.99), Some(256));
        assert_eq!(h.quantile(1.0), Some(16_384));
        assert_eq!(h.quantile(0.0), Some(256));
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramSnapshot {
            name: "e",
            bounds: DEFAULT_BUCKETS.to_vec(),
            buckets: vec![0; DEFAULT_BUCKETS.len() + 1],
            sum: 0,
            count: 0,
        };
        assert_eq!(empty.quantile(0.99), None);
        let r = Registry::new();
        r.observe("lat2", u64::MAX); // +Inf bucket only
        let h = &r.histograms()[0];
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let r = std::sync::Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter_add("spins_total", &[], 1);
                        r.observe("spin_lat", 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counters()[0].value, 8000);
        assert_eq!(r.histograms()[0].count, 8000);
    }

    #[test]
    fn clear_empties_everything() {
        let r = Registry::new();
        r.counter_add("x_total", &[], 1);
        r.observe("y", 1);
        r.clear();
        assert!(r.counters().is_empty());
        assert!(r.histograms().is_empty());
    }
}
