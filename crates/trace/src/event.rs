//! Journal events and the bounded ring buffer holding them.

use crate::clock;
use std::borrow::Cow;
use std::collections::VecDeque;

/// What an [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (Chrome phase `B`).
    Enter,
    /// A span closed (Chrome phase `E`).
    Exit,
    /// A point-in-time occurrence (Chrome phase `i`).
    Instant,
}

/// One journal entry: a span edge or an instant, stamped on both
/// clocks.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Edge or instant.
    pub kind: EventKind,
    /// Subsystem category (`"nn"`, `"fpga"`, ...).
    pub cat: &'static str,
    /// Span/event name.
    pub name: Cow<'static, str>,
    /// Dense id of the recording thread.
    pub thread: u64,
    /// Nanoseconds since the recorder epoch.
    pub wall_ns: u64,
    /// The recording thread's simulated-cycle clock.
    pub cycles: u64,
}

impl Event {
    /// An event stamped with the calling thread's clocks, now.
    pub fn now(kind: EventKind, cat: &'static str, name: Cow<'static, str>) -> Event {
        Event {
            kind,
            cat,
            name,
            thread: clock::thread_id(),
            wall_ns: clock::wall_ns(),
            cycles: clock::cycles(),
        }
    }
}

/// A bounded FIFO of events: pushing past capacity evicts the oldest
/// entry and counts it, so a long run degrades to "most recent window"
/// instead of unbounded memory.
#[derive(Debug)]
pub struct Journal {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Journal {
    /// An empty journal bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Journal {
        assert!(capacity > 0, "journal capacity must be positive");
        Journal {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends, evicting the oldest event when full.
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empties the journal and resets the eviction count.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}
