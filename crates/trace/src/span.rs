//! The RAII span guard.

use crate::event::{Event, EventKind};
use std::borrow::Cow;

/// An open span: records its exit (with fresh wall/cycle timestamps)
/// when dropped. Obtained from [`crate::span`](fn@crate::span) /
/// [`crate::span_lazy`];
/// inert when the recorder is off, so guards cost one branch on the
/// disabled path.
#[must_use = "a span guard records its exit on drop; binding it to _ closes it immediately"]
pub struct SpanGuard {
    // (cat, name) while active; None for the disabled no-op guard.
    open: Option<(&'static str, Cow<'static, str>)>,
}

impl SpanGuard {
    /// The no-op guard handed out while recording is disabled.
    pub(crate) fn inactive() -> SpanGuard {
        SpanGuard { open: None }
    }

    /// Records the enter edge and arms the exit.
    pub(crate) fn enter(cat: &'static str, name: Cow<'static, str>) -> SpanGuard {
        crate::record(Event::now(EventKind::Enter, cat, name.clone()));
        SpanGuard {
            open: Some((cat, name)),
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cat, name)) = self.open.take() {
            // Record the exit even if the recorder was disabled
            // mid-span, so enter/exit pairs stay balanced.
            crate::record(Event::now(EventKind::Exit, cat, name));
        }
    }
}
