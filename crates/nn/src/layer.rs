//! Layer definitions: forward evaluation, shape propagation and
//! parameter access. Backward passes live in [`crate::grad`].

use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::{pool, PoolKind};
use cnn_tensor::ops::softmax::log_softmax;
use cnn_tensor::ops::{conv::conv2d_valid, linear::linear};
use cnn_tensor::{Shape, Tensor, Tensor4};
use serde::{Deserialize, Serialize};

/// A convolutional layer: `K` kernels of `C`×`M`×`N` weights plus one
/// bias per kernel, computing Eq. (1), optionally followed by an
/// element-wise activation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Conv2dLayer {
    /// Kernel bank `(K, C, M, N)`.
    pub kernels: Tensor4,
    /// One bias per kernel.
    pub bias: Vec<f32>,
    /// Optional nonlinearity applied to the feature maps.
    pub activation: Option<Activation>,
}

/// A sub-sampling layer (Eqs. 4–5). The paper's GUI integrates it with
/// the preceding convolutional layer; here it is an explicit layer with
/// identical semantics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolLayer {
    /// Max or mean.
    pub kind: PoolKind,
    /// Window height.
    pub kh: usize,
    /// Window width.
    pub kw: usize,
    /// Stride (the paper's `p_step`); the GUI default equals the window.
    pub step: usize,
}

/// A linear (perceptron) layer computing Eq. (6) over a flattened
/// input, optionally followed by tanh (the paper's per-layer checkbox).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearLayer {
    /// Row-major `(outputs x inputs)` weight matrix.
    pub weights: Vec<f32>,
    /// One bias per output neuron.
    pub bias: Vec<f32>,
    /// Number of input features.
    pub inputs: usize,
    /// Number of output neurons.
    pub outputs: usize,
    /// Optional nonlinearity.
    pub activation: Option<Activation>,
}

/// One network layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Layer {
    /// Convolution (Eq. 1).
    Conv2d(Conv2dLayer),
    /// Sub-sampling (Eqs. 4–5).
    Pool(PoolLayer),
    /// Reinterpret `C×H×W` as a flat vector at the conv→linear boundary.
    Flatten,
    /// Perceptron (Eq. 6).
    Linear(LinearLayer),
    /// Output normalization (Eq. 7); appended by default by the
    /// framework's code generator.
    LogSoftMax,
}

impl Layer {
    /// Output shape for a given input shape, or a message describing the
    /// incompatibility.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, String> {
        match self {
            Layer::Conv2d(c) => {
                if c.kernels.channels() != input.c {
                    return Err(format!(
                        "conv expects {} input channels, got {}",
                        c.kernels.channels(),
                        input.c
                    ));
                }
                input
                    .conv_output(c.kernels.kernels(), c.kernels.kh(), c.kernels.kw())
                    .ok_or_else(|| {
                        format!(
                            "conv kernel {}x{} does not fit input {input}",
                            c.kernels.kh(),
                            c.kernels.kw()
                        )
                    })
            }
            Layer::Pool(p) => input
                .pool_output(p.kh, p.kw, p.step)
                .ok_or_else(|| format!("pool {}x{}/{} does not fit {input}", p.kh, p.kw, p.step)),
            Layer::Flatten => Ok(Shape::new(1, 1, input.len())),
            Layer::Linear(l) => {
                if input.c != 1 || input.h != 1 {
                    return Err(format!("linear expects a flat input, got {input}"));
                }
                if input.w != l.inputs {
                    return Err(format!(
                        "linear expects {} inputs, got {}",
                        l.inputs, input.w
                    ));
                }
                Ok(Shape::new(1, 1, l.outputs))
            }
            Layer::LogSoftMax => {
                if input.c != 1 || input.h != 1 {
                    return Err(format!("log_softmax expects a flat input, got {input}"));
                }
                Ok(input)
            }
        }
    }

    /// Evaluates the layer from a borrowed input. For `Flatten` this
    /// must clone the buffer to keep the signature — hot paths should
    /// use [`Layer::forward_owned`] (or the engine in
    /// `Network::infer`), where flatten is a zero-copy reshape.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        match self {
            Layer::Flatten => input.clone().flatten(),
            _ => self.forward_borrowed(input),
        }
    }

    /// Evaluates the layer, consuming the input. Identical results to
    /// [`Layer::forward`], but `Flatten` becomes a zero-copy reshape of
    /// the input's own buffer instead of a clone.
    pub fn forward_owned(&self, input: Tensor) -> Tensor {
        match self {
            Layer::Flatten => input.flatten(),
            _ => self.forward_borrowed(&input),
        }
    }

    /// The non-flatten layer kinds, which never need input ownership.
    fn forward_borrowed(&self, input: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(c) => {
                let mut out = conv2d_valid(input, &c.kernels, &c.bias);
                if let Some(act) = c.activation {
                    act.apply_slice(out.as_mut_slice());
                }
                out
            }
            Layer::Pool(p) => pool(input, p.kh, p.kw, p.step, p.kind),
            Layer::Flatten => unreachable!("flatten handled by forward/forward_owned"),
            Layer::Linear(l) => {
                let mut out = vec![0.0; l.outputs];
                linear(input.as_slice(), &l.weights, &l.bias, &mut out);
                if let Some(act) = l.activation {
                    act.apply_slice(&mut out);
                }
                Tensor::from_vec(Shape::new(1, 1, l.outputs), out)
            }
            Layer::LogSoftMax => {
                let out = log_softmax(input.as_slice());
                Tensor::from_vec(input.shape(), out)
            }
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(c) => c.kernels.len() + c.bias.len(),
            Layer::Linear(l) => l.weights.len() + l.bias.len(),
            _ => 0,
        }
    }

    /// Short human-readable kind tag used in summaries and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Pool(PoolLayer {
                kind: PoolKind::Max,
                ..
            }) => "max_pool",
            Layer::Pool(PoolLayer {
                kind: PoolKind::Mean,
                ..
            }) => "mean_pool",
            Layer::Flatten => "flatten",
            Layer::Linear(_) => "linear",
            Layer::LogSoftMax => "log_softmax",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer(k: usize, c: usize, m: usize, n: usize) -> Layer {
        Layer::Conv2d(Conv2dLayer {
            kernels: Tensor4::ones(k, c, m, n),
            bias: vec![0.0; k],
            activation: None,
        })
    }

    fn linear_layer(ni: usize, no: usize) -> Layer {
        Layer::Linear(LinearLayer {
            weights: vec![0.0; ni * no],
            bias: vec![0.0; no],
            inputs: ni,
            outputs: no,
            activation: None,
        })
    }

    #[test]
    fn conv_shape_propagation() {
        let l = conv_layer(6, 1, 5, 5);
        assert_eq!(
            l.output_shape(Shape::new(1, 16, 16)).unwrap(),
            Shape::new(6, 12, 12)
        );
    }

    #[test]
    fn conv_shape_rejects_channel_mismatch() {
        let l = conv_layer(6, 3, 5, 5);
        let err = l.output_shape(Shape::new(1, 16, 16)).unwrap_err();
        assert!(err.contains("input channels"), "{err}");
    }

    #[test]
    fn conv_shape_rejects_oversized_kernel() {
        let l = conv_layer(2, 1, 9, 9);
        assert!(l.output_shape(Shape::new(1, 8, 8)).is_err());
    }

    #[test]
    fn pool_shape_propagation() {
        let l = Layer::Pool(PoolLayer {
            kind: PoolKind::Max,
            kh: 2,
            kw: 2,
            step: 2,
        });
        assert_eq!(
            l.output_shape(Shape::new(6, 12, 12)).unwrap(),
            Shape::new(6, 6, 6)
        );
    }

    #[test]
    fn flatten_shape() {
        assert_eq!(
            Layer::Flatten.output_shape(Shape::new(6, 6, 6)).unwrap(),
            Shape::new(1, 1, 216)
        );
    }

    #[test]
    fn linear_shape_checks_flat_input() {
        let l = linear_layer(216, 10);
        assert!(l.output_shape(Shape::new(6, 6, 6)).is_err());
        assert_eq!(
            l.output_shape(Shape::new(1, 1, 216)).unwrap(),
            Shape::new(1, 1, 10)
        );
        assert!(l.output_shape(Shape::new(1, 1, 215)).is_err());
    }

    #[test]
    fn log_softmax_shape_identity() {
        assert_eq!(
            Layer::LogSoftMax
                .output_shape(Shape::new(1, 1, 10))
                .unwrap(),
            Shape::new(1, 1, 10)
        );
        assert!(Layer::LogSoftMax.output_shape(Shape::new(2, 2, 2)).is_err());
    }

    #[test]
    fn conv_forward_with_relu_clamps() {
        let l = Layer::Conv2d(Conv2dLayer {
            kernels: Tensor4::from_vec(1, 1, 1, 1, vec![1.0]),
            bias: vec![-5.0],
            activation: Some(Activation::Relu),
        });
        let input = Tensor::from_vec(Shape::new(1, 1, 3), vec![1.0, 6.0, 4.0]);
        let out = l.forward(&input);
        assert_eq!(out.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn linear_forward_with_tanh() {
        let l = Layer::Linear(LinearLayer {
            weights: vec![100.0],
            bias: vec![0.0],
            inputs: 1,
            outputs: 1,
            activation: Some(Activation::Tanh),
        });
        let out = l.forward(&Tensor::from_vec(Shape::new(1, 1, 1), vec![1.0]));
        assert!((out.as_slice()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_forward_normalizes() {
        let out =
            Layer::LogSoftMax.forward(&Tensor::from_vec(Shape::new(1, 1, 3), vec![1.0, 2.0, 3.0]));
        let sum_p: f32 = out.as_slice().iter().map(|v| v.exp()).sum();
        assert!((sum_p - 1.0).abs() < 1e-5);
    }

    #[test]
    fn forward_owned_matches_forward_and_flatten_reshapes() {
        let input = Tensor::from_fn(Shape::new(2, 3, 3), |c, y, x| (c * 9 + y * 3 + x) as f32);
        for l in [
            conv_layer(2, 2, 2, 2),
            Layer::Pool(PoolLayer {
                kind: PoolKind::Max,
                kh: 3,
                kw: 3,
                step: 3,
            }),
            Layer::Flatten,
        ] {
            let a = l.forward(&input);
            let b = l.forward_owned(input.clone());
            assert_eq!(a, b, "{}", l.kind_name());
        }
        // Flatten via forward_owned is a pure reshape: same buffer length,
        // same data, flat shape.
        let flat = Layer::Flatten.forward_owned(input.clone());
        assert_eq!(flat.shape(), Shape::new(1, 1, 18));
        assert_eq!(flat.as_slice(), input.as_slice());
    }

    #[test]
    fn param_counts_match_paper_test1() {
        // conv: 6*1*5*5 + 6 = 156; linear: 216*10 + 10 = 2170
        assert_eq!(conv_layer(6, 1, 5, 5).param_count(), 156);
        assert_eq!(linear_layer(216, 10).param_count(), 2170);
        assert_eq!(Layer::Flatten.param_count(), 0);
        assert_eq!(Layer::LogSoftMax.param_count(), 0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(conv_layer(1, 1, 1, 1).kind_name(), "conv2d");
        assert_eq!(
            Layer::Pool(PoolLayer {
                kind: PoolKind::Mean,
                kh: 2,
                kw: 2,
                step: 2
            })
            .kind_name(),
            "mean_pool"
        );
        assert_eq!(Layer::LogSoftMax.kind_name(), "log_softmax");
    }

    #[test]
    fn layer_serde_roundtrip_tagged() {
        let l = conv_layer(2, 1, 3, 3);
        let json = serde_json::to_string(&l).unwrap();
        assert!(json.contains("\"type\":\"conv2d\""));
        let back: Layer = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
