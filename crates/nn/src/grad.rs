//! Backpropagation: per-layer backward passes and gradient containers.
//!
//! The paper trains with Torch; this module is the from-scratch
//! replacement. Gradients are validated against central finite
//! differences in the test suite.

use crate::layer::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::{Shape, Tensor, Tensor4};

/// Gradient storage for one layer's parameters (empty for layers
/// without parameters).
#[derive(Clone, Debug, PartialEq)]
pub enum LayerGrads {
    /// Conv kernel and bias gradients.
    Conv2d {
        /// dL/dW, same shape as the kernel bank.
        kernels: Tensor4,
        /// dL/db.
        bias: Vec<f32>,
    },
    /// Linear weight and bias gradients.
    Linear {
        /// dL/dW, row-major `(outputs x inputs)`.
        weights: Vec<f32>,
        /// dL/db.
        bias: Vec<f32>,
    },
    /// No parameters.
    None,
}

impl LayerGrads {
    /// Zero-gradient container matching `layer`'s parameters.
    pub fn zeros_like(layer: &Layer) -> LayerGrads {
        match layer {
            Layer::Conv2d(c) => LayerGrads::Conv2d {
                kernels: Tensor4::zeros(
                    c.kernels.kernels(),
                    c.kernels.channels(),
                    c.kernels.kh(),
                    c.kernels.kw(),
                ),
                bias: vec![0.0; c.bias.len()],
            },
            Layer::Linear(l) => LayerGrads::Linear {
                weights: vec![0.0; l.weights.len()],
                bias: vec![0.0; l.bias.len()],
            },
            _ => LayerGrads::None,
        }
    }

    /// Accumulates `other` into `self` (mini-batch summation).
    pub fn accumulate(&mut self, other: &LayerGrads) {
        match (self, other) {
            (
                LayerGrads::Conv2d {
                    kernels: k1,
                    bias: b1,
                },
                LayerGrads::Conv2d {
                    kernels: k2,
                    bias: b2,
                },
            ) => {
                for (a, b) in k1.as_mut_slice().iter_mut().zip(k2.as_slice()) {
                    *a += b;
                }
                for (a, b) in b1.iter_mut().zip(b2) {
                    *a += b;
                }
            }
            (
                LayerGrads::Linear {
                    weights: w1,
                    bias: b1,
                },
                LayerGrads::Linear {
                    weights: w2,
                    bias: b2,
                },
            ) => {
                for (a, b) in w1.iter_mut().zip(w2) {
                    *a += b;
                }
                for (a, b) in b1.iter_mut().zip(b2) {
                    *a += b;
                }
            }
            (LayerGrads::None, LayerGrads::None) => {}
            _ => panic!("gradient kind mismatch in accumulate"),
        }
    }

    /// Scales all gradients by `s` (mini-batch averaging).
    pub fn scale(&mut self, s: f32) {
        match self {
            LayerGrads::Conv2d { kernels, bias } => {
                kernels.as_mut_slice().iter_mut().for_each(|v| *v *= s);
                bias.iter_mut().for_each(|v| *v *= s);
            }
            LayerGrads::Linear { weights, bias } => {
                weights.iter_mut().for_each(|v| *v *= s);
                bias.iter_mut().for_each(|v| *v *= s);
            }
            LayerGrads::None => {}
        }
    }
}

/// Backward pass through one layer.
///
/// * `input` — the activation fed to the layer in the forward pass,
/// * `output` — the activation the layer produced,
/// * `grad_out` — dL/d(output).
///
/// Returns `(dL/d(input), parameter gradients)`.
pub fn backward(
    layer: &Layer,
    input: &Tensor,
    output: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, LayerGrads) {
    let _span = cnn_trace::span_lazy("nn", || format!("backward {}", layer.kind_name()).into());
    match layer {
        Layer::Conv2d(c) => conv_backward(c, input, output, grad_out),
        Layer::Pool(p) => (pool_backward(p, input, grad_out), LayerGrads::None),
        Layer::Flatten => (
            Tensor::from_vec(input.shape(), grad_out.as_slice().to_vec()),
            LayerGrads::None,
        ),
        Layer::Linear(l) => linear_backward(l, input, output, grad_out),
        Layer::LogSoftMax => (log_softmax_backward(output, grad_out), LayerGrads::None),
    }
}

#[allow(clippy::needless_range_loop)] // mirrors the forward nest
fn conv_backward(
    c: &Conv2dLayer,
    input: &Tensor,
    output: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, LayerGrads) {
    let ishape = input.shape();
    let oshape = output.shape();
    let (kh, kw) = (c.kernels.kh(), c.kernels.kw());

    // Undo the activation first: dL/d(preact) = dL/d(out) * f'(out).
    let grad_pre: Tensor = match c.activation {
        Some(act) => {
            let mut g = grad_out.clone();
            for (gv, &ov) in g.as_mut_slice().iter_mut().zip(output.as_slice()) {
                *gv *= act.derivative_from_output(ov);
            }
            g
        }
        None => grad_out.clone(),
    };

    let mut gk = Tensor4::zeros(c.kernels.kernels(), c.kernels.channels(), kh, kw);
    let mut gb = vec![0.0f32; c.bias.len()];
    let mut gx = Tensor::zeros(ishape);

    for k in 0..oshape.c {
        let gchan = grad_pre.channel(k);
        gb[k] += gchan.iter().sum::<f32>();
        for ci in 0..ishape.c {
            let xchan = input.channel(ci);
            for oy in 0..oshape.h {
                for ox in 0..oshape.w {
                    let g = gchan[oy * oshape.w + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for m in 0..kh {
                        for n in 0..kw {
                            let xi = (oy + m) * ishape.w + (ox + n);
                            let cur = gk.get(k, ci, m, n);
                            gk.set(k, ci, m, n, cur + g * xchan[xi]);
                            let w = c.kernels.get(k, ci, m, n);
                            gx.channel_mut(ci)[xi] += g * w;
                        }
                    }
                }
            }
        }
    }
    (
        gx,
        LayerGrads::Conv2d {
            kernels: gk,
            bias: gb,
        },
    )
}

fn pool_backward(p: &PoolLayer, input: &Tensor, grad_out: &Tensor) -> Tensor {
    let ishape = input.shape();
    let oshape = grad_out.shape();
    let mut gx = Tensor::zeros(ishape);
    let inv_area = 1.0 / (p.kh * p.kw) as f32;

    for c in 0..oshape.c {
        let ichan = input.channel(c);
        for oy in 0..oshape.h {
            for ox in 0..oshape.w {
                let g = grad_out.get(c, oy, ox);
                if g == 0.0 {
                    continue;
                }
                let (y0, x0) = (oy * p.step, ox * p.step);
                match p.kind {
                    PoolKind::Max => {
                        // Route gradient to the first maximum (matching
                        // the forward's tie-breaking).
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = y0 * ishape.w + x0;
                        for m in 0..p.kh {
                            for n in 0..p.kw {
                                let idx = (y0 + m) * ishape.w + (x0 + n);
                                if ichan[idx] > best {
                                    best = ichan[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        gx.channel_mut(c)[best_idx] += g;
                    }
                    PoolKind::Mean => {
                        let share = g * inv_area;
                        for m in 0..p.kh {
                            for n in 0..p.kw {
                                gx.channel_mut(c)[(y0 + m) * ishape.w + (x0 + n)] += share;
                            }
                        }
                    }
                }
            }
        }
    }
    gx
}

fn linear_backward(
    l: &LinearLayer,
    input: &Tensor,
    output: &Tensor,
    grad_out: &Tensor,
) -> (Tensor, LayerGrads) {
    let x = input.as_slice();
    // Undo activation.
    let grad_pre: Vec<f32> = match l.activation {
        Some(act) => grad_out
            .as_slice()
            .iter()
            .zip(output.as_slice())
            .map(|(&g, &o)| g * act.derivative_from_output(o))
            .collect(),
        None => grad_out.as_slice().to_vec(),
    };

    let mut gw = vec![0.0f32; l.weights.len()];
    let mut gx = vec![0.0f32; l.inputs];
    for (j, &g) in grad_pre.iter().enumerate() {
        if g == 0.0 {
            continue;
        }
        let wrow = &l.weights[j * l.inputs..(j + 1) * l.inputs];
        let gwrow = &mut gw[j * l.inputs..(j + 1) * l.inputs];
        for i in 0..l.inputs {
            gwrow[i] += g * x[i];
            gx[i] += g * wrow[i];
        }
    }
    (
        Tensor::from_vec(Shape::new(1, 1, l.inputs), gx),
        LayerGrads::Linear {
            weights: gw,
            bias: grad_pre,
        },
    )
}

fn log_softmax_backward(output: &Tensor, grad_out: &Tensor) -> Tensor {
    // y_j = z_j - lse(z);  dL/dz_i = g_i - softmax_i * sum_j g_j
    let g = grad_out.as_slice();
    let gsum: f32 = g.iter().sum();
    let data: Vec<f32> = output
        .as_slice()
        .iter()
        .zip(g.iter())
        .map(|(&lp, &gi)| gi - lp.exp() * gsum)
        .collect();
    Tensor::from_vec(output.shape(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::{init_kernels, init_vec, seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;

    /// Numerically checks dL/d(input) and parameter grads for a single
    /// layer under the scalar loss L = sum(w_out .* forward(x)).
    #[allow(clippy::needless_range_loop)]
    fn check_layer_gradients(layer: &Layer, input: &Tensor, eps: f32, tol: f32) {
        let out = layer.forward(input);
        // Fixed random "loss weights" make L a scalar function.
        let mut rng = seeded_rng(1234);
        let lw = init_vec(&mut rng, out.len(), Init::Uniform(1.0));
        let loss =
            |o: &Tensor| -> f32 { o.as_slice().iter().zip(lw.iter()).map(|(a, b)| a * b).sum() };

        let grad_out = Tensor::from_vec(out.shape(), lw.clone());
        let (gx, gparams) = backward(layer, input, &out, &grad_out);

        // --- input gradient ---
        for idx in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let fd = (loss(&layer.forward(&plus)) - loss(&layer.forward(&minus))) / (2.0 * eps);
            let an = gx.as_slice()[idx];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs()),
                "input grad {idx}: fd {fd} vs analytic {an}"
            );
        }

        // --- parameter gradients ---
        match (layer, &gparams) {
            (Layer::Conv2d(c), LayerGrads::Conv2d { kernels, bias }) => {
                for idx in 0..c.kernels.len() {
                    let mut lp = c.clone();
                    lp.kernels.as_mut_slice()[idx] += eps;
                    let mut lm = c.clone();
                    lm.kernels.as_mut_slice()[idx] -= eps;
                    let fd = (loss(&Layer::Conv2d(lp).forward(input))
                        - loss(&Layer::Conv2d(lm).forward(input)))
                        / (2.0 * eps);
                    let an = kernels.as_slice()[idx];
                    assert!(
                        (fd - an).abs() <= tol * (1.0 + fd.abs()),
                        "kernel grad {idx}: fd {fd} vs {an}"
                    );
                }
                for idx in 0..c.bias.len() {
                    let mut lp = c.clone();
                    lp.bias[idx] += eps;
                    let mut lm = c.clone();
                    lm.bias[idx] -= eps;
                    let fd = (loss(&Layer::Conv2d(lp).forward(input))
                        - loss(&Layer::Conv2d(lm).forward(input)))
                        / (2.0 * eps);
                    assert!((fd - bias[idx]).abs() <= tol * (1.0 + fd.abs()));
                }
            }
            (Layer::Linear(l), LayerGrads::Linear { weights, bias }) => {
                for idx in 0..l.weights.len() {
                    let mut lp = l.clone();
                    lp.weights[idx] += eps;
                    let mut lm = l.clone();
                    lm.weights[idx] -= eps;
                    let fd = (loss(&Layer::Linear(lp).forward(input))
                        - loss(&Layer::Linear(lm).forward(input)))
                        / (2.0 * eps);
                    let an = weights[idx];
                    assert!(
                        (fd - an).abs() <= tol * (1.0 + fd.abs()),
                        "weight grad {idx}: fd {fd} vs {an}"
                    );
                }
                for idx in 0..l.bias.len() {
                    let mut lp = l.clone();
                    lp.bias[idx] += eps;
                    let mut lm = l.clone();
                    lm.bias[idx] -= eps;
                    let fd = (loss(&Layer::Linear(lp).forward(input))
                        - loss(&Layer::Linear(lm).forward(input)))
                        / (2.0 * eps);
                    assert!((fd - bias[idx]).abs() <= tol * (1.0 + fd.abs()));
                }
            }
            _ => {}
        }
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = seeded_rng(10);
        let layer = Layer::Conv2d(Conv2dLayer {
            kernels: init_kernels(&mut rng, 2, 2, 3, 3, Init::Uniform(0.5)),
            bias: init_vec(&mut rng, 2, Init::Uniform(0.2)),
            activation: None,
        });
        let input =
            cnn_tensor::init::init_tensor(&mut rng, Shape::new(2, 5, 5), Init::Uniform(1.0));
        check_layer_gradients(&layer, &input, 1e-2, 2e-2);
    }

    #[test]
    fn conv_gradients_with_tanh_activation() {
        let mut rng = seeded_rng(11);
        let layer = Layer::Conv2d(Conv2dLayer {
            kernels: init_kernels(&mut rng, 2, 1, 3, 3, Init::Uniform(0.5)),
            bias: init_vec(&mut rng, 2, Init::Uniform(0.2)),
            activation: Some(Activation::Tanh),
        });
        let input =
            cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 5, 5), Init::Uniform(1.0));
        check_layer_gradients(&layer, &input, 1e-2, 3e-2);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = seeded_rng(12);
        let layer = Layer::Linear(LinearLayer {
            weights: init_vec(&mut rng, 6 * 4, Init::Uniform(0.5)),
            bias: init_vec(&mut rng, 4, Init::Uniform(0.2)),
            inputs: 6,
            outputs: 4,
            activation: None,
        });
        let input =
            cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 1, 6), Init::Uniform(1.0));
        check_layer_gradients(&layer, &input, 1e-2, 1e-2);
    }

    #[test]
    fn linear_gradients_with_sigmoid() {
        let mut rng = seeded_rng(13);
        let layer = Layer::Linear(LinearLayer {
            weights: init_vec(&mut rng, 5 * 3, Init::Uniform(0.5)),
            bias: init_vec(&mut rng, 3, Init::Uniform(0.2)),
            inputs: 5,
            outputs: 3,
            activation: Some(Activation::Sigmoid),
        });
        let input =
            cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 1, 5), Init::Uniform(1.0));
        check_layer_gradients(&layer, &input, 1e-2, 3e-2);
    }

    #[test]
    fn max_pool_gradient_routes_to_maximum() {
        let p = Layer::Pool(PoolLayer {
            kind: PoolKind::Max,
            kh: 2,
            kw: 2,
            step: 2,
        });
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, 4.0, 2.0, 3.0]);
        let out = p.forward(&input);
        let grad_out = Tensor::from_vec(Shape::new(1, 1, 1), vec![1.0]);
        let (gx, _) = backward(&p, &input, &out, &grad_out);
        assert_eq!(gx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_pool_gradient_distributes_evenly() {
        let p = Layer::Pool(PoolLayer {
            kind: PoolKind::Mean,
            kh: 2,
            kw: 2,
            step: 2,
        });
        let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![1.0, 4.0, 2.0, 3.0]);
        let out = p.forward(&input);
        let grad_out = Tensor::from_vec(Shape::new(1, 1, 1), vec![2.0]);
        let (gx, _) = backward(&p, &input, &out, &grad_out);
        assert_eq!(gx.as_slice(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn flatten_gradient_reshapes_back() {
        let f = Layer::Flatten;
        let input = Tensor::ones(Shape::new(2, 2, 2));
        let out = f.forward(&input);
        let grad_out = Tensor::from_vec(Shape::new(1, 1, 8), (0..8).map(|i| i as f32).collect());
        let (gx, _) = backward(&f, &input, &out, &grad_out);
        assert_eq!(gx.shape(), Shape::new(2, 2, 2));
        assert_eq!(gx.as_slice(), grad_out.as_slice());
    }

    #[test]
    fn log_softmax_nll_gradient_is_p_minus_onehot() {
        // With L = -logp[target], grad_out = -onehot; backward should
        // yield softmax(z) - onehot.
        let z = Tensor::from_vec(Shape::new(1, 1, 3), vec![0.5, -0.3, 1.2]);
        let lsm = Layer::LogSoftMax;
        let out = lsm.forward(&z);
        let mut go = vec![0.0; 3];
        go[2] = -1.0;
        let grad_out = Tensor::from_vec(Shape::new(1, 1, 3), go);
        let (gx, _) = backward(&lsm, &z, &out, &grad_out);
        let p = cnn_tensor::ops::softmax::softmax(z.as_slice());
        let expect = [p[0], p[1], p[2] - 1.0];
        for (a, b) in gx.as_slice().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let mut rng = seeded_rng(14);
        let layer = Layer::Conv2d(Conv2dLayer {
            kernels: init_kernels(&mut rng, 1, 1, 2, 2, Init::Uniform(0.5)),
            bias: init_vec(&mut rng, 1, Init::Zeros),
            activation: None,
        });
        let input = Tensor::ones(Shape::new(1, 3, 3));
        let out = layer.forward(&input);
        let go = Tensor::ones(out.shape());
        let (_, g1) = backward(&layer, &input, &out, &go);
        let mut acc = LayerGrads::zeros_like(&layer);
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        acc.scale(0.5);
        assert_eq!(acc, g1);
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn accumulate_rejects_mismatched_kinds() {
        let mut a = LayerGrads::None;
        let b = LayerGrads::Linear {
            weights: vec![0.0],
            bias: vec![0.0],
        };
        a.accumulate(&b);
    }
}
