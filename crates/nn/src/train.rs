//! Mini-batch SGD training with negative-log-likelihood loss — the
//! Torch-replacement used to produce the trained weights the automation
//! framework ingests (paper Section IV: "the input network \[must\] be
//! already designed and trained").

use crate::grad::{backward, LayerGrads};
use crate::network::Network;
use cnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rayon::prelude::*;

/// Training hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Classical momentum coefficient (0 = plain SGD).
    pub momentum: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.05,
            batch_size: 16,
            epochs: 10,
            weight_decay: 1e-4,
            lr_decay: 0.95,
            momentum: 0.0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean NLL loss over the epoch.
    pub mean_loss: f64,
    /// Training-set classification error for the epoch (running).
    pub train_error: f64,
}

/// Negative log-likelihood of `target` under log-probabilities `logp`.
pub fn nll_loss(logp: &[f32], target: usize) -> f32 {
    assert!(
        target < logp.len(),
        "target {target} out of range {}",
        logp.len()
    );
    -logp[target]
}

/// Computes per-sample gradients for one (input, target) pair.
/// Returns (per-layer grads, loss, correct?).
pub(crate) fn sample_gradients(
    net: &Network,
    input: &Tensor,
    target: usize,
) -> (Vec<LayerGrads>, f32, bool) {
    let acts = net.forward_trace(input);
    let logp = acts.last().expect("non-empty trace");
    let loss = nll_loss(logp.as_slice(), target);
    let correct = logp.argmax() == target;

    // dL/d(logp) = -onehot(target)
    let mut go = vec![0.0f32; logp.len()];
    go[target] = -1.0;
    let mut grad = Tensor::from_vec(logp.shape(), go);

    let mut grads: Vec<LayerGrads> = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate().rev() {
        let (gx, gp) = backward(layer, &acts[i], &acts[i + 1], &grad);
        grads.push(gp);
        grad = gx;
    }
    grads.reverse();
    (grads, loss, correct)
}

/// Folds the batch gradient into the velocity buffers:
/// `v <- momentum * v + g`.
pub(crate) fn update_velocity(velocity: &mut [LayerGrads], grads: &[LayerGrads], momentum: f32) {
    for (v, g) in velocity.iter_mut().zip(grads) {
        v.scale(momentum);
        v.accumulate(g);
    }
}

/// Applies averaged gradients to the network with learning rate `lr`
/// and L2 decay `wd`.
pub(crate) fn apply_gradients(net: &mut Network, grads: &[LayerGrads], lr: f32, wd: f32) {
    // Safety: we rebuild the network from its own parts, so shapes are
    // unchanged and re-validation cannot fail.
    let input_shape = net.input_shape();
    let mut layers = net.layers().to_vec();
    for (layer, grad) in layers.iter_mut().zip(grads) {
        match (layer, grad) {
            (crate::Layer::Conv2d(c), LayerGrads::Conv2d { kernels, bias }) => {
                for (w, g) in c.kernels.as_mut_slice().iter_mut().zip(kernels.as_slice()) {
                    *w -= lr * (g + wd * *w);
                }
                for (b, g) in c.bias.iter_mut().zip(bias) {
                    *b -= lr * g;
                }
            }
            (crate::Layer::Linear(l), LayerGrads::Linear { weights, bias }) => {
                for (w, g) in l.weights.iter_mut().zip(weights) {
                    *w -= lr * (g + wd * *w);
                }
                for (b, g) in l.bias.iter_mut().zip(bias) {
                    *b -= lr * g;
                }
            }
            (_, LayerGrads::None) => {}
            _ => unreachable!("gradient kind mismatch"),
        }
    }
    *net = Network::new(input_shape, layers).expect("shapes unchanged");
}

/// Trains `net` in place on `(inputs, labels)` and returns per-epoch
/// statistics. Sample order is shuffled each epoch from `rng`, so runs
/// are reproducible for a fixed seed.
pub fn train(
    net: &mut Network,
    inputs: &[Tensor],
    labels: &[usize],
    cfg: &TrainConfig,
    rng: &mut StdRng,
) -> Vec<EpochStats> {
    assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
    assert!(!inputs.is_empty(), "empty training set");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    assert!(
        (0.0..1.0).contains(&cfg.momentum),
        "momentum must be in [0, 1)"
    );
    let n = inputs.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut stats = Vec::with_capacity(cfg.epochs);
    let mut lr = cfg.learning_rate;
    let mut velocity: Vec<LayerGrads> = net.layers().iter().map(LayerGrads::zeros_like).collect();

    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut total_loss = 0.0f64;
        let mut wrong = 0usize;

        for chunk in order.chunks(cfg.batch_size) {
            // Per-sample gradients in parallel; network is read-only here.
            let results: Vec<(Vec<LayerGrads>, f32, bool)> = chunk
                .par_iter()
                .map(|&i| sample_gradients(net, &inputs[i], labels[i]))
                .collect();

            let mut batch: Vec<LayerGrads> =
                net.layers().iter().map(LayerGrads::zeros_like).collect();
            for (grads, loss, correct) in &results {
                for (acc, g) in batch.iter_mut().zip(grads) {
                    acc.accumulate(g);
                }
                total_loss += *loss as f64;
                if !correct {
                    wrong += 1;
                }
            }
            let inv = 1.0 / chunk.len() as f32;
            batch.iter_mut().for_each(|g| g.scale(inv));
            if cfg.momentum > 0.0 {
                update_velocity(&mut velocity, &batch, cfg.momentum);
                apply_gradients(net, &velocity, lr, cfg.weight_decay);
            } else {
                apply_gradients(net, &batch, lr, cfg.weight_decay);
            }
        }

        stats.push(EpochStats {
            epoch,
            mean_loss: total_loss / n as f64,
            train_error: wrong as f64 / n as f64,
        });
        lr *= cfg.lr_decay;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::{seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn toy_problem(seed: u64, n: usize) -> (Vec<Tensor>, Vec<usize>) {
        // Class 0: bright top half; class 1: bright bottom half.
        let mut rng = seeded_rng(seed);
        let mut inputs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let noise =
                cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 8, 8), Init::Uniform(0.2));
            let mut img = Tensor::from_fn(Shape::new(1, 8, 8), |_, y, _| {
                if (class == 0) == (y < 4) {
                    1.0
                } else {
                    0.0
                }
            });
            img.add_assign(&noise);
            inputs.push(img);
            labels.push(class);
        }
        (inputs, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut rng = seeded_rng(seed);
        Network::builder(Shape::new(1, 8, 8))
            .conv(4, 3, 3, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(2, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn nll_loss_basic() {
        let logp = [-0.1f32, -3.0];
        assert!((nll_loss(&logp, 0) - 0.1).abs() < 1e-6);
        assert!((nll_loss(&logp, 1) - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nll_loss_checks_target() {
        nll_loss(&[-0.5], 1);
    }

    #[test]
    fn training_reduces_loss_and_error() {
        let (inputs, labels) = toy_problem(100, 64);
        let mut net = toy_net(7);
        let cfg = TrainConfig {
            epochs: 8,
            learning_rate: 0.1,
            ..Default::default()
        };
        let mut rng = seeded_rng(55);
        let stats = train(&mut net, &inputs, &labels, &cfg, &mut rng);
        assert_eq!(stats.len(), 8);
        assert!(
            stats.last().unwrap().mean_loss < stats[0].mean_loss,
            "loss did not decrease: {} -> {}",
            stats[0].mean_loss,
            stats.last().unwrap().mean_loss
        );
        let final_err = net.prediction_error(&inputs, &labels);
        assert!(
            final_err < 0.2,
            "final training error too high: {final_err}"
        );
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (inputs, labels) = toy_problem(100, 32);
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let run = || {
            let mut net = toy_net(7);
            let mut rng = seeded_rng(55);
            train(&mut net, &inputs, &labels, &cfg, &mut rng);
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn generalizes_to_held_out_samples() {
        let (tr_in, tr_lb) = toy_problem(100, 96);
        let (te_in, te_lb) = toy_problem(200, 32);
        let mut net = toy_net(3);
        let cfg = TrainConfig {
            epochs: 10,
            learning_rate: 0.1,
            ..Default::default()
        };
        let mut rng = seeded_rng(9);
        train(&mut net, &tr_in, &tr_lb, &cfg, &mut rng);
        let err = net.prediction_error(&te_in, &te_lb);
        assert!(err < 0.25, "held-out error too high: {err}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn train_checks_lengths() {
        let (inputs, _) = toy_problem(1, 4);
        let mut net = toy_net(1);
        let mut rng = seeded_rng(1);
        train(&mut net, &inputs, &[0], &TrainConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "batch_size")]
    fn train_rejects_zero_batch() {
        let (inputs, labels) = toy_problem(1, 4);
        let mut net = toy_net(1);
        let mut rng = seeded_rng(1);
        let cfg = TrainConfig {
            batch_size: 0,
            ..Default::default()
        };
        train(&mut net, &inputs, &labels, &cfg, &mut rng);
    }

    #[test]
    fn momentum_accelerates_early_convergence() {
        let (inputs, labels) = toy_problem(300, 64);
        let run = |momentum: f32| {
            let mut net = toy_net(7);
            let cfg = TrainConfig {
                epochs: 3,
                learning_rate: 0.05,
                momentum,
                ..Default::default()
            };
            let mut rng = seeded_rng(55);
            let stats = train(&mut net, &inputs, &labels, &cfg, &mut rng);
            stats.last().unwrap().mean_loss
        };
        let plain = run(0.0);
        let with_momentum = run(0.9);
        assert!(
            with_momentum < plain,
            "momentum should speed up early training: {with_momentum} vs {plain}"
        );
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_out_of_range_rejected() {
        let (inputs, labels) = toy_problem(1, 4);
        let mut net = toy_net(1);
        let mut rng = seeded_rng(1);
        let cfg = TrainConfig {
            momentum: 1.5,
            ..Default::default()
        };
        train(&mut net, &inputs, &labels, &cfg, &mut rng);
    }

    #[test]
    fn zero_momentum_matches_plain_sgd() {
        // momentum = 0 must be bit-identical to the plain path.
        let (inputs, labels) = toy_problem(123, 32);
        let run = |cfg: TrainConfig| {
            let mut net = toy_net(9);
            let mut rng = seeded_rng(4);
            train(&mut net, &inputs, &labels, &cfg, &mut rng);
            net
        };
        let a = run(TrainConfig {
            momentum: 0.0,
            epochs: 2,
            ..Default::default()
        });
        let b = run(TrainConfig {
            momentum: 0.0,
            epochs: 2,
            ..Default::default()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // With zero-information inputs, decay should pull weights toward 0.
        let inputs = vec![Tensor::zeros(Shape::new(1, 8, 8)); 16];
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let mut net = toy_net(2);
        let norm_before: f32 = net
            .layers()
            .iter()
            .filter_map(|l| match l {
                crate::Layer::Conv2d(c) => {
                    Some(c.kernels.as_slice().iter().map(|v| v * v).sum::<f32>())
                }
                _ => None,
            })
            .sum();
        let cfg = TrainConfig {
            epochs: 20,
            learning_rate: 0.1,
            weight_decay: 0.5,
            ..Default::default()
        };
        let mut rng = seeded_rng(4);
        train(&mut net, &inputs, &labels, &cfg, &mut rng);
        let norm_after: f32 = net
            .layers()
            .iter()
            .filter_map(|l| match l {
                crate::Layer::Conv2d(c) => {
                    Some(c.kernels.as_slice().iter().map(|v| v * v).sum::<f32>())
                }
                _ => None,
            })
            .sum();
        // Conv weights get no signal from zero inputs, so decay dominates.
        assert!(norm_after < norm_before, "{norm_after} !< {norm_before}");
    }
}
