//! True int8 inference: post-training calibration, the quantized
//! network artifact, and the integer forward pass over the
//! `cnn-tensor` int8 engine.
//!
//! ## Scale derivation
//!
//! All grids are symmetric with zero-point 0 (see
//! `cnn_tensor::ops::quantize`). Calibration runs the f32 network over
//! a calibration set and records, per layer, the largest absolute
//! **pre-activation** and **post-activation** value; a tensor with
//! measured maximum `m` gets scale `m / 127`. Weights use
//! **per-output-channel** scales for convolutions (each kernel's own
//! max) and one per-layer scale for linear layers. Biases are stored
//! as i32 at the accumulator's scale `s_in · s_w[k]`, and each output
//! row carries a precomputed requantize multiplier
//! `m[k] = s_in · s_w[k] / s_target`.
//!
//! Because every per-layer statistic is a running `max` — commutative
//! and associative — calibration is **order-invariant**: a shuffled
//! calibration set yields bit-identical scales
//! (`tests/quant_properties.rs` asserts this).
//!
//! ## Activations
//!
//! Nonlinear layers requantize the accumulator to the calibrated
//! pre-activation grid and then map codes through a 255-entry i8→i8
//! lookup table (`lut[c+127] = quantize(f(c · s_pre), s_out)`) — the
//! same table-driven form the HLS datapath uses for transcendentals.
//! Layers without an activation requantize straight to the output
//! grid. Max pooling operates directly on codes (the grid is
//! monotone); mean pooling sums in i32. The final `LogSoftMax`
//! dequantizes its input and runs in f32, so the quantized network
//! returns ordinary log-probabilities.
//!
//! ## Determinism
//!
//! The integer path is exact: GEMM accumulation, pooling, LUTs and the
//! f64 requantize rounding admit no order dependence, so scalar and
//! SIMD kernels, reruns, and batched vs single-image inference are all
//! bit-identical (gated by `quant_bench`).

use crate::layer::{Layer, PoolLayer};
use crate::network::Network;
use cnn_store::hash::{hex64, parse_hex64, Fnv64};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::{pool_i8_slice_into, PoolKind};
use cnn_tensor::ops::qgemm::{
    im2col_i8_paired_into, qgemm_bias_into, requantize_rows, PackedKernelsI8,
};
use cnn_tensor::ops::quantize::{quantize_i8, quantize_slice_i8, scale_for_max_abs, QMAX_I8};
use cnn_tensor::ops::softmax::log_softmax_inplace;
use cnn_tensor::{Shape, Tensor, Workspace};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Per-layer activation range measured by [`calibrate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerCalibration {
    /// Largest |value| entering the layer's activation function (for
    /// conv/linear: the affine output). Equals `post_max` for layers
    /// without an activation of their own.
    pub pre_max: f32,
    /// Largest |value| leaving the layer.
    pub post_max: f32,
}

/// Activation ranges for a network over a calibration set.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationStats {
    /// Largest |value| over the calibration inputs themselves.
    pub input_max: f32,
    /// One entry per network layer.
    pub layers: Vec<LayerCalibration>,
}

/// Runs the f32 network over `samples` and records per-layer max-abs
/// ranges. Every statistic is a running max, so the result does not
/// depend on sample order.
pub fn calibrate(net: &Network, samples: &[Tensor]) -> CalibrationStats {
    let _span = cnn_trace::span("nn", "calibrate");
    assert!(!samples.is_empty(), "calibration set is empty");
    // Activation-stripped twins of the affine layers, built once, so
    // the pre-activation range is observable.
    let stripped: Vec<Layer> = net
        .layers()
        .iter()
        .map(|l| match l {
            Layer::Conv2d(c) => {
                let mut c = c.clone();
                c.activation = None;
                Layer::Conv2d(c)
            }
            Layer::Linear(l) => {
                let mut l = l.clone();
                l.activation = None;
                Layer::Linear(l)
            }
            other => other.clone(),
        })
        .collect();

    let mut input_max = 0.0f32;
    let mut layers = vec![
        LayerCalibration {
            pre_max: 0.0,
            post_max: 0.0,
        };
        net.layers().len()
    ];
    for sample in samples {
        input_max = input_max.max(max_abs(sample.as_slice()));
        let mut x = sample.clone();
        for (i, (layer, plain)) in stripped.iter().zip(net.layers()).enumerate() {
            let mut pre = layer.forward(&x);
            layers[i].pre_max = layers[i].pre_max.max(max_abs(pre.as_slice()));
            let act = match plain {
                Layer::Conv2d(c) => c.activation,
                Layer::Linear(l) => l.activation,
                _ => None,
            };
            if let Some(act) = act {
                act.apply_slice(pre.as_mut_slice());
            }
            layers[i].post_max = layers[i].post_max.max(max_abs(pre.as_slice()));
            x = pre;
        }
    }
    CalibrationStats { input_max, layers }
}

fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// A convolution quantized to the int8 engine.
#[derive(Clone, Debug, PartialEq)]
pub struct QConv2dLayer {
    /// Row-major `k × (c·kh·kw)` i8 weight codes.
    pub weights: Vec<i8>,
    /// Output channels.
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Bias at the accumulator scale `s_in · s_w[k]`, one per kernel.
    pub bias: Vec<i32>,
    /// Per-output-channel weight scales.
    pub weight_scales: Vec<f32>,
    /// Input activation scale.
    pub in_scale: f32,
    /// Pre-activation scale (equals `out_scale` without activation).
    pub pre_scale: f32,
    /// Output activation scale.
    pub out_scale: f32,
    /// Requantize multiplier per output channel.
    pub mults: Vec<f32>,
    /// The nonlinearity, applied as an i8→i8 LUT.
    pub activation: Option<Activation>,
}

/// A linear layer quantized to the int8 engine (per-layer weight scale).
#[derive(Clone, Debug, PartialEq)]
pub struct QLinearLayer {
    /// Row-major `outputs × inputs` i8 weight codes.
    pub weights: Vec<i8>,
    /// Input features.
    pub inputs: usize,
    /// Output neurons.
    pub outputs: usize,
    /// Bias at the accumulator scale `s_in · s_w`.
    pub bias: Vec<i32>,
    /// Per-layer weight scale.
    pub weight_scale: f32,
    /// Input activation scale.
    pub in_scale: f32,
    /// Pre-activation scale.
    pub pre_scale: f32,
    /// Output activation scale.
    pub out_scale: f32,
    /// Requantize multiplier (same for every row).
    pub mult: f32,
    /// The nonlinearity, applied as an i8→i8 LUT.
    pub activation: Option<Activation>,
}

/// One layer of a [`QuantNetwork`].
#[derive(Clone, Debug, PartialEq)]
pub enum QLayer {
    /// Quantized convolution.
    Conv2d(QConv2dLayer),
    /// Pooling on codes (scale pass-through).
    Pool(PoolLayer),
    /// Shape relabel.
    Flatten,
    /// Quantized perceptron.
    Linear(QLinearLayer),
    /// Dequantize + f32 LogSoftMax; the network's f32 exit.
    LogSoftMax {
        /// Scale of the incoming codes.
        in_scale: f32,
    },
}

impl QLayer {
    /// Layer name for summaries and the text format.
    pub fn kind_name(&self) -> &'static str {
        match self {
            QLayer::Conv2d(_) => "qconv2d",
            QLayer::Pool(_) => "pool",
            QLayer::Flatten => "flatten",
            QLayer::Linear(_) => "qlinear",
            QLayer::LogSoftMax { .. } => "log_softmax",
        }
    }
}

/// Errors constructing or parsing a quantized network.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A layer's shape does not compose with its input (layer index,
    /// message).
    ShapeMismatch(usize, String),
    /// The text artifact is malformed (line number, message).
    Parse(usize, String),
    /// The trailing checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the artifact.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::ShapeMismatch(i, msg) => write!(f, "layer {i}: {msg}"),
            QuantError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            QuantError::ChecksumMismatch { stored, computed } => write!(
                f,
                "quant artifact checksum mismatch: stored {}, computed {} (file corrupted?)",
                hex64(*stored),
                hex64(*computed)
            ),
        }
    }
}

impl std::error::Error for QuantError {}

/// Magic first line of the checksummed quantized-network text format.
pub const QUANT_MAGIC: &str = "cnn2fpga-quant v1";

/// A post-training-quantized network: i8 weights and activations, i32
/// accumulators, f32 log-probability outputs. Built by
/// [`QuantNetwork::quantize`] from a trained f32 [`Network`] plus a
/// calibration set; serialized with a trailing FNV-1a/64 checksum via
/// [`QuantNetwork::to_text`].
#[derive(Debug)]
pub struct QuantNetwork {
    input_shape: Shape,
    input_scale: f32,
    layers: Vec<QLayer>,
    shapes: Vec<Shape>,
    /// Packed weight panels, built on first use — excluded from
    /// equality and serialization exactly like `Network::packed`.
    packed: OnceLock<Vec<Option<PackedKernelsI8>>>,
}

impl Clone for QuantNetwork {
    fn clone(&self) -> Self {
        QuantNetwork {
            input_shape: self.input_shape,
            input_scale: self.input_scale,
            layers: self.layers.clone(),
            shapes: self.shapes.clone(),
            packed: OnceLock::new(),
        }
    }
}

impl PartialEq for QuantNetwork {
    fn eq(&self, other: &Self) -> bool {
        self.input_shape == other.input_shape
            && self.input_scale == other.input_scale
            && self.layers == other.layers
    }
}

impl QuantNetwork {
    /// Calibrates over `samples` and quantizes `net`.
    pub fn quantize(net: &Network, samples: &[Tensor]) -> QuantNetwork {
        let stats = calibrate(net, samples);
        QuantNetwork::quantize_with(net, &stats)
    }

    /// Quantizes `net` with precomputed calibration statistics.
    pub fn quantize_with(net: &Network, stats: &CalibrationStats) -> QuantNetwork {
        assert_eq!(
            stats.layers.len(),
            net.layers().len(),
            "calibration does not match the network"
        );
        let input_scale = scale_for_max_abs(stats.input_max);
        let mut cur_scale = input_scale;
        let mut layers = Vec::with_capacity(net.layers().len());
        for (layer, cal) in net.layers().iter().zip(&stats.layers) {
            match layer {
                Layer::Conv2d(cv) => {
                    let k = cv.kernels.kernels();
                    let kdim = cv.kernels.channels() * cv.kernels.kh() * cv.kernels.kw();
                    let src = cv.kernels.as_slice();
                    let pre_scale = scale_for_max_abs(cal.pre_max);
                    let out_scale = scale_for_max_abs(cal.post_max);
                    let target = if cv.activation.is_some() {
                        pre_scale
                    } else {
                        out_scale
                    };
                    let mut weights = vec![0i8; k * kdim];
                    let mut weight_scales = Vec::with_capacity(k);
                    let mut bias = Vec::with_capacity(k);
                    let mut mults = Vec::with_capacity(k);
                    for ki in 0..k {
                        let row = &src[ki * kdim..(ki + 1) * kdim];
                        let ws = scale_for_max_abs(max_abs(row));
                        quantize_slice_i8(row, ws, &mut weights[ki * kdim..(ki + 1) * kdim]);
                        bias.push(quantize_bias(cv.bias[ki], cur_scale * ws));
                        mults.push(cur_scale * ws / target);
                        weight_scales.push(ws);
                    }
                    layers.push(QLayer::Conv2d(QConv2dLayer {
                        weights,
                        k,
                        c: cv.kernels.channels(),
                        kh: cv.kernels.kh(),
                        kw: cv.kernels.kw(),
                        bias,
                        weight_scales,
                        in_scale: cur_scale,
                        pre_scale,
                        out_scale,
                        mults,
                        activation: cv.activation,
                    }));
                    cur_scale = out_scale;
                }
                Layer::Linear(l) => {
                    let pre_scale = scale_for_max_abs(cal.pre_max);
                    let out_scale = scale_for_max_abs(cal.post_max);
                    let target = if l.activation.is_some() {
                        pre_scale
                    } else {
                        out_scale
                    };
                    let ws = scale_for_max_abs(max_abs(&l.weights));
                    let mut weights = vec![0i8; l.weights.len()];
                    quantize_slice_i8(&l.weights, ws, &mut weights);
                    let bias = l
                        .bias
                        .iter()
                        .map(|&b| quantize_bias(b, cur_scale * ws))
                        .collect();
                    layers.push(QLayer::Linear(QLinearLayer {
                        weights,
                        inputs: l.inputs,
                        outputs: l.outputs,
                        bias,
                        weight_scale: ws,
                        in_scale: cur_scale,
                        pre_scale,
                        out_scale,
                        mult: cur_scale * ws / target,
                        activation: l.activation,
                    }));
                    cur_scale = out_scale;
                }
                Layer::Pool(p) => layers.push(QLayer::Pool(p.clone())),
                Layer::Flatten => layers.push(QLayer::Flatten),
                Layer::LogSoftMax => layers.push(QLayer::LogSoftMax {
                    in_scale: cur_scale,
                }),
            }
        }
        QuantNetwork::new(net.input_shape(), input_scale, layers)
            .expect("quantization preserves shapes")
    }

    /// Assembles a quantized network, validating shape composition.
    pub fn new(
        input_shape: Shape,
        input_scale: f32,
        layers: Vec<QLayer>,
    ) -> Result<QuantNetwork, QuantError> {
        let shapes = compute_shapes(input_shape, &layers)?;
        Ok(QuantNetwork {
            input_shape,
            input_scale,
            layers,
            shapes,
            packed: OnceLock::new(),
        })
    }

    /// Input shape the network accepts.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// Scale of the quantized input grid.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Output shape (the f32 log-probability vector).
    pub fn output_shape(&self) -> Shape {
        self.shapes.last().copied().unwrap_or(self.input_shape)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.output_shape().len()
    }

    /// The per-layer packed int8 weight panels, built on first use.
    /// Hits and misses are counted on the
    /// `cnn_quant_pack_{hits,misses}_total` trace counters.
    pub fn packed_kernels(&self) -> &[Option<PackedKernelsI8>] {
        if let Some(p) = self.packed.get() {
            cnn_trace::counter_add("cnn_quant_pack_hits_total", &[], 1);
            return p;
        }
        cnn_trace::counter_add("cnn_quant_pack_misses_total", &[], 1);
        self.packed.get_or_init(|| {
            self.layers
                .iter()
                .map(|l| match l {
                    QLayer::Conv2d(c) => {
                        Some(PackedKernelsI8::pack(&c.weights, c.k, c.c * c.kh * c.kw))
                    }
                    QLayer::Linear(l) => {
                        Some(PackedKernelsI8::pack(&l.weights, l.outputs, l.inputs))
                    }
                    _ => None,
                })
                .collect()
        })
    }

    /// Grows `ws` to this network's quantized high-water sizes for a
    /// batch of `bsz` images; `stride` is the per-image slot size.
    fn reserve_workspace(&self, ws: &mut Workspace, bsz: usize) -> usize {
        let mut stride = self.input_shape.len();
        let mut max_cols = 0usize;
        let mut max_acc = 0usize;
        for (layer, &oshape) in self.layers.iter().zip(&self.shapes) {
            stride = stride.max(oshape.len());
            match layer {
                QLayer::Conv2d(c) => {
                    let kpairs = (c.c * c.kh * c.kw).div_ceil(2);
                    let spatial = oshape.h * oshape.w;
                    max_cols = max_cols.max(kpairs * spatial * bsz * 2);
                    max_acc = max_acc.max(c.k * spatial * bsz);
                }
                QLayer::Linear(l) => {
                    max_cols = max_cols.max(l.inputs.div_ceil(2) * 2);
                    max_acc = max_acc.max(l.outputs);
                }
                _ => {}
            }
        }
        ws.ensure_qact(stride * bsz);
        ws.ensure_qcols(max_cols);
        ws.ensure_qacc(max_acc);
        // The f32 exit buffer (dequantized log-softmax input).
        ws.ensure_act(stride * bsz);
        stride
    }

    /// Integer forward pass for one image: quantize, run every layer
    /// on i8 codes / i32 accumulators, dequantize at the `LogSoftMax`
    /// exit. Zero heap allocations once `ws` has grown to this
    /// network's high-water sizes. Returns f32 log-probabilities.
    pub fn infer_quant(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let outs = self.infer_batch_quant(std::slice::from_ref(input), ws);
        outs.into_iter().next().expect("one output per input")
    }

    /// Batched integer forward pass over one shared workspace: every
    /// convolution lowers all images into a single pair-interleaved
    /// column matrix and runs one int8 GEMM (the quantized twin of
    /// `Network::infer_batch`). Bit-identical to [`Self::infer_quant`]
    /// per image — integer arithmetic leaves no order freedom.
    pub fn infer_batch_quant(&self, inputs: &[Tensor], ws: &mut Workspace) -> Vec<Tensor> {
        let _span = cnn_trace::span("nn", "infer_batch_quant");
        if inputs.is_empty() {
            return Vec::new();
        }
        for t in inputs {
            assert_eq!(
                t.shape(),
                self.input_shape,
                "input shape {} != network input {}",
                t.shape(),
                self.input_shape
            );
        }
        let bsz = inputs.len();
        cnn_trace::counter_add("cnn_quant_infer_total", &[], bsz as u64);
        let packed = self.packed_kernels();
        let stride = self.reserve_workspace(ws, bsz);

        for (i, t) in inputs.iter().enumerate() {
            quantize_slice_i8(
                t.as_slice(),
                self.input_scale,
                &mut ws.qping[i * stride..i * stride + t.len()],
            );
        }
        let mut cur = self.input_shape;
        let mut saturated = 0u64;
        // Codes live in the slotted qping/qpong pair; the f32 exit
        // writes into `ping` slots.
        for (li, layer) in self.layers.iter().enumerate() {
            let _span =
                cnn_trace::span_lazy("nn", || format!("L{li} {} q", layer.kind_name()).into());
            let oshape = self.shapes[li];
            match layer {
                QLayer::Conv2d(c) => {
                    let pk = packed[li].as_ref().expect("conv layer is packed");
                    let spatial = oshape.h * oshape.w;
                    let bn = bsz * spatial;
                    let kpairs = pk.kpairs();
                    let cols = &mut ws.qcols[..kpairs * bn * 2];
                    for i in 0..bsz {
                        im2col_i8_paired_into(
                            &ws.qping[i * stride..i * stride + cur.len()],
                            cur,
                            c.kh,
                            c.kw,
                            cols,
                            bn,
                            i * spatial,
                        );
                    }
                    let acc = &mut ws.qacc[..c.k * bn];
                    qgemm_bias_into(pk, cols, &c.bias, bn, acc);
                    let wide = &mut ws.qpong[..c.k * bn];
                    saturated += requantize_rows(acc, bn, &c.mults, wide);
                    if let Some(act) = c.activation {
                        apply_lut(&build_lut(act, c.pre_scale, c.out_scale), wide);
                    }
                    // De-interleave the wide `k × (batch·spatial)` code
                    // matrix back into per-image slots.
                    for i in 0..bsz {
                        for k in 0..c.k {
                            let dst = i * stride + k * spatial;
                            let src = k * bn + i * spatial;
                            ws.qping[dst..dst + spatial]
                                .copy_from_slice(&ws.qpong[src..src + spatial]);
                        }
                    }
                }
                QLayer::Pool(p) => {
                    for i in 0..bsz {
                        pool_i8_slice_into(
                            &ws.qping[i * stride..i * stride + cur.len()],
                            cur,
                            p.kh,
                            p.kw,
                            p.step,
                            p.kind,
                            &mut ws.qpong[i * stride..i * stride + oshape.len()],
                        );
                    }
                    std::mem::swap(&mut ws.qping, &mut ws.qpong);
                }
                QLayer::Flatten => {}
                QLayer::Linear(l) => {
                    let pk = packed[li].as_ref().expect("linear layer is packed");
                    let kpairs = pk.kpairs();
                    let lut = l.activation.map(|a| build_lut(a, l.pre_scale, l.out_scale));
                    let mults = vec![l.mult; l.outputs];
                    for i in 0..bsz {
                        let x = &ws.qping[i * stride..i * stride + cur.len()];
                        let cols = &mut ws.qcols[..kpairs * 2];
                        pair_vector_into(x, cols);
                        let acc = &mut ws.qacc[..l.outputs];
                        qgemm_bias_into(pk, cols, &l.bias, 1, acc);
                        let out = &mut ws.qpong[i * stride..i * stride + l.outputs];
                        saturated += requantize_rows(acc, 1, &mults, out);
                        if let Some(lut) = &lut {
                            apply_lut(lut, out);
                        }
                    }
                    std::mem::swap(&mut ws.qping, &mut ws.qpong);
                }
                QLayer::LogSoftMax { in_scale } => {
                    for i in 0..bsz {
                        let codes = &ws.qping[i * stride..i * stride + cur.len()];
                        let vals = &mut ws.ping[i * stride..i * stride + cur.len()];
                        for (v, &c) in vals.iter_mut().zip(codes) {
                            *v = c as f32 * in_scale;
                        }
                        log_softmax_inplace(vals);
                    }
                }
            }
            cur = oshape;
        }
        if saturated > 0 {
            cnn_trace::counter_add("cnn_quant_requant_saturations_total", &[], saturated);
        }

        (0..bsz)
            .map(|i| Tensor::from_vec(cur, ws.ping[i * stride..i * stride + cur.len()].to_vec()))
            .collect()
    }

    /// Classifies one image (argmax of the quantized log-probabilities).
    pub fn predict(&self, input: &Tensor) -> usize {
        cnn_tensor::with_pooled(|ws| self.infer_quant(input, ws).argmax())
    }

    /// Batched classification over a pooled workspace.
    pub fn predict_batch(&self, inputs: &[Tensor]) -> Vec<usize> {
        cnn_tensor::with_pooled(|ws| {
            self.infer_batch_quant(inputs, ws)
                .iter()
                .map(Tensor::argmax)
                .collect()
        })
    }

    /// Fraction of `inputs` classified differently from `labels`.
    pub fn prediction_error(&self, inputs: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(inputs.len(), labels.len());
        let wrong = self
            .predict_batch(inputs)
            .iter()
            .zip(labels)
            .filter(|(p, l)| p != l)
            .count();
        wrong as f64 / inputs.len() as f64
    }

    /// Serializes to the checksummed text format ([`QUANT_MAGIC`]).
    /// Scales are stored as f32 bit patterns, so parsing is bit-exact.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{QUANT_MAGIC}");
        let _ = writeln!(
            out,
            "input {} {} {} scale {}",
            self.input_shape.c,
            self.input_shape.h,
            self.input_shape.w,
            hex32(self.input_scale)
        );
        let _ = writeln!(out, "layers {}", self.layers.len());
        for layer in &self.layers {
            match layer {
                QLayer::Conv2d(c) => {
                    let _ = writeln!(
                        out,
                        "qconv2d {} {} {} {} act {} scales {} {} {}",
                        c.k,
                        c.c,
                        c.kh,
                        c.kw,
                        act_name(c.activation),
                        hex32(c.in_scale),
                        hex32(c.pre_scale),
                        hex32(c.out_scale)
                    );
                    let _ = writeln!(out, "wscales {}", join_hex32(&c.weight_scales));
                    let _ = writeln!(out, "mults {}", join_hex32(&c.mults));
                    let _ = writeln!(out, "bias {}", join_ints(&c.bias));
                    let kdim = c.c * c.kh * c.kw;
                    for ki in 0..c.k {
                        let _ = writeln!(
                            out,
                            "w {}",
                            join_ints(&c.weights[ki * kdim..(ki + 1) * kdim])
                        );
                    }
                }
                QLayer::Pool(p) => {
                    let kind = match p.kind {
                        PoolKind::Max => "max",
                        PoolKind::Mean => "mean",
                    };
                    let _ = writeln!(out, "pool {kind} {} {} {}", p.kh, p.kw, p.step);
                }
                QLayer::Flatten => {
                    let _ = writeln!(out, "flatten");
                }
                QLayer::Linear(l) => {
                    let _ = writeln!(
                        out,
                        "qlinear {} {} act {} scales {} {} {} wscale {} mult {}",
                        l.outputs,
                        l.inputs,
                        act_name(l.activation),
                        hex32(l.in_scale),
                        hex32(l.pre_scale),
                        hex32(l.out_scale),
                        hex32(l.weight_scale),
                        hex32(l.mult)
                    );
                    let _ = writeln!(out, "bias {}", join_ints(&l.bias));
                    for r in 0..l.outputs {
                        let _ = writeln!(
                            out,
                            "w {}",
                            join_ints(&l.weights[r * l.inputs..(r + 1) * l.inputs])
                        );
                    }
                }
                QLayer::LogSoftMax { in_scale } => {
                    let _ = writeln!(out, "log_softmax scale {}", hex32(*in_scale));
                }
            }
        }
        let sum = Fnv64::new().update(out.as_bytes()).finish();
        let _ = writeln!(out, "checksum {}", hex64(sum));
        out
    }

    /// Parses the text format, verifying the trailing checksum over
    /// every byte that precedes its line before touching any payload.
    pub fn from_text(text: &str) -> Result<QuantNetwork, QuantError> {
        let perr = |line: usize, msg: String| QuantError::Parse(line, msg);
        // Verify the checksum first.
        let check_pos = text
            .rfind("checksum ")
            .ok_or_else(|| perr(0, "missing checksum line".into()))?;
        let stored = text[check_pos..]
            .trim_end()
            .strip_prefix("checksum ")
            .and_then(parse_hex64)
            .ok_or_else(|| perr(0, "bad checksum line".into()))?;
        let computed = Fnv64::new().update(&text.as_bytes()[..check_pos]).finish();
        if stored != computed {
            return Err(QuantError::ChecksumMismatch { stored, computed });
        }

        let mut lines = text[..check_pos].lines().enumerate();
        let mut next = |what: &'static str| {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or(QuantError::Parse(0, format!("missing {what}")))
        };
        let (ln, magic) = next("magic line")?;
        if magic != QUANT_MAGIC {
            return Err(perr(ln, format!("bad magic '{magic}'")));
        }
        let (ln, input) = next("input line")?;
        let toks: Vec<&str> = input.split_whitespace().collect();
        if toks.len() != 6 || toks[0] != "input" || toks[4] != "scale" {
            return Err(perr(ln, format!("bad input line '{input}'")));
        }
        let dim = |t: &str| t.parse::<usize>().map_err(|e| perr(ln, e.to_string()));
        let input_shape = Shape::new(dim(toks[1])?, dim(toks[2])?, dim(toks[3])?);
        let input_scale =
            parse_hex32_f32(toks[5]).ok_or_else(|| perr(ln, "bad input scale".into()))?;
        let (ln, nline) = next("layers line")?;
        let n: usize = nline
            .strip_prefix("layers ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(ln, format!("bad layers line '{nline}'")))?;

        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            let (ln, head) = next("layer header")?;
            let toks: Vec<&str> = head.split_whitespace().collect();
            match toks.first().copied() {
                Some("qconv2d") => {
                    if toks.len() != 11 || toks[5] != "act" || toks[7] != "scales" {
                        return Err(perr(ln, format!("bad qconv2d header '{head}'")));
                    }
                    let num = |t: &str| t.parse::<usize>().map_err(|e| perr(ln, e.to_string()));
                    let (k, c, kh, kw) =
                        (num(toks[1])?, num(toks[2])?, num(toks[3])?, num(toks[4])?);
                    let activation = parse_act(toks[6]).map_err(|m| perr(ln, m))?;
                    let scale = |t: &str| {
                        parse_hex32_f32(t).ok_or_else(|| perr(ln, format!("bad scale '{t}'")))
                    };
                    let (in_scale, pre_scale, out_scale) =
                        (scale(toks[8])?, scale(toks[9])?, scale(toks[10])?);
                    let (ln2, ws_line) = next("wscales")?;
                    let weight_scales =
                        parse_hex32_list(ws_line, "wscales", k).map_err(|m| perr(ln2, m))?;
                    let (ln2, m_line) = next("mults")?;
                    let mults = parse_hex32_list(m_line, "mults", k).map_err(|m| perr(ln2, m))?;
                    let (ln2, b_line) = next("bias")?;
                    let bias: Vec<i32> =
                        parse_int_list(b_line, "bias", k).map_err(|m| perr(ln2, m))?;
                    let kdim = c * kh * kw;
                    let mut weights = Vec::with_capacity(k * kdim);
                    for _ in 0..k {
                        let (ln2, w_line) = next("weight row")?;
                        weights.extend(
                            parse_int_list::<i8>(w_line, "w", kdim).map_err(|m| perr(ln2, m))?,
                        );
                    }
                    layers.push(QLayer::Conv2d(QConv2dLayer {
                        weights,
                        k,
                        c,
                        kh,
                        kw,
                        bias,
                        weight_scales,
                        in_scale,
                        pre_scale,
                        out_scale,
                        mults,
                        activation,
                    }));
                }
                Some("pool") => {
                    if toks.len() != 5 {
                        return Err(perr(ln, format!("bad pool header '{head}'")));
                    }
                    let kind = match toks[1] {
                        "max" => PoolKind::Max,
                        "mean" => PoolKind::Mean,
                        other => return Err(perr(ln, format!("unknown pool kind '{other}'"))),
                    };
                    let num = |t: &str| t.parse::<usize>().map_err(|e| perr(ln, e.to_string()));
                    layers.push(QLayer::Pool(PoolLayer {
                        kind,
                        kh: num(toks[2])?,
                        kw: num(toks[3])?,
                        step: num(toks[4])?,
                    }));
                }
                Some("flatten") => layers.push(QLayer::Flatten),
                Some("qlinear") => {
                    if toks.len() != 13 || toks[3] != "act" || toks[5] != "scales" {
                        return Err(perr(ln, format!("bad qlinear header '{head}'")));
                    }
                    let num = |t: &str| t.parse::<usize>().map_err(|e| perr(ln, e.to_string()));
                    let (outputs, inputs) = (num(toks[1])?, num(toks[2])?);
                    let activation = parse_act(toks[4]).map_err(|m| perr(ln, m))?;
                    let scale = |t: &str| {
                        parse_hex32_f32(t).ok_or_else(|| perr(ln, format!("bad scale '{t}'")))
                    };
                    if toks[9] != "wscale" || toks[11] != "mult" {
                        return Err(perr(ln, format!("bad qlinear header '{head}'")));
                    }
                    let (in_scale, pre_scale, out_scale) =
                        (scale(toks[6])?, scale(toks[7])?, scale(toks[8])?);
                    let weight_scale = scale(toks[10])?;
                    let mult = scale(toks[12])?;
                    let (ln2, b_line) = next("bias")?;
                    let bias: Vec<i32> =
                        parse_int_list(b_line, "bias", outputs).map_err(|m| perr(ln2, m))?;
                    let mut weights = Vec::with_capacity(outputs * inputs);
                    for _ in 0..outputs {
                        let (ln2, w_line) = next("weight row")?;
                        weights.extend(
                            parse_int_list::<i8>(w_line, "w", inputs).map_err(|m| perr(ln2, m))?,
                        );
                    }
                    layers.push(QLayer::Linear(QLinearLayer {
                        weights,
                        inputs,
                        outputs,
                        bias,
                        weight_scale,
                        in_scale,
                        pre_scale,
                        out_scale,
                        mult,
                        activation,
                    }));
                }
                Some("log_softmax") => {
                    if toks.len() != 3 || toks[1] != "scale" {
                        return Err(perr(ln, format!("bad log_softmax header '{head}'")));
                    }
                    let in_scale = parse_hex32_f32(toks[2])
                        .ok_or_else(|| perr(ln, "bad log_softmax scale".into()))?;
                    layers.push(QLayer::LogSoftMax { in_scale });
                }
                other => return Err(perr(ln, format!("unknown layer '{}'", other.unwrap_or("")))),
            }
        }
        QuantNetwork::new(input_shape, input_scale, layers)
    }
}

/// Quantizes an f32 bias onto the i32 accumulator grid `s_in · s_w`.
fn quantize_bias(b: f32, acc_scale: f32) -> i32 {
    (b as f64 / acc_scale as f64)
        .round()
        .clamp(i32::MIN as f64, i32::MAX as f64) as i32
}

/// Builds the 255-entry i8→i8 activation table: codes on the
/// pre-activation grid map to codes on the output grid. Entry `i`
/// corresponds to code `i − 127`.
pub fn build_lut(act: Activation, pre_scale: f32, out_scale: f32) -> Vec<i8> {
    (0..255i32)
        .map(|i| {
            let code = i - QMAX_I8;
            quantize_i8(act.apply(code as f32 * pre_scale), out_scale)
        })
        .collect()
}

/// Maps codes through a [`build_lut`] table in place.
fn apply_lut(lut: &[i8], codes: &mut [i8]) {
    debug_assert_eq!(lut.len(), 255);
    for c in codes {
        *c = lut[(*c as i32 + QMAX_I8) as usize];
    }
}

/// Pair-interleaves a code vector as the `ncols = 1` column matrix the
/// int8 GEMM consumes (linear layers).
fn pair_vector_into(x: &[i8], dst: &mut [i16]) {
    let kpairs = x.len().div_ceil(2);
    assert_eq!(dst.len(), kpairs * 2, "paired vector has wrong size");
    for kp in 0..kpairs {
        dst[kp * 2] = x[2 * kp] as i16;
        dst[kp * 2 + 1] = if 2 * kp + 1 < x.len() {
            x[2 * kp + 1] as i16
        } else {
            0
        };
    }
}

/// Propagates shapes through quantized layers (same rules as
/// `Layer::output_shape`).
fn compute_shapes(input_shape: Shape, layers: &[QLayer]) -> Result<Vec<Shape>, QuantError> {
    let mut shapes = Vec::with_capacity(layers.len());
    let mut cur = input_shape;
    for (i, layer) in layers.iter().enumerate() {
        let err = |msg: String| QuantError::ShapeMismatch(i, msg);
        cur = match layer {
            QLayer::Conv2d(c) => {
                if c.c != cur.c {
                    return Err(err(format!("conv expects {} channels, got {}", c.c, cur.c)));
                }
                if c.weights.len() != c.k * c.c * c.kh * c.kw {
                    return Err(err("conv weight count mismatch".into()));
                }
                if c.bias.len() != c.k || c.weight_scales.len() != c.k || c.mults.len() != c.k {
                    return Err(err("conv per-channel vector length mismatch".into()));
                }
                cur.conv_output(c.k, c.kh, c.kw)
                    .ok_or_else(|| err(format!("conv {}x{} does not fit {cur}", c.kh, c.kw)))?
            }
            QLayer::Pool(p) => cur
                .pool_output(p.kh, p.kw, p.step)
                .ok_or_else(|| err(format!("pool does not fit {cur}")))?,
            QLayer::Flatten => Shape::new(1, 1, cur.len()),
            QLayer::Linear(l) => {
                if cur.c != 1 || cur.h != 1 || cur.w != l.inputs {
                    return Err(err(format!("linear expects 1x1x{}, got {cur}", l.inputs)));
                }
                if l.weights.len() != l.outputs * l.inputs || l.bias.len() != l.outputs {
                    return Err(err("linear weight count mismatch".into()));
                }
                Shape::new(1, 1, l.outputs)
            }
            QLayer::LogSoftMax { .. } => {
                if cur.c != 1 || cur.h != 1 {
                    return Err(err(format!("log_softmax expects a flat input, got {cur}")));
                }
                cur
            }
        };
        shapes.push(cur);
    }
    Ok(shapes)
}

fn act_name(a: Option<Activation>) -> &'static str {
    match a {
        None => "none",
        Some(a) => a.name(),
    }
}

fn parse_act(s: &str) -> Result<Option<Activation>, String> {
    match s {
        "none" => Ok(None),
        "tanh" => Ok(Some(Activation::Tanh)),
        "relu" => Ok(Some(Activation::Relu)),
        "sigmoid" => Ok(Some(Activation::Sigmoid)),
        other => Err(format!("unknown activation '{other}'")),
    }
}

fn hex32(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

fn parse_hex32_f32(s: &str) -> Option<f32> {
    if s.len() != 8 {
        return None;
    }
    u32::from_str_radix(s, 16).ok().map(f32::from_bits)
}

fn join_hex32(vs: &[f32]) -> String {
    vs.iter().map(|&v| hex32(v)).collect::<Vec<_>>().join(" ")
}

fn join_ints<T: std::fmt::Display>(vs: &[T]) -> String {
    vs.iter().map(T::to_string).collect::<Vec<_>>().join(" ")
}

fn parse_hex32_list(line: &str, key: &str, want: usize) -> Result<Vec<f32>, String> {
    let body = line
        .strip_prefix(key)
        .ok_or_else(|| format!("expected '{key}' line, got '{line}'"))?;
    let vs: Option<Vec<f32>> = body.split_whitespace().map(parse_hex32_f32).collect();
    let vs = vs.ok_or_else(|| format!("bad hex scale in '{line}'"))?;
    if vs.len() != want {
        return Err(format!("{key}: expected {want} values, got {}", vs.len()));
    }
    Ok(vs)
}

fn parse_int_list<T: std::str::FromStr>(
    line: &str,
    key: &str,
    want: usize,
) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let body = line
        .strip_prefix(key)
        .ok_or_else(|| format!("expected '{key}' line, got '{line}'"))?;
    let mut vs = Vec::with_capacity(want);
    for tok in body.split_whitespace() {
        vs.push(tok.parse::<T>().map_err(|e| format!("{e} in '{tok}'"))?);
    }
    if vs.len() != want {
        return Err(format!("{key}: expected {want} values, got {}", vs.len()));
    }
    Ok(vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2dLayer, LinearLayer};
    use cnn_tensor::Tensor4;

    /// A small Test-1-shaped network with deterministic weights.
    fn net() -> Network {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32 * 0.8 - 0.4
        };
        Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_fn(4, 1, 5, 5, |_, _, _, _| next()),
                    bias: (0..4).map(|_| next()).collect(),
                    activation: Some(Activation::Tanh),
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: (0..144 * 10).map(|_| next()).collect(),
                    bias: (0..10).map(|_| next()).collect(),
                    inputs: 144,
                    outputs: 10,
                    activation: Some(Activation::Tanh),
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    fn samples(n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                Tensor::from_fn(Shape::new(1, 16, 16), |_, y, x| {
                    (((y * 16 + x + i * 37) % 19) as f32 * 0.1 - 0.9) * (1.0 + i as f32 * 0.05)
                })
            })
            .collect()
    }

    #[test]
    fn calibration_is_order_invariant() {
        let n = net();
        let mut s = samples(8);
        let a = calibrate(&n, &s);
        s.reverse();
        s.swap(1, 5);
        let b = calibrate(&n, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn quantized_outputs_track_f32() {
        let n = net();
        let s = samples(10);
        let q = QuantNetwork::quantize(&n, &s);
        let mut ws = Workspace::new();
        for t in &s {
            let fo = n.forward(t);
            let qo = q.infer_quant(t, &mut ws);
            assert_eq!(fo.shape(), qo.shape());
            // Log-probs live on a tanh-bounded last layer; int8 noise
            // must stay small in absolute terms.
            for (a, b) in fo.as_slice().iter().zip(qo.as_slice()) {
                assert!((a - b).abs() < 0.25, "f32 {a} vs int8 {b}");
            }
        }
    }

    #[test]
    fn quantized_predictions_mostly_agree() {
        let n = net();
        let s = samples(20);
        let q = QuantNetwork::quantize(&n, &s);
        // The untrained test net has near-tied logits, so a few flips
        // are expected; trained networks are gated much tighter (≤1pp
        // accuracy drift) by `quant_bench`.
        let agree = s.iter().filter(|t| n.predict(t) == q.predict(t)).count();
        assert!(agree >= 15, "only {agree}/20 predictions agree");
    }

    #[test]
    fn batch_is_bit_identical_to_single() {
        let n = net();
        let s = samples(6);
        let q = QuantNetwork::quantize(&n, &s);
        let mut ws = Workspace::new();
        let batched = q.infer_batch_quant(&s, &mut ws);
        for (t, b) in s.iter().zip(&batched) {
            let lone = q.infer_quant(t, &mut ws);
            assert_eq!(lone.as_slice().len(), b.as_slice().len());
            for (x, y) in lone.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "batch diverged from single");
            }
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        let n = net();
        let s = samples(4);
        let q = QuantNetwork::quantize(&n, &s);
        let mut ws = Workspace::new();
        let a = q.infer_quant(&s[0], &mut ws);
        let b = q.infer_quant(&s[0], &mut ws);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let n = net();
        let q = QuantNetwork::quantize(&n, &samples(5));
        let text = q.to_text();
        assert!(text.starts_with(QUANT_MAGIC));
        let back = QuantNetwork::from_text(&text).unwrap();
        assert_eq!(q, back);
        // And re-serialization is byte-stable.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn corrupted_text_is_rejected() {
        let q = QuantNetwork::quantize(&net(), &samples(3));
        let text = q.to_text();
        // Flip one weight digit.
        let pos = text.find("\nw ").unwrap() + 3;
        let mut bad = text.clone();
        let orig = bad.as_bytes()[pos];
        let repl = if orig == b'1' { '2' } else { '1' };
        bad.replace_range(pos..pos + 1, &repl.to_string());
        match QuantNetwork::from_text(&bad) {
            Err(QuantError::ChecksumMismatch { .. }) => {}
            other => panic!("corruption not caught: {other:?}"),
        }
        // Truncation loses the checksum line entirely.
        let cut = &text[..text.len() / 2];
        assert!(QuantNetwork::from_text(cut).is_err());
    }

    #[test]
    fn conv_scales_are_per_output_channel() {
        let n = net();
        let q = QuantNetwork::quantize(&n, &samples(3));
        let QLayer::Conv2d(c) = &q.layers()[0] else {
            panic!("layer 0 should be a conv");
        };
        assert_eq!(c.weight_scales.len(), c.k);
        // Channels with different max weights get different scales.
        let distinct: std::collections::BTreeSet<u32> =
            c.weight_scales.iter().map(|s| s.to_bits()).collect();
        assert!(distinct.len() > 1, "per-channel scales collapsed");
    }

    #[test]
    fn lut_is_monotone_for_monotone_activations() {
        let lut = build_lut(Activation::Tanh, 0.05, 0.01);
        for w in lut.windows(2) {
            assert!(w[1] >= w[0], "tanh LUT must be monotone");
        }
    }

    fn counter_sum(name: &str) -> u64 {
        cnn_trace::snapshot()
            .counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    #[test]
    fn saturation_counter_fires_when_requantize_clamps() {
        // A hand-built net whose conv accumulator (25 · 127 = 3175)
        // lands far outside the i8 grid at mult 1.0: requantize must
        // clamp to 127 — never wrap — and count the event.
        let q = QuantNetwork::new(
            Shape::new(1, 5, 5),
            1.0 / 127.0,
            vec![
                QLayer::Conv2d(QConv2dLayer {
                    weights: vec![1i8; 25],
                    k: 1,
                    c: 1,
                    kh: 5,
                    kw: 5,
                    bias: vec![0],
                    weight_scales: vec![1.0],
                    in_scale: 1.0 / 127.0,
                    pre_scale: 1.0,
                    out_scale: 1.0,
                    mults: vec![1.0],
                    activation: None,
                }),
                QLayer::Flatten,
                QLayer::LogSoftMax { in_scale: 1.0 },
            ],
        )
        .unwrap();
        cnn_trace::enable();
        let before = counter_sum("cnn_quant_requant_saturations_total");
        let mut ws = Workspace::new();
        let out = q.infer_quant(&Tensor::full(Shape::new(1, 5, 5), 1.0), &mut ws);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
        let after = counter_sum("cnn_quant_requant_saturations_total");
        assert!(after > before, "saturations not counted");
    }
}
