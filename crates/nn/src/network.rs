//! A validated sequence of layers with forward evaluation, batch
//! classification and JSON (de)serialization.

use crate::layer::Layer;
use cnn_tensor::parallel::par_map;
use cnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when assembling or loading a network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A layer cannot accept its input shape (layer index, message).
    ShapeMismatch(usize, String),
    /// The network has no layers.
    Empty,
    /// JSON (de)serialization failure.
    Serde(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ShapeMismatch(i, msg) => write!(f, "layer {i}: {msg}"),
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// An offline-trained CNN: input shape plus a validated layer stack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    input_shape: Shape,
    layers: Vec<Layer>,
    /// Shape after each layer, cached at construction.
    shapes: Vec<Shape>,
}

impl Network {
    /// Starts a [`crate::NetworkBuilder`] for the given input shape.
    pub fn builder(input_shape: Shape) -> crate::NetworkBuilder {
        crate::NetworkBuilder::new(input_shape)
    }

    /// Assembles a network, validating every layer's shape transition.
    pub fn new(input_shape: Shape, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        let mut shapes = Vec::with_capacity(layers.len());
        let mut cur = input_shape;
        for (i, layer) in layers.iter().enumerate() {
            cur = layer
                .output_shape(cur)
                .map_err(|msg| NetworkError::ShapeMismatch(i, msg))?;
            shapes.push(cur);
        }
        Ok(Network {
            input_shape,
            layers,
            shapes,
        })
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The output shape (class-score vector for a classifier).
    pub fn output_shape(&self) -> Shape {
        *self.shapes.last().expect("non-empty by construction")
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Shape after layer `i`.
    pub fn shape_after(&self, i: usize) -> Shape {
        self.shapes[i]
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.output_shape().len()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Full forward pass.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.shape(),
            self.input_shape,
            "input shape {} != network input {}",
            input.shape(),
            self.input_shape
        );
        let mut cur = {
            let _span =
                cnn_trace::span_lazy("nn", || format!("L0 {}", self.layers[0].kind_name()).into());
            self.layers[0].forward(input)
        };
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let _span = cnn_trace::span_lazy("nn", || format!("L{i} {}", layer.kind_name()).into());
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Forward pass retaining every intermediate activation (input
    /// included, as element 0) — the cache backpropagation needs.
    pub fn forward_trace(&self, input: &Tensor) -> Vec<Tensor> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = cnn_trace::span_lazy("nn", || format!("L{i} {}", layer.kind_name()).into());
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Predicted class index — the integer the generated hardware
    /// function returns.
    pub fn predict(&self, input: &Tensor) -> usize {
        self.forward(input).argmax()
    }

    /// Classifies a batch in parallel (rayon), preserving order.
    pub fn predict_batch(&self, inputs: &[Tensor]) -> Vec<usize> {
        par_map(inputs, |t| self.predict(t))
    }

    /// Fraction of misclassified samples — the paper's "predicted
    /// error" metric over a labelled test set.
    pub fn prediction_error(&self, inputs: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        assert!(!inputs.is_empty(), "empty test set");
        let preds = self.predict_batch(inputs);
        let wrong = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p != l)
            .count();
        wrong as f64 / inputs.len() as f64
    }

    /// Serializes structure and weights to JSON — the "trained weights
    /// file" the automation framework ingests.
    pub fn to_json(&self) -> Result<String, NetworkError> {
        serde_json::to_string(self).map_err(|e| NetworkError::Serde(e.to_string()))
    }

    /// Loads a network from JSON, re-validating all shape transitions.
    pub fn from_json(json: &str) -> Result<Self, NetworkError> {
        let raw: Network =
            serde_json::from_str(json).map_err(|e| NetworkError::Serde(e.to_string()))?;
        // Re-validate rather than trusting the cached shapes.
        Network::new(raw.input_shape, raw.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2dLayer, LinearLayer, PoolLayer};
    use cnn_tensor::init::{init_kernels, init_vec, seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Tensor4;

    /// The paper's Test-1 network with seeded random weights.
    pub fn test1_net(seed: u64) -> Network {
        let mut rng = seeded_rng(seed);
        Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: init_kernels(&mut rng, 6, 1, 5, 5, Init::Uniform(0.2)),
                    bias: init_vec(&mut rng, 6, Init::Uniform(0.1)),
                    activation: None,
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: init_vec(&mut rng, 216 * 10, Init::Uniform(0.1)),
                    bias: init_vec(&mut rng, 10, Init::Uniform(0.05)),
                    inputs: 216,
                    outputs: 10,
                    activation: Some(Activation::Tanh),
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    #[test]
    fn test1_network_shapes() {
        let net = test1_net(1);
        assert_eq!(net.input_shape(), Shape::new(1, 16, 16));
        assert_eq!(net.shape_after(0), Shape::new(6, 12, 12));
        assert_eq!(net.shape_after(1), Shape::new(6, 6, 6));
        assert_eq!(net.shape_after(2), Shape::new(1, 1, 216));
        assert_eq!(net.shape_after(3), Shape::new(1, 1, 10));
        assert_eq!(net.output_shape(), Shape::new(1, 1, 10));
        assert_eq!(net.classes(), 10);
        assert_eq!(net.param_count(), 156 + 2170);
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            Network::new(Shape::new(1, 4, 4), vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn bad_transition_reports_layer_index() {
        let err = Network::new(
            Shape::new(1, 4, 4),
            vec![
                Layer::Flatten,
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::ones(1, 1, 2, 2),
                    bias: vec![0.0],
                    activation: None,
                }),
            ],
        )
        .unwrap_err();
        match err {
            NetworkError::ShapeMismatch(1, msg) => assert!(msg.contains("does not fit"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_output_is_log_probability() {
        let net = test1_net(2);
        let x = Tensor::full(Shape::new(1, 16, 16), 0.3);
        let out = net.forward(&x);
        let sum_p: f32 = out.as_slice().iter().map(|v| v.exp()).sum();
        assert!((sum_p - 1.0).abs() < 1e-4, "probabilities sum to {sum_p}");
    }

    #[test]
    #[should_panic(expected = "input shape")]
    fn forward_checks_input_shape() {
        let net = test1_net(3);
        net.forward(&Tensor::zeros(Shape::new(1, 8, 8)));
    }

    #[test]
    fn forward_trace_matches_forward() {
        let net = test1_net(4);
        let x = Tensor::full(Shape::new(1, 16, 16), -0.2);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), net.layers().len() + 1);
        assert_eq!(trace.last().unwrap(), &net.forward(&x));
        assert_eq!(trace[0], x);
    }

    #[test]
    fn predict_batch_matches_sequential() {
        let net = test1_net(5);
        let mut rng = seeded_rng(99);
        let inputs: Vec<Tensor> = (0..32)
            .map(|_| {
                cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0))
            })
            .collect();
        let batch = net.predict_batch(&inputs);
        let seq: Vec<usize> = inputs.iter().map(|t| net.predict(t)).collect();
        assert_eq!(batch, seq);
    }

    #[test]
    fn prediction_error_counts_mismatches() {
        let net = test1_net(6);
        let x = Tensor::zeros(Shape::new(1, 16, 16));
        let pred = net.predict(&x);
        let inputs = vec![x.clone(), x.clone(), x];
        // One correct label, two wrong ones.
        let wrong = (pred + 1) % 10;
        let err = net.prediction_error(&inputs, &[pred, wrong, wrong]);
        assert!((err - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn prediction_error_checks_lengths() {
        let net = test1_net(7);
        net.prediction_error(&[Tensor::zeros(Shape::new(1, 16, 16))], &[0, 1]);
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let net = test1_net(8);
        let json = net.to_json().unwrap();
        let back = Network::from_json(&json).unwrap();
        assert_eq!(net, back);
        let x = Tensor::full(Shape::new(1, 16, 16), 0.1);
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            Network::from_json("{not json"),
            Err(NetworkError::Serde(_))
        ));
    }

    #[test]
    fn from_json_revalidates_shapes() {
        // Corrupt a serialized network: shrink the linear layer's input count.
        let net = test1_net(9);
        let json = net
            .to_json()
            .unwrap()
            .replace("\"inputs\":216", "\"inputs\":215");
        let err = Network::from_json(&json).unwrap_err();
        assert!(matches!(err, NetworkError::ShapeMismatch(3, _)), "{err:?}");
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(NetworkError::Empty.to_string(), "network has no layers");
        assert!(NetworkError::ShapeMismatch(2, "boom".into())
            .to_string()
            .contains("layer 2"));
    }
}
