//! A validated sequence of layers with forward evaluation, batch
//! classification and JSON (de)serialization.

use crate::layer::Layer;
use cnn_tensor::ops::conv::conv2d_gemm_packed_into;
use cnn_tensor::ops::gemm::gemm_bias_into;
use cnn_tensor::ops::im2col::im2col_strided_into;
use cnn_tensor::ops::linear::linear;
use cnn_tensor::ops::pool::pool_slice_into;
use cnn_tensor::ops::softmax::log_softmax_inplace;
use cnn_tensor::parallel::par_map;
use cnn_tensor::{with_pooled, PackedKernels, Shape, Tensor, TensorView, Workspace};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Errors produced when assembling or loading a network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// A layer cannot accept its input shape (layer index, message).
    ShapeMismatch(usize, String),
    /// The network has no layers.
    Empty,
    /// JSON (de)serialization failure.
    Serde(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ShapeMismatch(i, msg) => write!(f, "layer {i}: {msg}"),
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// An offline-trained CNN: input shape plus a validated layer stack.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    input_shape: Shape,
    layers: Vec<Layer>,
    /// Shape after each layer, cached at construction.
    shapes: Vec<Shape>,
    /// Per-layer packed weight matrices for the GEMM engine, built
    /// lazily on first inference. Fields are private and the struct is
    /// only assembled through [`Network::new`], so any weight update
    /// (see `train::apply_gradients`) rebuilds the network and thereby
    /// invalidates this cache.
    #[serde(skip)]
    packed: OnceLock<Vec<Option<PackedKernels>>>,
}

// Equality is over the semantic fields only; the lazily-built packed
// cache is derived state and must not affect comparisons.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.input_shape == other.input_shape
            && self.layers == other.layers
            && self.shapes == other.shapes
    }
}

impl Network {
    /// Starts a [`crate::NetworkBuilder`] for the given input shape.
    pub fn builder(input_shape: Shape) -> crate::NetworkBuilder {
        crate::NetworkBuilder::new(input_shape)
    }

    /// Assembles a network, validating every layer's shape transition.
    pub fn new(input_shape: Shape, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        let mut shapes = Vec::with_capacity(layers.len());
        let mut cur = input_shape;
        for (i, layer) in layers.iter().enumerate() {
            cur = layer
                .output_shape(cur)
                .map_err(|msg| NetworkError::ShapeMismatch(i, msg))?;
            shapes.push(cur);
        }
        Ok(Network {
            input_shape,
            layers,
            shapes,
            packed: OnceLock::new(),
        })
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The output shape (class-score vector for a classifier).
    pub fn output_shape(&self) -> Shape {
        *self.shapes.last().expect("non-empty by construction")
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Shape after layer `i`.
    pub fn shape_after(&self, i: usize) -> Shape {
        self.shapes[i]
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.output_shape().len()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// The per-layer packed weight matrices the GEMM engine consumes,
    /// built on first use. Hits and misses are counted on the
    /// `cnn_tensor_pack_{hits,misses}_total` trace counters.
    pub fn packed_kernels(&self) -> &[Option<PackedKernels>] {
        if let Some(p) = self.packed.get() {
            cnn_trace::counter_add("cnn_tensor_pack_hits_total", &[], 1);
            return p;
        }
        cnn_trace::counter_add("cnn_tensor_pack_misses_total", &[], 1);
        self.packed.get_or_init(|| {
            self.layers
                .iter()
                .map(|l| match l {
                    Layer::Conv2d(c) => Some(PackedKernels::pack(&c.kernels)),
                    _ => None,
                })
                .collect()
        })
    }

    /// Grows `ws` to the high-water sizes this network needs, so the
    /// inference loop below performs no allocation.
    fn reserve_workspace(&self, ws: &mut Workspace) {
        let mut max_act = self.input_shape.len();
        let mut max_cols = 0usize;
        for (layer, &oshape) in self.layers.iter().zip(&self.shapes) {
            max_act = max_act.max(oshape.len());
            if let Layer::Conv2d(c) = layer {
                let kdim = c.kernels.channels() * c.kernels.kh() * c.kernels.kw();
                max_cols = max_cols.max(kdim * oshape.h * oshape.w);
            }
        }
        ws.ensure_act(max_act);
        ws.ensure_cols(max_cols);
    }

    /// Inference-only forward pass through the blocked-GEMM engine:
    /// packed weights, im2col scratch and activation ping-pong buffers
    /// all live in `ws`, no intermediate activation is retained, and
    /// flatten is a shape relabel (no data moves). After `ws` has grown
    /// to this network's high-water sizes the pass performs **zero heap
    /// allocations** (asserted by `tests/zero_alloc.rs`).
    ///
    /// Bit-identical to chaining [`Layer::forward`]: every conv output
    /// element sees the same op sequence (see `cnn_tensor::ops::gemm`).
    pub fn infer<'a>(&self, input: &Tensor, ws: &'a mut Workspace) -> TensorView<'a> {
        assert_eq!(
            input.shape(),
            self.input_shape,
            "input shape {} != network input {}",
            input.shape(),
            self.input_shape
        );
        let packed = self.packed_kernels();
        self.reserve_workspace(ws);
        ws.ping[..input.len()].copy_from_slice(input.as_slice());
        let mut cur = self.input_shape;

        for (i, layer) in self.layers.iter().enumerate() {
            let _span = cnn_trace::span_lazy("nn", || format!("L{i} {}", layer.kind_name()).into());
            let oshape = self.shapes[i];
            match layer {
                Layer::Conv2d(c) => {
                    let pk = packed[i].as_ref().expect("conv layer is packed");
                    let cols_len = pk.kdim() * oshape.h * oshape.w;
                    let out = &mut ws.pong[..oshape.len()];
                    conv2d_gemm_packed_into(
                        &ws.ping[..cur.len()],
                        cur,
                        pk,
                        &c.bias,
                        &mut ws.cols[..cols_len],
                        out,
                    );
                    if let Some(act) = c.activation {
                        act.apply_slice(out);
                    }
                    std::mem::swap(&mut ws.ping, &mut ws.pong);
                }
                Layer::Pool(p) => {
                    pool_slice_into(
                        &ws.ping[..cur.len()],
                        cur,
                        p.kh,
                        p.kw,
                        p.step,
                        p.kind,
                        &mut ws.pong[..oshape.len()],
                    );
                    std::mem::swap(&mut ws.ping, &mut ws.pong);
                }
                Layer::Flatten => {
                    // Shape relabel only; the data stays where it is.
                }
                Layer::Linear(l) => {
                    let out = &mut ws.pong[..oshape.len()];
                    linear(&ws.ping[..cur.len()], &l.weights, &l.bias, out);
                    if let Some(act) = l.activation {
                        act.apply_slice(out);
                    }
                    std::mem::swap(&mut ws.ping, &mut ws.pong);
                }
                Layer::LogSoftMax => {
                    log_softmax_inplace(&mut ws.ping[..cur.len()]);
                }
            }
            cur = oshape;
        }
        TensorView::new(cur, &ws.ping[..cur.len()])
    }

    /// Batched forward pass through the blocked-GEMM engine over one
    /// shared workspace: every convolution lowers all images into a
    /// single stacked `kdim × (batch·spatial)` column matrix (strided
    /// im2col, one column window per image) and runs **one** GEMM per
    /// layer, so the packed-weight panels stream through cache once
    /// per batch instead of once per image. This is what the serving
    /// front-end's batcher amortizes.
    ///
    /// Bit-identical to [`Network::infer`] per image: GEMM never
    /// splits the `ki` reduction and column count does not change any
    /// output element's op sequence, and all other layers run
    /// per-image on the same kernels (asserted bitwise by
    /// `batch_infer_bit_identical_to_single` below).
    pub fn infer_batch(&self, inputs: &[Tensor], ws: &mut Workspace) -> Vec<Tensor> {
        let _span = cnn_trace::span("nn", "infer_batch");
        if inputs.is_empty() {
            return Vec::new();
        }
        for t in inputs {
            assert_eq!(
                t.shape(),
                self.input_shape,
                "input shape {} != network input {}",
                t.shape(),
                self.input_shape
            );
        }
        let bsz = inputs.len();
        let packed = self.packed_kernels();

        // Per-image slot stride = the single-image activation
        // high-water mark; cols must hold the widest stacked panel.
        let mut stride = self.input_shape.len();
        let mut max_cols = 0usize;
        for (layer, &oshape) in self.layers.iter().zip(&self.shapes) {
            stride = stride.max(oshape.len());
            if let Layer::Conv2d(c) = layer {
                let kdim = c.kernels.channels() * c.kernels.kh() * c.kernels.kw();
                max_cols = max_cols.max(kdim * oshape.h * oshape.w * bsz);
            }
        }
        ws.ensure_act(stride * bsz);
        ws.ensure_cols(max_cols);

        // Split borrows: `a`/`b` are the slotted ping-pong pair (slot
        // `i` = image `i`); conv layers use `b` as the wide GEMM
        // output before de-interleaving back into `a`'s slots.
        let mut a: &mut Vec<f32> = &mut ws.ping;
        let mut b: &mut Vec<f32> = &mut ws.pong;
        for (i, t) in inputs.iter().enumerate() {
            a[i * stride..i * stride + t.len()].copy_from_slice(t.as_slice());
        }
        let mut cur = self.input_shape;

        for (li, layer) in self.layers.iter().enumerate() {
            let _span =
                cnn_trace::span_lazy("nn", || format!("L{li} {} xB", layer.kind_name()).into());
            let oshape = self.shapes[li];
            match layer {
                Layer::Conv2d(c) => {
                    let pk = packed[li].as_ref().expect("conv layer is packed");
                    let spatial = oshape.h * oshape.w;
                    let bn = bsz * spatial;
                    let cols = &mut ws.cols[..pk.kdim() * bn];
                    for i in 0..bsz {
                        im2col_strided_into(
                            &a[i * stride..i * stride + cur.len()],
                            cur,
                            c.kernels.kh(),
                            c.kernels.kw(),
                            cols,
                            bn,
                            i * spatial,
                        );
                    }
                    let rows = oshape.c;
                    let out = &mut b[..rows * bn];
                    gemm_bias_into(pk, cols, &c.bias, bn, out);
                    if let Some(act) = c.activation {
                        act.apply_slice(out);
                    }
                    // De-interleave the wide `rows × (batch·spatial)`
                    // result back into per-image slots (the GEMM has
                    // consumed `cols`, so overwriting `a` is safe).
                    for i in 0..bsz {
                        for k in 0..rows {
                            let dst = i * stride + k * spatial;
                            let src = k * bn + i * spatial;
                            a[dst..dst + spatial].copy_from_slice(&out[src..src + spatial]);
                        }
                    }
                    // No swap: the layer output landed back in `a`.
                }
                Layer::Pool(p) => {
                    for i in 0..bsz {
                        pool_slice_into(
                            &a[i * stride..i * stride + cur.len()],
                            cur,
                            p.kh,
                            p.kw,
                            p.step,
                            p.kind,
                            &mut b[i * stride..i * stride + oshape.len()],
                        );
                    }
                    std::mem::swap(&mut a, &mut b);
                }
                Layer::Flatten => {
                    // Shape relabel only; the data stays where it is.
                }
                Layer::Linear(l) => {
                    for i in 0..bsz {
                        let out = &mut b[i * stride..i * stride + oshape.len()];
                        linear(
                            &a[i * stride..i * stride + cur.len()],
                            &l.weights,
                            &l.bias,
                            out,
                        );
                        if let Some(act) = l.activation {
                            act.apply_slice(out);
                        }
                    }
                    std::mem::swap(&mut a, &mut b);
                }
                Layer::LogSoftMax => {
                    for i in 0..bsz {
                        log_softmax_inplace(&mut a[i * stride..i * stride + cur.len()]);
                    }
                }
            }
            cur = oshape;
        }

        (0..bsz)
            .map(|i| Tensor::from_vec(cur, a[i * stride..i * stride + cur.len()].to_vec()))
            .collect()
    }

    /// Batched classification through [`Network::infer_batch`] (one
    /// stacked GEMM per conv layer, single pooled workspace) —
    /// bit-identical predictions to [`Network::predict`] per image.
    pub fn predict_batch_stacked(&self, inputs: &[Tensor]) -> Vec<usize> {
        with_pooled(|ws| {
            self.infer_batch(inputs, ws)
                .iter()
                .map(Tensor::argmax)
                .collect()
        })
    }

    /// Full forward pass. Runs on the GEMM engine with a pooled
    /// workspace; bit-identical to evaluating the layers one by one.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        with_pooled(|ws| self.infer(input, ws).to_tensor())
    }

    /// Forward pass retaining every intermediate activation (input
    /// included, as element 0) — the cache backpropagation needs.
    /// Convolutions run on the GEMM engine with a pooled workspace for
    /// the im2col scratch; the retained activations are owned tensors.
    pub fn forward_trace(&self, input: &Tensor) -> Vec<Tensor> {
        with_pooled(|ws| self.forward_trace_ws(input, ws))
    }

    /// [`Network::forward_trace`] with an explicit workspace.
    pub fn forward_trace_ws(&self, input: &Tensor, ws: &mut Workspace) -> Vec<Tensor> {
        let packed = self.packed_kernels();
        self.reserve_workspace(ws);
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = cnn_trace::span_lazy("nn", || format!("L{i} {}", layer.kind_name()).into());
            let prev = acts.last().expect("non-empty");
            let next = match layer {
                Layer::Conv2d(c) => {
                    let pk = packed[i].as_ref().expect("conv layer is packed");
                    let oshape = self.shapes[i];
                    let cols_len = pk.kdim() * oshape.h * oshape.w;
                    let mut out = Tensor::zeros(oshape);
                    conv2d_gemm_packed_into(
                        prev.as_slice(),
                        prev.shape(),
                        pk,
                        &c.bias,
                        &mut ws.cols[..cols_len],
                        out.as_mut_slice(),
                    );
                    if let Some(act) = c.activation {
                        act.apply_slice(out.as_mut_slice());
                    }
                    out
                }
                _ => layer.forward(prev),
            };
            acts.push(next);
        }
        acts
    }

    /// Predicted class index — the integer the generated hardware
    /// function returns. Runs on the GEMM engine without materializing
    /// the output tensor.
    pub fn predict(&self, input: &Tensor) -> usize {
        with_pooled(|ws| self.infer(input, ws).argmax())
    }

    /// Classifies a batch in parallel (rayon), preserving order.
    pub fn predict_batch(&self, inputs: &[Tensor]) -> Vec<usize> {
        par_map(inputs, |t| self.predict(t))
    }

    /// Fraction of misclassified samples — the paper's "predicted
    /// error" metric over a labelled test set.
    pub fn prediction_error(&self, inputs: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
        assert!(!inputs.is_empty(), "empty test set");
        let preds = self.predict_batch(inputs);
        let wrong = preds
            .iter()
            .zip(labels.iter())
            .filter(|(p, l)| p != l)
            .count();
        wrong as f64 / inputs.len() as f64
    }

    /// Serializes structure and weights to JSON — the "trained weights
    /// file" the automation framework ingests.
    pub fn to_json(&self) -> Result<String, NetworkError> {
        serde_json::to_string(self).map_err(|e| NetworkError::Serde(e.to_string()))
    }

    /// Loads a network from JSON, re-validating all shape transitions.
    pub fn from_json(json: &str) -> Result<Self, NetworkError> {
        let raw: Network =
            serde_json::from_str(json).map_err(|e| NetworkError::Serde(e.to_string()))?;
        // Re-validate rather than trusting the cached shapes.
        Network::new(raw.input_shape, raw.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2dLayer, LinearLayer, PoolLayer};
    use cnn_tensor::init::{init_kernels, init_vec, seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Tensor4;

    /// The paper's Test-1 network with seeded random weights.
    pub fn test1_net(seed: u64) -> Network {
        let mut rng = seeded_rng(seed);
        Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: init_kernels(&mut rng, 6, 1, 5, 5, Init::Uniform(0.2)),
                    bias: init_vec(&mut rng, 6, Init::Uniform(0.1)),
                    activation: None,
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: init_vec(&mut rng, 216 * 10, Init::Uniform(0.1)),
                    bias: init_vec(&mut rng, 10, Init::Uniform(0.05)),
                    inputs: 216,
                    outputs: 10,
                    activation: Some(Activation::Tanh),
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    #[test]
    fn test1_network_shapes() {
        let net = test1_net(1);
        assert_eq!(net.input_shape(), Shape::new(1, 16, 16));
        assert_eq!(net.shape_after(0), Shape::new(6, 12, 12));
        assert_eq!(net.shape_after(1), Shape::new(6, 6, 6));
        assert_eq!(net.shape_after(2), Shape::new(1, 1, 216));
        assert_eq!(net.shape_after(3), Shape::new(1, 1, 10));
        assert_eq!(net.output_shape(), Shape::new(1, 1, 10));
        assert_eq!(net.classes(), 10);
        assert_eq!(net.param_count(), 156 + 2170);
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            Network::new(Shape::new(1, 4, 4), vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn bad_transition_reports_layer_index() {
        let err = Network::new(
            Shape::new(1, 4, 4),
            vec![
                Layer::Flatten,
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::ones(1, 1, 2, 2),
                    bias: vec![0.0],
                    activation: None,
                }),
            ],
        )
        .unwrap_err();
        match err {
            NetworkError::ShapeMismatch(1, msg) => assert!(msg.contains("does not fit"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forward_output_is_log_probability() {
        let net = test1_net(2);
        let x = Tensor::full(Shape::new(1, 16, 16), 0.3);
        let out = net.forward(&x);
        let sum_p: f32 = out.as_slice().iter().map(|v| v.exp()).sum();
        assert!((sum_p - 1.0).abs() < 1e-4, "probabilities sum to {sum_p}");
    }

    #[test]
    #[should_panic(expected = "input shape")]
    fn forward_checks_input_shape() {
        let net = test1_net(3);
        net.forward(&Tensor::zeros(Shape::new(1, 8, 8)));
    }

    #[test]
    fn forward_trace_matches_forward() {
        let net = test1_net(4);
        let x = Tensor::full(Shape::new(1, 16, 16), -0.2);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), net.layers().len() + 1);
        assert_eq!(trace.last().unwrap(), &net.forward(&x));
        assert_eq!(trace[0], x);
    }

    #[test]
    fn predict_batch_matches_sequential() {
        let net = test1_net(5);
        let mut rng = seeded_rng(99);
        let inputs: Vec<Tensor> = (0..32)
            .map(|_| {
                cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0))
            })
            .collect();
        let batch = net.predict_batch(&inputs);
        let seq: Vec<usize> = inputs.iter().map(|t| net.predict(t)).collect();
        assert_eq!(batch, seq);
    }

    #[test]
    fn prediction_error_counts_mismatches() {
        let net = test1_net(6);
        let x = Tensor::zeros(Shape::new(1, 16, 16));
        let pred = net.predict(&x);
        let inputs = vec![x.clone(), x.clone(), x];
        // One correct label, two wrong ones.
        let wrong = (pred + 1) % 10;
        let err = net.prediction_error(&inputs, &[pred, wrong, wrong]);
        assert!((err - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn prediction_error_checks_lengths() {
        let net = test1_net(7);
        net.prediction_error(&[Tensor::zeros(Shape::new(1, 16, 16))], &[0, 1]);
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let net = test1_net(8);
        let json = net.to_json().unwrap();
        let back = Network::from_json(&json).unwrap();
        assert_eq!(net, back);
        let x = Tensor::full(Shape::new(1, 16, 16), 0.1);
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            Network::from_json("{not json"),
            Err(NetworkError::Serde(_))
        ));
    }

    #[test]
    fn from_json_revalidates_shapes() {
        // Corrupt a serialized network: shrink the linear layer's input count.
        let net = test1_net(9);
        let json = net
            .to_json()
            .unwrap()
            .replace("\"inputs\":216", "\"inputs\":215");
        let err = Network::from_json(&json).unwrap_err();
        assert!(matches!(err, NetworkError::ShapeMismatch(3, _)), "{err:?}");
    }

    /// A Test-4-shaped (CIFAR) network with deterministic weights that
    /// do not depend on the `rand` crate.
    fn engine_net() -> Network {
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32 * 0.4 - 0.2
        };
        Network::new(
            Shape::new(3, 32, 32),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_fn(12, 3, 5, 5, |_, _, _, _| next()),
                    bias: (0..12).map(|_| next()).collect(),
                    activation: Some(Activation::Tanh),
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_fn(36, 12, 5, 5, |_, _, _, _| next()),
                    bias: (0..36).map(|_| next()).collect(),
                    activation: Some(Activation::Tanh),
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: (0..900 * 10).map(|_| next()).collect(),
                    bias: (0..10).map(|_| next()).collect(),
                    inputs: 900,
                    outputs: 10,
                    activation: Some(Activation::Tanh),
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    fn engine_input(scale: f32) -> Tensor {
        Tensor::from_fn(Shape::new(3, 32, 32), |c, y, x| {
            ((c * 1024 + y * 32 + x) % 17) as f32 * 0.1 * scale - 0.5
        })
    }

    #[test]
    fn infer_bit_identical_to_layer_chain() {
        let net = engine_net();
        let x = engine_input(1.0);
        // Reference: evaluate the layers one by one with the direct
        // (unblocked, scalar) kernels.
        let mut want = x.clone();
        for layer in net.layers() {
            want = layer.forward(&want);
        }
        let mut ws = cnn_tensor::Workspace::new();
        let got = net.infer(&x, &mut ws);
        assert_eq!(got.shape(), want.shape());
        for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "elem {i}: {a} vs {b}");
        }
        // forward() and predict() ride the same engine.
        assert_eq!(net.forward(&x), want);
        assert_eq!(net.predict(&x), want.argmax());
    }

    #[test]
    fn batch_infer_bit_identical_to_single() {
        // The serving front-end's correctness claim: results served
        // from a stacked batch are bit-identical to the single-image
        // path, for every batch size.
        let net = engine_net();
        let inputs: Vec<Tensor> = (0..5).map(|i| engine_input(0.3 + i as f32 * 0.4)).collect();
        let singles: Vec<Tensor> = inputs
            .iter()
            .map(|x| {
                let mut ws = cnn_tensor::Workspace::new();
                net.infer(x, &mut ws).to_tensor()
            })
            .collect();
        for bsz in 1..=inputs.len() {
            let mut ws = cnn_tensor::Workspace::new();
            let batched = net.infer_batch(&inputs[..bsz], &mut ws);
            assert_eq!(batched.len(), bsz);
            for (bi, (got, want)) in batched.iter().zip(&singles[..bsz]).enumerate() {
                assert_eq!(got.shape(), want.shape());
                for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch {bsz}, image {bi}, elem {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_infer_handles_empty_and_reused_workspace() {
        let net = engine_net();
        let mut ws = cnn_tensor::Workspace::new();
        assert!(net.infer_batch(&[], &mut ws).is_empty());
        // A workspace that served a big batch must still produce
        // bit-exact results for a smaller one (stale slot data beyond
        // the active region is never read).
        let inputs: Vec<Tensor> = (0..4).map(|i| engine_input(1.0 + i as f32)).collect();
        let big = net.infer_batch(&inputs, &mut ws);
        let small = net.infer_batch(&inputs[..2], &mut ws);
        for (a, b) in big[..2].iter().zip(&small) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn predict_batch_stacked_matches_per_image_predict() {
        let net = engine_net();
        let inputs: Vec<Tensor> = (0..7).map(|i| engine_input(0.2 * i as f32)).collect();
        let stacked = net.predict_batch_stacked(&inputs);
        let singles: Vec<usize> = inputs.iter().map(|t| net.predict(t)).collect();
        assert_eq!(stacked, singles);
    }

    #[test]
    fn workspace_reuse_across_networks_never_aliases_stale_data() {
        // Run a big network, then a small one, in the SAME workspace;
        // the small result must match a run in a fresh workspace bit
        // for bit even though the buffers still hold the big net's data.
        let big = engine_net();
        let small = Network::new(
            Shape::new(1, 8, 8),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_fn(2, 1, 3, 3, |k, _, m, n| {
                        (k + m + n) as f32 * 0.1 - 0.2
                    }),
                    bias: vec![0.05, -0.05],
                    activation: None,
                }),
                Layer::Flatten,
                Layer::LogSoftMax,
            ],
        )
        .unwrap();
        let small_x = Tensor::from_fn(Shape::new(1, 8, 8), |_, y, x| (y * 8 + x) as f32 * 0.01);

        let mut fresh = cnn_tensor::Workspace::new();
        let want = small.infer(&small_x, &mut fresh).to_tensor();

        let mut reused = cnn_tensor::Workspace::new();
        let _ = big.infer(&engine_input(1.0), &mut reused).to_tensor();
        let got = small.infer(&small_x, &mut reused).to_tensor();
        for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn forward_trace_rides_the_engine_and_matches_layer_chain() {
        let net = engine_net();
        let x = engine_input(0.7);
        let trace = net.forward_trace(&x);
        assert_eq!(trace.len(), net.layers().len() + 1);
        assert_eq!(trace[0], x);
        let mut want = x.clone();
        for (layer, traced) in net.layers().iter().zip(&trace[1..]) {
            want = layer.forward(&want);
            assert_eq!(&want, traced);
        }
    }

    #[test]
    fn packed_cache_is_built_once_and_not_compared() {
        let net = engine_net();
        let a = net.packed_kernels().as_ptr();
        let b = net.packed_kernels().as_ptr();
        assert_eq!(a, b, "cache rebuilt between calls");
        // A clone without a warmed cache still compares equal.
        let cold = Network::new(net.input_shape(), net.layers().to_vec()).unwrap();
        assert_eq!(net, cold);
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(NetworkError::Empty.to_string(), "network has no layers");
        assert!(NetworkError::ShapeMismatch(2, "boom".into())
            .to_string()
            .contains("layer 2"));
    }
}
