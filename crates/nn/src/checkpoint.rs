//! Epoch-granular training checkpoints with bit-identical resume.
//!
//! The checkpointed trainer differs from [`crate::train`](fn@crate::train) in one
//! deliberate way: instead of threading a single stateful RNG through
//! every epoch (whose internal state cannot be serialized), it derives
//! an **independent shuffle stream per epoch** from
//! `(master_seed, epoch)` with the store's SplitMix64. That makes the
//! full trajectory a pure function of `(seed, initial weights, data,
//! config)` — so resuming from a snapshot at epoch *k* replays epochs
//! *k..n* exactly as an uninterrupted run would, down to the last bit.
//!
//! A [`TrainCheckpoint`] captures everything epoch *k+1* depends on:
//! the master seed, the next epoch to run, the decayed learning rate,
//! the hyper-parameters, the accumulated statistics, the network and
//! the momentum velocity buffers. Its text encoding ends in a
//! `checksum` line (FNV-1a/64 over all preceding bytes), so a torn or
//! rotted checkpoint is refused rather than resumed from.

use crate::grad::LayerGrads;
use crate::network::Network;
use crate::train::{apply_gradients, sample_gradients, update_velocity, EpochStats, TrainConfig};
use crate::{io, Layer};
use cnn_store::hash::{hex64, mix_seed, parse_hex64, Fnv64, SplitMix64};
use cnn_tensor::{Tensor, Tensor4};
use rayon::prelude::*;
use std::fmt::Write as _;

/// Magic first line of the checkpoint text format.
pub const CHECKPOINT_MAGIC: &str = "cnn2fpga-checkpoint v1";

/// A resumable snapshot of an in-progress training run, taken at an
/// epoch boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainCheckpoint {
    /// Master seed; epoch `e`'s shuffle derives from `(seed, e)`.
    pub seed: u64,
    /// The next epoch to execute (`== config.epochs` when done).
    pub next_epoch: usize,
    /// Learning rate entering `next_epoch` (after decay).
    pub lr: f32,
    /// The run's hyper-parameters.
    pub config: TrainConfig,
    /// Statistics for the epochs already completed.
    pub stats: Vec<EpochStats>,
    /// Network weights as of the end of epoch `next_epoch - 1`.
    pub network: Network,
    /// Momentum velocity buffers (zeros when `momentum == 0`).
    pub velocity: Vec<LayerGrads>,
}

impl TrainCheckpoint {
    /// A fresh (epoch-0) checkpoint for `net` — the state an
    /// uninterrupted run starts from.
    pub fn fresh(net: &Network, cfg: &TrainConfig, seed: u64) -> TrainCheckpoint {
        TrainCheckpoint {
            seed,
            next_epoch: 0,
            lr: cfg.learning_rate,
            config: cfg.clone(),
            stats: Vec::new(),
            network: net.clone(),
            velocity: net.layers().iter().map(LayerGrads::zeros_like).collect(),
        }
    }

    /// True once every configured epoch has run.
    pub fn is_complete(&self) -> bool {
        self.next_epoch >= self.config.epochs
    }

    /// Serializes the checkpoint (trailing whole-file checksum line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{CHECKPOINT_MAGIC}");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "next-epoch {}", self.next_epoch);
        let _ = writeln!(out, "lr {}", self.lr);
        let c = &self.config;
        let _ = writeln!(
            out,
            "config {} {} {} {} {} {}",
            c.learning_rate, c.batch_size, c.epochs, c.weight_decay, c.lr_decay, c.momentum
        );
        for s in &self.stats {
            let _ = writeln!(out, "stat {} {} {}", s.epoch, s.mean_loss, s.train_error);
        }
        let _ = writeln!(out, "network-begin");
        out.push_str(&io::write_text(&self.network));
        let _ = writeln!(out, "network-end");
        let _ = writeln!(out, "velocity-begin");
        for v in &self.velocity {
            match v {
                LayerGrads::Conv2d { kernels, bias } => {
                    let _ = writeln!(
                        out,
                        "conv {} {} {} {}",
                        kernels.kernels(),
                        kernels.channels(),
                        kernels.kh(),
                        kernels.kw()
                    );
                    let vals: Vec<String> =
                        kernels.as_slice().iter().map(|v| format!("{v}")).collect();
                    let _ = writeln!(out, "{}", vals.join(" "));
                    let b: Vec<String> = bias.iter().map(|v| format!("{v}")).collect();
                    let _ = writeln!(out, "bias {}", b.join(" "));
                }
                LayerGrads::Linear { weights, bias } => {
                    let _ = writeln!(out, "linear {} {}", weights.len(), bias.len());
                    let vals: Vec<String> = weights.iter().map(|v| format!("{v}")).collect();
                    let _ = writeln!(out, "{}", vals.join(" "));
                    let b: Vec<String> = bias.iter().map(|v| format!("{v}")).collect();
                    let _ = writeln!(out, "bias {}", b.join(" "));
                }
                LayerGrads::None => {
                    let _ = writeln!(out, "none");
                }
            }
        }
        let _ = writeln!(out, "velocity-end");
        let sum = Fnv64::new().update(out.as_bytes()).finish();
        let _ = writeln!(out, "checksum {}", hex64(sum));
        out
    }

    /// Parses and fully verifies an encoded checkpoint. The checksum
    /// is checked before anything else, so torn or corrupted
    /// checkpoints fail fast with a clear message.
    pub fn decode(text: &str) -> Result<TrainCheckpoint, String> {
        let lines: Vec<&str> = text.lines().collect();
        let (check_idx, check_line) = lines
            .iter()
            .enumerate()
            .rev()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or("empty checkpoint")?;
        let stored = check_line
            .trim()
            .strip_prefix("checksum ")
            .and_then(parse_hex64)
            .ok_or("checkpoint missing trailing checksum line")?;
        let mut h = Fnv64::new();
        for l in &lines[..check_idx] {
            h.update(l.as_bytes()).update(b"\n");
        }
        let computed = h.finish();
        if stored != computed {
            return Err(format!(
                "checkpoint checksum mismatch: stored {}, computed {} (file corrupted?)",
                hex64(stored),
                hex64(computed)
            ));
        }

        let mut it = lines[..check_idx].iter().map(|l| l.trim_end());
        if it.next() != Some(CHECKPOINT_MAGIC) {
            return Err(format!("missing magic line '{CHECKPOINT_MAGIC}'"));
        }
        fn field<'a>(line: Option<&'a str>, tag: &str) -> Result<&'a str, String> {
            line.and_then(|l| l.strip_prefix(tag))
                .map(str::trim)
                .ok_or_else(|| format!("expected '{tag}' line"))
        }
        let seed: u64 = field(it.next(), "seed ")?
            .parse()
            .map_err(|e| format!("bad seed: {e}"))?;
        let next_epoch: usize = field(it.next(), "next-epoch ")?
            .parse()
            .map_err(|e| format!("bad next-epoch: {e}"))?;
        let lr: f32 = field(it.next(), "lr ")?
            .parse()
            .map_err(|e| format!("bad lr: {e}"))?;
        let cfg_parts: Vec<&str> = field(it.next(), "config ")?.split_whitespace().collect();
        let [clr, cbs, cep, cwd, cld, cmo] = cfg_parts.as_slice() else {
            return Err("config line must have 6 fields".into());
        };
        let config = TrainConfig {
            learning_rate: clr.parse().map_err(|e| format!("bad config lr: {e}"))?,
            batch_size: cbs.parse().map_err(|e| format!("bad batch_size: {e}"))?,
            epochs: cep.parse().map_err(|e| format!("bad epochs: {e}"))?,
            weight_decay: cwd.parse().map_err(|e| format!("bad weight_decay: {e}"))?,
            lr_decay: cld.parse().map_err(|e| format!("bad lr_decay: {e}"))?,
            momentum: cmo.parse().map_err(|e| format!("bad momentum: {e}"))?,
        };

        let mut stats = Vec::new();
        let mut line = it.next();
        while let Some(l) = line {
            let Some(rest) = l.strip_prefix("stat ") else {
                break;
            };
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [e, ml, te] = parts.as_slice() else {
                return Err(format!("bad stat line '{l}'"));
            };
            stats.push(EpochStats {
                epoch: e.parse().map_err(|e| format!("bad stat epoch: {e}"))?,
                mean_loss: ml.parse().map_err(|e| format!("bad mean_loss: {e}"))?,
                train_error: te.parse().map_err(|e| format!("bad train_error: {e}"))?,
            });
            line = it.next();
        }

        if line != Some("network-begin") {
            return Err("expected 'network-begin'".into());
        }
        let mut net_text = String::new();
        loop {
            match it.next() {
                Some("network-end") => break,
                Some(l) => {
                    net_text.push_str(l);
                    net_text.push('\n');
                }
                None => return Err("unterminated network block".into()),
            }
        }
        let network = io::read_text(&net_text).map_err(|e| format!("checkpoint network: {e}"))?;

        if it.next() != Some("velocity-begin") {
            return Err("expected 'velocity-begin'".into());
        }
        let mut velocity = Vec::new();
        loop {
            let Some(l) = it.next() else {
                return Err("unterminated velocity block".into());
            };
            if l == "velocity-end" {
                break;
            }
            let parts: Vec<&str> = l.split_whitespace().collect();
            match parts.as_slice() {
                ["none"] => velocity.push(LayerGrads::None),
                ["conv", k, ch, kh, kw] => {
                    let dims: Vec<usize> = [k, ch, kh, kw]
                        .iter()
                        .map(|s| s.parse().map_err(|e| format!("bad conv dim: {e}")))
                        .collect::<Result<_, _>>()?;
                    let vals = parse_float_line(it.next(), dims.iter().product(), "conv velocity")?;
                    let bias = parse_float_line(
                        it.next().and_then(|l| l.strip_prefix("bias")),
                        dims[0],
                        "conv velocity bias",
                    )?;
                    velocity.push(LayerGrads::Conv2d {
                        kernels: Tensor4::from_vec(dims[0], dims[1], dims[2], dims[3], vals),
                        bias,
                    });
                }
                ["linear", nw, nb] => {
                    let nw: usize = nw.parse().map_err(|e| format!("bad linear dim: {e}"))?;
                    let nb: usize = nb.parse().map_err(|e| format!("bad linear dim: {e}"))?;
                    let weights = parse_float_line(it.next(), nw, "linear velocity")?;
                    let bias = parse_float_line(
                        it.next().and_then(|l| l.strip_prefix("bias")),
                        nb,
                        "linear velocity bias",
                    )?;
                    velocity.push(LayerGrads::Linear { weights, bias });
                }
                _ => return Err(format!("unrecognized velocity line '{l}'")),
            }
        }

        let ckpt = TrainCheckpoint {
            seed,
            next_epoch,
            lr,
            config,
            stats,
            network,
            velocity,
        };
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Structural consistency checks beyond the checksum.
    fn validate(&self) -> Result<(), String> {
        if self.velocity.len() != self.network.layers().len() {
            return Err(format!(
                "velocity has {} entries for {} layers",
                self.velocity.len(),
                self.network.layers().len()
            ));
        }
        for (i, (v, l)) in self.velocity.iter().zip(self.network.layers()).enumerate() {
            let ok = matches!(
                (v, l),
                (LayerGrads::Conv2d { .. }, Layer::Conv2d(_))
                    | (LayerGrads::Linear { .. }, Layer::Linear(_))
                    | (
                        LayerGrads::None,
                        Layer::Pool(_) | Layer::Flatten | Layer::LogSoftMax
                    )
            );
            if !ok {
                return Err(format!("velocity entry {i} does not match layer {i}"));
            }
        }
        if self.next_epoch > self.config.epochs {
            return Err(format!(
                "next-epoch {} exceeds configured epochs {}",
                self.next_epoch, self.config.epochs
            ));
        }
        if self.stats.len() != self.next_epoch {
            return Err(format!(
                "{} stat lines for {} completed epochs",
                self.stats.len(),
                self.next_epoch
            ));
        }
        Ok(())
    }
}

fn parse_float_line(line: Option<&str>, expect: usize, what: &str) -> Result<Vec<f32>, String> {
    let line = line.ok_or_else(|| format!("{what}: missing line"))?;
    let vals: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| format!("{what}: bad float ({e})"))?;
    if vals.len() != expect {
        return Err(format!(
            "{what}: expected {expect} values, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

/// Fisher–Yates driven by the per-epoch stream — no shared RNG state
/// crosses an epoch boundary, which is what makes resume exact.
fn epoch_order(n: usize, seed: u64, epoch: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SplitMix64::new(mix_seed(seed, epoch as u64));
    for i in (1..n).rev() {
        let j = rng.next_below(i + 1);
        order.swap(i, j);
    }
    order
}

/// Runs exactly one epoch of mini-batch SGD on the checkpoint state.
fn run_epoch(st: &mut TrainCheckpoint, inputs: &[Tensor], labels: &[usize]) {
    let epoch = st.next_epoch;
    let n = inputs.len();
    let order = epoch_order(n, st.seed, epoch);
    let mut total_loss = 0.0f64;
    let mut wrong = 0usize;

    for chunk in order.chunks(st.config.batch_size) {
        let results: Vec<(Vec<LayerGrads>, f32, bool)> = chunk
            .par_iter()
            .map(|&i| sample_gradients(&st.network, &inputs[i], labels[i]))
            .collect();

        let mut batch: Vec<LayerGrads> = st
            .network
            .layers()
            .iter()
            .map(LayerGrads::zeros_like)
            .collect();
        for (grads, loss, correct) in &results {
            for (acc, g) in batch.iter_mut().zip(grads) {
                acc.accumulate(g);
            }
            total_loss += *loss as f64;
            if !correct {
                wrong += 1;
            }
        }
        let inv = 1.0 / chunk.len() as f32;
        batch.iter_mut().for_each(|g| g.scale(inv));
        if st.config.momentum > 0.0 {
            update_velocity(&mut st.velocity, &batch, st.config.momentum);
            apply_gradients(&mut st.network, &st.velocity, st.lr, st.config.weight_decay);
        } else {
            apply_gradients(&mut st.network, &batch, st.lr, st.config.weight_decay);
        }
    }

    st.stats.push(EpochStats {
        epoch,
        mean_loss: total_loss / n as f64,
        train_error: wrong as f64 / n as f64,
    });
    st.lr *= st.config.lr_decay;
    st.next_epoch = epoch + 1;
}

fn check_dataset(st: &TrainCheckpoint, inputs: &[Tensor], labels: &[usize]) {
    assert_eq!(inputs.len(), labels.len(), "inputs/labels length mismatch");
    assert!(!inputs.is_empty(), "empty training set");
    assert!(st.config.batch_size > 0, "batch_size must be positive");
    assert!(
        (0.0..1.0).contains(&st.config.momentum),
        "momentum must be in [0, 1)"
    );
}

/// Runs the remaining epochs of `st`, invoking `sink` with the updated
/// checkpoint after **every** epoch (that is the durability boundary:
/// a crash between sink calls loses at most one epoch of work). A
/// sink error aborts training and is returned; the checkpoint the
/// sink last accepted remains the resume point.
pub fn run_checkpointed<S>(
    mut st: TrainCheckpoint,
    inputs: &[Tensor],
    labels: &[usize],
    sink: &mut S,
) -> Result<TrainCheckpoint, String>
where
    S: FnMut(&TrainCheckpoint) -> Result<(), String>,
{
    check_dataset(&st, inputs, labels);
    while !st.is_complete() {
        run_epoch(&mut st, inputs, labels);
        cnn_trace::counter_add("cnn_train_epochs_total", &[], 1);
        sink(&st)?;
    }
    Ok(st)
}

/// Trains `net` from scratch with per-epoch checkpointing; the
/// convenience front end over [`run_checkpointed`]. Returns the final
/// state (trained network, full statistics).
pub fn train_checkpointed<S>(
    net: &Network,
    inputs: &[Tensor],
    labels: &[usize],
    cfg: &TrainConfig,
    seed: u64,
    sink: &mut S,
) -> Result<TrainCheckpoint, String>
where
    S: FnMut(&TrainCheckpoint) -> Result<(), String>,
{
    run_checkpointed(TrainCheckpoint::fresh(net, cfg, seed), inputs, labels, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2dLayer, LinearLayer, PoolLayer};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    /// Deterministic toy network: no RNG so the tests run anywhere.
    fn toy_net() -> Network {
        let vals = |n: usize, salt: u32| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                    ((x % 1024) as f32 / 512.0 - 1.0) * 0.3
                })
                .collect()
        };
        Network::new(
            Shape::new(1, 8, 8),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(4, 1, 3, 3, vals(36, 1)),
                    bias: vals(4, 2),
                    activation: None,
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: vals(36 * 2, 3),
                    bias: vals(2, 4),
                    inputs: 36,
                    outputs: 2,
                    activation: Some(Activation::Tanh),
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    /// Deterministic two-class toy set (bright top vs bottom half).
    fn toy_problem(n: usize) -> (Vec<Tensor>, Vec<usize>) {
        let mut inputs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let img = Tensor::from_fn(Shape::new(1, 8, 8), |_, y, x| {
                let base = if (class == 0) == (y < 4) { 1.0 } else { 0.0 };
                let jitter =
                    (((i * 64 + y * 8 + x) as u32).wrapping_mul(2654435761) % 100) as f32 / 1000.0;
                base + jitter
            });
            inputs.push(img);
            labels.push(class);
        }
        (inputs, labels)
    }

    fn cfg(epochs: usize, momentum: f32) -> TrainConfig {
        TrainConfig {
            learning_rate: 0.1,
            batch_size: 8,
            epochs,
            weight_decay: 1e-4,
            lr_decay: 0.9,
            momentum,
        }
    }

    #[test]
    fn checkpointed_training_learns() {
        let (inputs, labels) = toy_problem(64);
        let done = train_checkpointed(&toy_net(), &inputs, &labels, &cfg(6, 0.0), 42, &mut |_| {
            Ok(())
        })
        .unwrap();
        assert!(done.is_complete());
        assert_eq!(done.stats.len(), 6);
        assert!(
            done.stats.last().unwrap().mean_loss < done.stats[0].mean_loss,
            "loss did not decrease"
        );
        let err = done.network.prediction_error(&inputs, &labels);
        assert!(err < 0.2, "error too high: {err}");
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let (inputs, labels) = toy_problem(32);
        // Momentum on, so velocity buffers are non-trivial.
        let mut snap = None;
        let _ = train_checkpointed(&toy_net(), &inputs, &labels, &cfg(3, 0.8), 7, &mut |c| {
            if c.next_epoch == 2 {
                snap = Some(c.clone());
            }
            Ok(())
        })
        .unwrap();
        let snap = snap.expect("snapshot at epoch 2");
        let back = TrainCheckpoint::decode(&snap.encode()).expect("decodes");
        assert_eq!(snap, back);
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted() {
        let (inputs, labels) = toy_problem(48);
        for momentum in [0.0, 0.9] {
            let cfg = cfg(5, momentum);
            // Uninterrupted run, keeping every epoch snapshot.
            let mut snaps = Vec::new();
            let full = train_checkpointed(&toy_net(), &inputs, &labels, &cfg, 99, &mut |c| {
                snaps.push(c.clone());
                Ok(())
            })
            .unwrap();

            // Resume from every intermediate epoch via the *serialized*
            // checkpoint (what a real restart reads back from disk).
            for snap in &snaps[..snaps.len() - 1] {
                let restored = TrainCheckpoint::decode(&snap.encode()).unwrap();
                let resumed =
                    run_checkpointed(restored, &inputs, &labels, &mut |_| Ok(())).unwrap();
                assert_eq!(
                    resumed.network, full.network,
                    "resume from epoch {} diverged (momentum {momentum})",
                    snap.next_epoch
                );
                assert_eq!(resumed.stats, full.stats);
                assert_eq!(resumed.lr.to_bits(), full.lr.to_bits());
            }
        }
    }

    #[test]
    fn sink_error_aborts_with_state_preserved() {
        let (inputs, labels) = toy_problem(16);
        let mut calls = 0;
        let err = train_checkpointed(&toy_net(), &inputs, &labels, &cfg(5, 0.0), 1, &mut |_| {
            calls += 1;
            if calls == 2 {
                Err("disk full".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(err.contains("disk full"));
        assert_eq!(calls, 2, "training must stop at the failed sink");
    }

    #[test]
    fn corrupted_checkpoint_is_refused() {
        let (inputs, labels) = toy_problem(16);
        let done = train_checkpointed(&toy_net(), &inputs, &labels, &cfg(1, 0.5), 3, &mut |_| {
            Ok(())
        })
        .unwrap();
        let text = done.encode();
        // Flip one digit somewhere in the middle.
        let mid = text.len() / 2;
        let pos = (mid..text.len())
            .find(|&i| text.as_bytes()[i].is_ascii_digit())
            .unwrap();
        let mut corrupt = text.clone().into_bytes();
        corrupt[pos] = if corrupt[pos] == b'9' { b'8' } else { b'9' };
        let corrupt = String::from_utf8(corrupt).unwrap();
        let e = TrainCheckpoint::decode(&corrupt).unwrap_err();
        assert!(e.contains("checksum"), "{e}");
        // Truncation is refused too.
        let e = TrainCheckpoint::decode(&text[..text.len() / 2]).unwrap_err();
        assert!(e.contains("checksum"), "{e}");
    }

    #[test]
    fn epoch_order_is_a_permutation_and_varies_by_epoch() {
        let a = epoch_order(100, 5, 0);
        let b = epoch_order(100, 5, 1);
        assert_ne!(a, b);
        assert_eq!(a, epoch_order(100, 5, 0), "deterministic");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn validate_catches_mismatched_velocity() {
        let net = toy_net();
        let mut ckpt = TrainCheckpoint::fresh(&net, &cfg(2, 0.0), 1);
        ckpt.velocity.pop();
        assert!(ckpt.validate().is_err());
        let mut ckpt = TrainCheckpoint::fresh(&net, &cfg(2, 0.0), 1);
        ckpt.next_epoch = 5;
        assert!(ckpt.validate().is_err());
    }
}
