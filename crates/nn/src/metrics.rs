//! Classification metrics beyond the paper's single "predicted error"
//! number: confusion matrices and per-class accuracy, used by the
//! examples and experiment reports to show *where* a network errs.

use crate::network::Network;
use cnn_tensor::Tensor;
use std::fmt::Write as _;

/// A `classes × classes` confusion matrix: `counts[actual][predicted]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    pub fn from_predictions(predictions: &[usize], labels: &[usize], classes: usize) -> Self {
        assert_eq!(predictions.len(), labels.len(), "length mismatch");
        assert!(classes > 0, "no classes");
        let mut counts = vec![vec![0u64; classes]; classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(l < classes, "label {l} out of range");
            assert!(p < classes, "prediction {p} out of range");
            counts[l][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Runs `net` over a labelled set and builds the matrix.
    pub fn evaluate(net: &Network, images: &[Tensor], labels: &[usize]) -> Self {
        let preds = net.predict_batch(images);
        Self::from_predictions(&preds, labels, net.classes())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of samples with true class `actual` predicted as
    /// `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Overall error (the paper's metric).
    pub fn error(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Recall of one class (diagonal / row sum), `None` for empty rows.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = self.counts[class].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / row as f64)
        }
    }

    /// The off-diagonal cell with the most mass:
    /// `(actual, predicted, count)` — the network's favourite mistake.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for a in 0..self.classes() {
            for p in 0..self.classes() {
                if a != p && self.counts[a][p] > 0 {
                    let better = match best {
                        Some((_, _, c)) => self.counts[a][p] > c,
                        None => true,
                    };
                    if better {
                        best = Some((a, p, self.counts[a][p]));
                    }
                }
            }
        }
        best
    }

    /// Renders an ASCII table (rows = actual, columns = predicted).
    pub fn render(&self) -> String {
        let n = self.classes();
        let mut out = String::new();
        let _ = write!(out, "actual\\pred ");
        for p in 0..n {
            let _ = write!(out, "{p:>6}");
        }
        out.push('\n');
        for a in 0..n {
            let _ = write!(out, "{a:>11} ");
            for p in 0..n {
                let _ = write!(out, "{:>6}", self.counts[a][p]);
            }
            if let Some(r) = self.recall(a) {
                let _ = write!(out, "   ({:.0}% recall)", r * 100.0);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "accuracy: {:.2}%", self.accuracy() * 100.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2, 1], &[0, 1, 2, 1], 3);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.error(), 0.0);
        assert_eq!(m.worst_confusion(), None);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn counts_and_recall() {
        // class 0: 2 right, 1 predicted as 1; class 1: 1 right.
        let m = ConfusionMatrix::from_predictions(&[0, 0, 1, 1], &[0, 0, 0, 1], 2);
        assert_eq!(m.count(0, 0), 2);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.recall(0), Some(2.0 / 3.0));
        assert_eq!(m.recall(1), Some(1.0));
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(m.worst_confusion(), Some((0, 1, 1)));
    }

    #[test]
    fn empty_class_recall_is_none() {
        let m = ConfusionMatrix::from_predictions(&[0], &[0], 3);
        assert_eq!(m.recall(1), None);
        assert_eq!(m.recall(0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_checked() {
        ConfusionMatrix::from_predictions(&[0], &[0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_range_checked() {
        ConfusionMatrix::from_predictions(&[0], &[5], 2);
    }

    #[test]
    fn render_contains_diagonal_and_accuracy() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 1], &[0, 1, 0], 2);
        let text = m.render();
        assert!(text.contains("accuracy: 66.67%"));
        assert!(text.contains("recall"));
    }

    #[test]
    fn evaluate_matches_prediction_error() {
        use cnn_tensor::init::seeded_rng;
        use cnn_tensor::ops::pool::PoolKind;
        use cnn_tensor::Shape;
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 8, 8))
            .conv(2, 3, 3, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(3, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        let imgs: Vec<Tensor> = (0..9)
            .map(|i| Tensor::full(Shape::new(1, 8, 8), i as f32 * 0.1))
            .collect();
        let labels: Vec<usize> = (0..9).map(|i| i % 3).collect();
        let m = ConfusionMatrix::evaluate(&net, &imgs, &labels);
        assert!((m.error() - net.prediction_error(&imgs, &labels)).abs() < 1e-12);
        assert_eq!(m.total(), 9);
    }
}
