//! Fluent network construction mirroring the paper's GUI options:
//! per-convolutional-layer kernel count/size with an integrated
//! max-pooling stage (Fig. 4), per-linear-layer neuron count with an
//! optional hyperbolic tangent, and the LogSoftMax appended at the end.

use crate::layer::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
use crate::network::{Network, NetworkError};
use cnn_tensor::init::{init_kernels, init_vec, Init};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::Shape;
use rand::rngs::StdRng;

/// Builder accumulating layers while tracking the current shape, so
/// each `conv`/`linear` call can size its weights automatically
/// (Xavier-uniform initialization).
pub struct NetworkBuilder {
    input_shape: Shape,
    current: Result<Shape, String>,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts building a network for inputs of `input_shape`.
    pub fn new(input_shape: Shape) -> Self {
        NetworkBuilder {
            input_shape,
            current: Ok(input_shape),
            layers: Vec::new(),
        }
    }

    fn push(mut self, layer: Layer) -> Self {
        if let Ok(shape) = self.current {
            self.current = layer
                .output_shape(shape)
                .map_err(|e| format!("layer {} ({}): {e}", self.layers.len(), layer.kind_name()));
            self.layers.push(layer);
        }
        self
    }

    /// Adds a convolutional layer with `k` kernels of `kh`×`kw`,
    /// Xavier-initialized from `rng`, no activation (the paper's conv
    /// blocks feed pooling directly).
    pub fn conv(self, k: usize, kh: usize, kw: usize, rng: &mut StdRng) -> Self {
        let Ok(shape) = self.current else { return self };
        let fan_in = shape.c * kh * kw;
        let fan_out = k * kh * kw;
        let layer = Layer::Conv2d(Conv2dLayer {
            kernels: init_kernels(rng, k, shape.c, kh, kw, Init::Xavier { fan_in, fan_out }),
            bias: init_vec(rng, k, Init::Zeros),
            activation: None,
        });
        self.push(layer)
    }

    /// Adds a convolutional layer with an explicit activation.
    pub fn conv_activated(
        self,
        k: usize,
        kh: usize,
        kw: usize,
        act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let Ok(shape) = self.current else { return self };
        let fan_in = shape.c * kh * kw;
        let fan_out = k * kh * kw;
        let layer = Layer::Conv2d(Conv2dLayer {
            kernels: init_kernels(rng, k, shape.c, kh, kw, Init::Xavier { fan_in, fan_out }),
            bias: init_vec(rng, k, Init::Zeros),
            activation: Some(act),
        });
        self.push(layer)
    }

    /// Adds a pooling stage with window `kh`×`kw` and stride equal to
    /// the window (the GUI's integrated max-pooling default).
    pub fn pool(self, kind: PoolKind, kh: usize, kw: usize) -> Self {
        self.push(Layer::Pool(PoolLayer {
            kind,
            kh,
            kw,
            step: kh,
        }))
    }

    /// Adds a pooling stage with an explicit stride.
    pub fn pool_strided(self, kind: PoolKind, kh: usize, kw: usize, step: usize) -> Self {
        self.push(Layer::Pool(PoolLayer { kind, kh, kw, step }))
    }

    /// Flattens to a vector (conv→linear boundary).
    pub fn flatten(self) -> Self {
        self.push(Layer::Flatten)
    }

    /// Adds a linear layer with `neurons` outputs and an optional
    /// activation (the GUI's tanh checkbox), Xavier-initialized.
    pub fn linear(self, neurons: usize, act: Option<Activation>, rng: &mut StdRng) -> Self {
        let Ok(shape) = self.current else { return self };
        let inputs = shape.len();
        let layer = Layer::Linear(LinearLayer {
            weights: init_vec(
                rng,
                inputs * neurons,
                Init::Xavier {
                    fan_in: inputs,
                    fan_out: neurons,
                },
            ),
            bias: init_vec(rng, neurons, Init::Zeros),
            inputs,
            outputs: neurons,
            activation: act,
        });
        self.push(layer)
    }

    /// Appends the LogSoftMax tail (the code generator adds this by
    /// default).
    pub fn log_softmax(self) -> Self {
        self.push(Layer::LogSoftMax)
    }

    /// Finalizes into a validated [`Network`].
    pub fn build(self) -> Result<Network, NetworkError> {
        match self.current {
            Ok(_) => Network::new(self.input_shape, self.layers),
            Err(msg) => Err(NetworkError::ShapeMismatch(self.layers.len() - 1, msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::Tensor;

    #[test]
    fn builds_paper_test1_network() {
        let mut rng = seeded_rng(1);
        let net = NetworkBuilder::new(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        assert_eq!(net.output_shape(), Shape::new(1, 1, 10));
        assert_eq!(net.layers().len(), 5);
    }

    #[test]
    fn builds_paper_test3_network() {
        let mut rng = seeded_rng(2);
        let net = NetworkBuilder::new(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(16, 5, 5, &mut rng)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        // second conv: 6x6x6 -> 16x2x2 per the paper
        assert_eq!(net.shape_after(2), Shape::new(16, 2, 2));
        assert_eq!(net.output_shape(), Shape::new(1, 1, 10));
    }

    #[test]
    fn builds_paper_test4_network() {
        let mut rng = seeded_rng(3);
        let net = NetworkBuilder::new(Shape::new(3, 32, 32))
            .conv(12, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(36, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(36, Some(Activation::Tanh), &mut rng)
            .linear(10, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        assert_eq!(net.shape_after(0), Shape::new(12, 28, 28));
        assert_eq!(net.shape_after(1), Shape::new(12, 14, 14));
        assert_eq!(net.shape_after(2), Shape::new(36, 10, 10));
        assert_eq!(net.shape_after(3), Shape::new(36, 5, 5));
        assert_eq!(net.output_shape(), Shape::new(1, 1, 10));
    }

    #[test]
    fn invalid_sequence_surfaces_error() {
        let mut rng = seeded_rng(4);
        let err = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv(2, 3, 3, &mut rng) // -> 2x2x2
            .conv(2, 3, 3, &mut rng) // kernel too big
            .build()
            .unwrap_err();
        match err {
            NetworkError::ShapeMismatch(_, msg) => assert!(msg.contains("does not fit"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_is_sticky_and_later_layers_skipped() {
        let mut rng = seeded_rng(5);
        let err = NetworkBuilder::new(Shape::new(1, 4, 4))
            .conv(1, 8, 8, &mut rng)
            .flatten()
            .linear(10, None, &mut rng)
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::ShapeMismatch(_, _)));
    }

    #[test]
    fn conv_activated_applies_activation() {
        let mut rng = seeded_rng(6);
        let net = NetworkBuilder::new(Shape::new(1, 6, 6))
            .conv_activated(2, 3, 3, Activation::Relu, &mut rng)
            .build()
            .unwrap();
        let out = net.forward(&Tensor::full(Shape::new(1, 6, 6), 1.0));
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pool_strided_overlapping_windows() {
        let mut rng = seeded_rng(7);
        let net = NetworkBuilder::new(Shape::new(1, 8, 8))
            .conv(1, 3, 3, &mut rng) // -> 1x6x6
            .pool_strided(PoolKind::Mean, 3, 3, 1) // -> 1x4x4
            .build()
            .unwrap();
        assert_eq!(net.output_shape(), Shape::new(1, 4, 4));
    }

    #[test]
    fn same_seed_builds_identical_networks() {
        let make = |seed| {
            let mut rng = seeded_rng(seed);
            NetworkBuilder::new(Shape::new(1, 16, 16))
                .conv(6, 5, 5, &mut rng)
                .pool(PoolKind::Max, 2, 2)
                .flatten()
                .linear(10, Some(Activation::Tanh), &mut rng)
                .log_softmax()
                .build()
                .unwrap()
        };
        assert_eq!(make(42), make(42));
        assert_ne!(make(42), make(43));
    }
}
