//! Plain-text weight interchange — the role of the paper's exported
//! Torch weight file: a simple line-oriented format a training script
//! in any language can emit, complementing the JSON serialization.
//!
//! ```text
//! cnn2fpga-weights v1
//! input 1 16 16
//! conv 6 1 5 5 none
//! <150 whitespace-separated floats>
//! bias <6 floats>
//! pool max 2 2 2
//! flatten
//! linear 216 10 tanh
//! <2160 floats>
//! bias <10 floats>
//! logsoftmax
//! ```

use crate::layer::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
use crate::network::Network;
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::{Shape, Tensor4};
use std::fmt::Write as _;

/// Magic first line of the format.
pub const MAGIC: &str = "cnn2fpga-weights v1";

fn act_name(a: Option<Activation>) -> &'static str {
    match a {
        None => "none",
        Some(Activation::Tanh) => "tanh",
        Some(Activation::Relu) => "relu",
        Some(Activation::Sigmoid) => "sigmoid",
    }
}

fn parse_act(s: &str) -> Result<Option<Activation>, String> {
    match s {
        "none" => Ok(None),
        "tanh" => Ok(Some(Activation::Tanh)),
        "relu" => Ok(Some(Activation::Relu)),
        "sigmoid" => Ok(Some(Activation::Sigmoid)),
        other => Err(format!("unknown activation '{other}'")),
    }
}

/// Serializes a network to the text format.
pub fn write_text(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let s = net.input_shape();
    let _ = writeln!(out, "input {} {} {}", s.c, s.h, s.w);
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(c) => {
                let _ = writeln!(
                    out,
                    "conv {} {} {} {} {}",
                    c.kernels.kernels(),
                    c.kernels.channels(),
                    c.kernels.kh(),
                    c.kernels.kw(),
                    act_name(c.activation)
                );
                let vals: Vec<String> = c
                    .kernels
                    .as_slice()
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect();
                let _ = writeln!(out, "{}", vals.join(" "));
                let bias: Vec<String> = c.bias.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "bias {}", bias.join(" "));
            }
            Layer::Pool(p) => {
                let kind = match p.kind {
                    PoolKind::Max => "max",
                    PoolKind::Mean => "mean",
                };
                let _ = writeln!(out, "pool {kind} {} {} {}", p.kh, p.kw, p.step);
            }
            Layer::Flatten => {
                let _ = writeln!(out, "flatten");
            }
            Layer::Linear(l) => {
                let _ = writeln!(
                    out,
                    "linear {} {} {}",
                    l.inputs,
                    l.outputs,
                    act_name(l.activation)
                );
                let vals: Vec<String> = l.weights.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "{}", vals.join(" "));
                let bias: Vec<String> = l.bias.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "bias {}", bias.join(" "));
            }
            Layer::LogSoftMax => {
                let _ = writeln!(out, "logsoftmax");
            }
        }
    }
    out
}

fn parse_floats(line: &str, expect: usize, what: &str) -> Result<Vec<f32>, String> {
    let vals: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| format!("{what}: bad float ({e})"))?;
    if vals.len() != expect {
        return Err(format!(
            "{what}: expected {expect} values, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

/// Parses the text format back into a validated network.
pub fn read_text(text: &str) -> Result<Network, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    if lines.next().map(str::trim) != Some(MAGIC) {
        return Err(format!("missing magic line '{MAGIC}'"));
    }

    let input = lines.next().ok_or("missing input line")?;
    let parts: Vec<&str> = input.split_whitespace().collect();
    let [tag, c, h, w] = parts.as_slice() else {
        return Err(format!("bad input line '{input}'"));
    };
    if *tag != "input" {
        return Err(format!("expected 'input', got '{tag}'"));
    }
    let parse_dim = |s: &str| -> Result<usize, String> {
        let d: usize = s.parse().map_err(|e| format!("bad dimension '{s}': {e}"))?;
        if d == 0 {
            return Err(format!("zero dimension '{s}'"));
        }
        Ok(d)
    };
    let input_shape = Shape::new(parse_dim(c)?, parse_dim(h)?, parse_dim(w)?);

    let mut layers = Vec::new();
    while let Some(line) = lines.next() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["conv", k, ch, kh, kw, act] => {
                let (k, ch, kh, kw) = (
                    parse_dim(k)?,
                    parse_dim(ch)?,
                    parse_dim(kh)?,
                    parse_dim(kw)?,
                );
                let weights_line = lines.next().ok_or("conv weights missing")?;
                let weights = parse_floats(weights_line, k * ch * kh * kw, "conv weights")?;
                let bias_line = lines.next().ok_or("conv bias missing")?;
                let bias_line = bias_line
                    .strip_prefix("bias")
                    .ok_or("expected 'bias' line after conv weights")?;
                let bias = parse_floats(bias_line, k, "conv bias")?;
                layers.push(Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(k, ch, kh, kw, weights),
                    bias,
                    activation: parse_act(act)?,
                }));
            }
            ["pool", kind, kh, kw, step] => {
                let kind = match *kind {
                    "max" => PoolKind::Max,
                    "mean" => PoolKind::Mean,
                    other => return Err(format!("unknown pool kind '{other}'")),
                };
                layers.push(Layer::Pool(PoolLayer {
                    kind,
                    kh: parse_dim(kh)?,
                    kw: parse_dim(kw)?,
                    step: parse_dim(step)?,
                }));
            }
            ["flatten"] => layers.push(Layer::Flatten),
            ["linear", ni, no, act] => {
                let (ni, no) = (parse_dim(ni)?, parse_dim(no)?);
                let weights_line = lines.next().ok_or("linear weights missing")?;
                let weights = parse_floats(weights_line, ni * no, "linear weights")?;
                let bias_line = lines.next().ok_or("linear bias missing")?;
                let bias_line = bias_line
                    .strip_prefix("bias")
                    .ok_or("expected 'bias' line after linear weights")?;
                let bias = parse_floats(bias_line, no, "linear bias")?;
                layers.push(Layer::Linear(LinearLayer {
                    weights,
                    bias,
                    inputs: ni,
                    outputs: no,
                    activation: parse_act(act)?,
                }));
            }
            ["logsoftmax"] => layers.push(Layer::LogSoftMax),
            other => return Err(format!("unrecognized line '{}'", other.join(" "))),
        }
    }

    Network::new(input_shape, layers).map_err(|e| format!("invalid network: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::Tensor;

    fn net() -> Network {
        let mut rng = seeded_rng(8);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_network_exactly() {
        let n = net();
        let text = write_text(&n);
        let back = read_text(&text).expect("parses");
        assert_eq!(n, back);
        // And behaviour, of course.
        let img = Tensor::full(Shape::new(1, 16, 16), 0.3);
        assert_eq!(n.forward(&img), back.forward(&img));
    }

    #[test]
    fn format_is_line_oriented_and_tagged() {
        let text = write_text(&net());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(MAGIC));
        assert_eq!(lines.next(), Some("input 1 16 16"));
        assert!(text.contains("conv 6 1 5 5 none"));
        assert!(text.contains("pool max 2 2 2"));
        assert!(text.contains("flatten"));
        assert!(text.contains("linear 216 10 tanh"));
        assert!(text.contains("logsoftmax"));
    }

    #[test]
    fn missing_magic_rejected() {
        let err = read_text("input 1 2 2\n").unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn wrong_weight_count_rejected() {
        let text = format!("{MAGIC}\ninput 1 4 4\nconv 1 1 2 2 none\n1 2 3\nbias 0\n");
        let err = read_text(&text).unwrap_err();
        assert!(err.contains("expected 4 values"), "{err}");
    }

    #[test]
    fn bad_activation_rejected() {
        let text = format!("{MAGIC}\ninput 1 4 4\nconv 1 1 2 2 swish\n1 2 3 4\nbias 0\n");
        let err = read_text(&text).unwrap_err();
        assert!(err.contains("unknown activation"), "{err}");
    }

    #[test]
    fn garbage_line_rejected() {
        let text = format!("{MAGIC}\ninput 1 4 4\nwat 1 2\n");
        let err = read_text(&text).unwrap_err();
        assert!(err.contains("unrecognized"), "{err}");
    }

    #[test]
    fn structural_invalidity_rejected() {
        // conv kernel larger than the input: the Network validator fires.
        let text = format!(
            "{MAGIC}\ninput 1 2 2\nconv 1 1 3 3 none\n{}\nbias 0\n",
            ["0.5"; 9].join(" ")
        );
        let err = read_text(&text).unwrap_err();
        assert!(err.contains("invalid network"), "{err}");
    }

    #[test]
    fn mean_pool_and_all_activations_roundtrip() {
        let mut rng = seeded_rng(3);
        let n = Network::builder(Shape::new(2, 10, 10))
            .conv_activated(3, 3, 3, Activation::Relu, &mut rng)
            .pool(PoolKind::Mean, 2, 2)
            .flatten()
            .linear(5, Some(Activation::Sigmoid), &mut rng)
            .linear(2, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        let back = read_text(&write_text(&n)).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        // The `{}` f32 formatting is shortest-round-trip; parsing it
        // back must give the identical bits.
        let n = net();
        let back = read_text(&write_text(&n)).unwrap();
        if let (Layer::Conv2d(a), Layer::Conv2d(b)) = (&n.layers()[0], &back.layers()[0]) {
            for (x, y) in a.kernels.as_slice().iter().zip(b.kernels.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        } else {
            panic!("layer 0 should be conv");
        }
    }
}
