//! Plain-text weight interchange — the role of the paper's exported
//! Torch weight file: a simple line-oriented format a training script
//! in any language can emit, complementing the JSON serialization.
//!
//! ```text
//! cnn2fpga-weights v2
//! input 1 16 16
//! conv 6 1 5 5 none
//! <150 whitespace-separated floats>
//! bias <6 floats>
//! pool max 2 2 2
//! flatten
//! linear 216 10 tanh
//! <2160 floats>
//! bias <10 floats>
//! logsoftmax
//! checksum <16 hex digits>
//! ```
//!
//! Version 2 appends a trailing `checksum` line: FNV-1a/64 over every
//! preceding byte of the file. A corrupted float that still *parses*
//! (a flipped digit, a lost minus sign) is invisible to the v1
//! grammar but fails the v2 checksum. Version 1 files (no checksum
//! line) are still read; [`read_text_versioned`] reports which
//! version it saw so callers can warn.

use crate::layer::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
use crate::network::Network;
use cnn_store::hash::{hex64, parse_hex64, Fnv64};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::{Shape, Tensor4};
use std::fmt;
use std::fmt::Write as _;

/// Magic first line of the original (checksum-less) format.
pub const MAGIC: &str = "cnn2fpga-weights v1";

/// Magic first line of the current format.
pub const MAGIC_V2: &str = "cnn2fpga-weights v2";

/// Which revision of the text format a file used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightFormatVersion {
    /// No trailing checksum; silent corruption of a parseable float
    /// goes undetected.
    V1,
    /// Trailing FNV-1a/64 `checksum` line over the whole body.
    V2,
}

impl fmt::Display for WeightFormatVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WeightFormatVersion::V1 => "v1",
            WeightFormatVersion::V2 => "v2",
        })
    }
}

/// What went wrong while reading a weight file.
#[derive(Clone, Debug, PartialEq)]
pub enum WeightIoErrorKind {
    /// The first line is not a known magic.
    MissingMagic,
    /// A structural line is missing (EOF where one was required).
    MissingLine(&'static str),
    /// The `input c h w` line is malformed.
    BadInputLine(String),
    /// A dimension failed to parse or was zero.
    BadDimension(String),
    /// A float failed to parse.
    BadFloat {
        /// Which block the float belongs to.
        what: &'static str,
        /// Parser detail.
        detail: String,
    },
    /// A value block had the wrong number of floats.
    WrongCount {
        /// Which block.
        what: &'static str,
        /// How many the header promised.
        expected: usize,
        /// How many the line held.
        got: usize,
    },
    /// An activation name the format does not know.
    UnknownActivation(String),
    /// A pool kind the format does not know.
    UnknownPoolKind(String),
    /// A `bias` line was expected and not found.
    ExpectedBias(&'static str),
    /// A line matching no production of the grammar.
    UnrecognizedLine(String),
    /// The v2 `checksum` line is malformed or missing.
    BadChecksumLine(String),
    /// The v2 checksum does not match the file body.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// The layers parsed but do not form a valid network.
    InvalidNetwork(String),
}

impl fmt::Display for WeightIoErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use WeightIoErrorKind::*;
        match self {
            MissingMagic => write!(f, "missing magic line '{MAGIC_V2}' (or '{MAGIC}')"),
            MissingLine(what) => write!(f, "{what} missing"),
            BadInputLine(l) => write!(f, "bad input line '{l}'"),
            BadDimension(d) => write!(f, "bad dimension '{d}'"),
            BadFloat { what, detail } => write!(f, "{what}: bad float ({detail})"),
            WrongCount {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} values, got {got}"),
            UnknownActivation(a) => write!(f, "unknown activation '{a}'"),
            UnknownPoolKind(k) => write!(f, "unknown pool kind '{k}'"),
            ExpectedBias(after) => write!(f, "expected 'bias' line after {after} weights"),
            UnrecognizedLine(l) => write!(f, "unrecognized line '{l}'"),
            BadChecksumLine(l) => write!(f, "bad checksum line '{l}'"),
            ChecksumMismatch { stored, computed } => write!(
                f,
                "weight file checksum mismatch: stored {}, computed {} (file corrupted?)",
                hex64(*stored),
                hex64(*computed)
            ),
            InvalidNetwork(e) => write!(f, "invalid network: {e}"),
        }
    }
}

/// A weight-file read failure, located at a 1-based source line
/// (`line` 0 means the failure concerns the file as a whole).
#[derive(Clone, Debug, PartialEq)]
pub struct WeightIoError {
    /// 1-based line number in the input text; 0 for whole-file errors.
    pub line: usize,
    /// What went wrong.
    pub kind: WeightIoErrorKind,
}

impl fmt::Display for WeightIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.kind)
        } else {
            self.kind.fmt(f)
        }
    }
}

impl std::error::Error for WeightIoError {}

fn err(line: usize, kind: WeightIoErrorKind) -> WeightIoError {
    WeightIoError { line, kind }
}

fn act_name(a: Option<Activation>) -> &'static str {
    match a {
        None => "none",
        Some(Activation::Tanh) => "tanh",
        Some(Activation::Relu) => "relu",
        Some(Activation::Sigmoid) => "sigmoid",
    }
}

fn parse_act(s: &str, line: usize) -> Result<Option<Activation>, WeightIoError> {
    match s {
        "none" => Ok(None),
        "tanh" => Ok(Some(Activation::Tanh)),
        "relu" => Ok(Some(Activation::Relu)),
        "sigmoid" => Ok(Some(Activation::Sigmoid)),
        other => Err(err(
            line,
            WeightIoErrorKind::UnknownActivation(other.into()),
        )),
    }
}

/// Serializes a network to the current (v2, checksummed) text format.
pub fn write_text(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC_V2}");
    write_body(&mut out, net);
    let sum = Fnv64::new().update(out.as_bytes()).finish();
    let _ = writeln!(out, "checksum {}", hex64(sum));
    out
}

/// Serializes a network to the legacy v1 format (no checksum line) —
/// kept for interchange with older tooling and for tests.
pub fn write_text_v1(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    write_body(&mut out, net);
    out
}

fn write_body(out: &mut String, net: &Network) {
    let s = net.input_shape();
    let _ = writeln!(out, "input {} {} {}", s.c, s.h, s.w);
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(c) => {
                let _ = writeln!(
                    out,
                    "conv {} {} {} {} {}",
                    c.kernels.kernels(),
                    c.kernels.channels(),
                    c.kernels.kh(),
                    c.kernels.kw(),
                    act_name(c.activation)
                );
                let vals: Vec<String> = c
                    .kernels
                    .as_slice()
                    .iter()
                    .map(|v| format!("{v}"))
                    .collect();
                let _ = writeln!(out, "{}", vals.join(" "));
                let bias: Vec<String> = c.bias.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "bias {}", bias.join(" "));
            }
            Layer::Pool(p) => {
                let kind = match p.kind {
                    PoolKind::Max => "max",
                    PoolKind::Mean => "mean",
                };
                let _ = writeln!(out, "pool {kind} {} {} {}", p.kh, p.kw, p.step);
            }
            Layer::Flatten => {
                let _ = writeln!(out, "flatten");
            }
            Layer::Linear(l) => {
                let _ = writeln!(
                    out,
                    "linear {} {} {}",
                    l.inputs,
                    l.outputs,
                    act_name(l.activation)
                );
                let vals: Vec<String> = l.weights.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "{}", vals.join(" "));
                let bias: Vec<String> = l.bias.iter().map(|v| format!("{v}")).collect();
                let _ = writeln!(out, "bias {}", bias.join(" "));
            }
            Layer::LogSoftMax => {
                let _ = writeln!(out, "logsoftmax");
            }
        }
    }
}

fn parse_floats(
    line_no: usize,
    line: &str,
    expect: usize,
    what: &'static str,
) -> Result<Vec<f32>, WeightIoError> {
    let vals: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| {
        err(
            line_no,
            WeightIoErrorKind::BadFloat {
                what,
                detail: e.to_string(),
            },
        )
    })?;
    if vals.len() != expect {
        return Err(err(
            line_no,
            WeightIoErrorKind::WrongCount {
                what,
                expected: expect,
                got: vals.len(),
            },
        ));
    }
    Ok(vals)
}

fn parse_dim(s: &str, line: usize) -> Result<usize, WeightIoError> {
    let d: usize = s
        .parse()
        .map_err(|_| err(line, WeightIoErrorKind::BadDimension(s.into())))?;
    if d == 0 {
        return Err(err(line, WeightIoErrorKind::BadDimension(s.into())));
    }
    Ok(d)
}

/// Parses the text format back into a validated network, discarding
/// the version. Use [`read_text_versioned`] to learn (and warn about)
/// the file's revision.
pub fn read_text(text: &str) -> Result<Network, WeightIoError> {
    read_text_versioned(text).map(|(net, _)| net)
}

/// Parses the text format (v1 or v2) back into a validated network,
/// reporting which revision the file used. For v2, the trailing
/// checksum is verified over every byte preceding its line before any
/// grammar parsing happens.
pub fn read_text_versioned(text: &str) -> Result<(Network, WeightFormatVersion), WeightIoError> {
    // 1-based line numbers over the raw text.
    let all: Vec<(usize, &str)> = text.lines().enumerate().map(|(i, l)| (i + 1, l)).collect();
    let first_nonempty = all.iter().find(|(_, l)| !l.trim().is_empty());
    let version = match first_nonempty.map(|(_, l)| l.trim()) {
        Some(m) if m == MAGIC => WeightFormatVersion::V1,
        Some(m) if m == MAGIC_V2 => WeightFormatVersion::V2,
        _ => {
            let line = first_nonempty.map_or(0, |(n, _)| *n);
            return Err(err(line, WeightIoErrorKind::MissingMagic));
        }
    };

    let body: &[(usize, &str)] = if version == WeightFormatVersion::V2 {
        // The checksum line must be the last non-empty line; it covers
        // every line before it (each rehashed with its '\n').
        let (idx, (line_no, check_line)) = all
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (_, l))| !l.trim().is_empty())
            .ok_or_else(|| err(0, WeightIoErrorKind::MissingLine("checksum line")))?;
        let stored = check_line
            .trim()
            .strip_prefix("checksum ")
            .and_then(parse_hex64)
            .ok_or_else(|| {
                err(
                    *line_no,
                    WeightIoErrorKind::BadChecksumLine(check_line.trim().into()),
                )
            })?;
        let mut h = Fnv64::new();
        for (_, l) in &all[..idx] {
            h.update(l.as_bytes()).update(b"\n");
        }
        let computed = h.finish();
        if stored != computed {
            return Err(err(
                *line_no,
                WeightIoErrorKind::ChecksumMismatch { stored, computed },
            ));
        }
        &all[..idx]
    } else {
        &all[..]
    };

    let mut lines = body
        .iter()
        .filter(|(_, l)| !l.trim().is_empty())
        .skip(1) // the magic line
        .peekable();
    let mut last_line = first_nonempty.map_or(0, |(n, _)| *n);
    let mut next_line = |what: &'static str| -> Result<(usize, &str), WeightIoError> {
        match lines.next() {
            Some((n, l)) => {
                last_line = *n;
                Ok((*n, *l))
            }
            None => Err(err(last_line, WeightIoErrorKind::MissingLine(what))),
        }
    };

    let (input_no, input) = next_line("input line")?;
    let parts: Vec<&str> = input.split_whitespace().collect();
    let [tag, c, h, w] = parts.as_slice() else {
        return Err(err(input_no, WeightIoErrorKind::BadInputLine(input.into())));
    };
    if *tag != "input" {
        return Err(err(input_no, WeightIoErrorKind::BadInputLine(input.into())));
    }
    let input_shape = Shape::new(
        parse_dim(c, input_no)?,
        parse_dim(h, input_no)?,
        parse_dim(w, input_no)?,
    );

    let mut layers = Vec::new();
    // An Err from next_line here is a clean EOF: the layer list ends
    // where the input does.
    while let Ok((line_no, line)) = next_line("layer line") {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["conv", k, ch, kh, kw, act] => {
                let (k, ch, kh, kw) = (
                    parse_dim(k, line_no)?,
                    parse_dim(ch, line_no)?,
                    parse_dim(kh, line_no)?,
                    parse_dim(kw, line_no)?,
                );
                let (wno, weights_line) = next_line("conv weights")?;
                let weights = parse_floats(wno, weights_line, k * ch * kh * kw, "conv weights")?;
                let (bno, bias_line) = next_line("conv bias")?;
                let bias_line = bias_line
                    .trim()
                    .strip_prefix("bias")
                    .ok_or_else(|| err(bno, WeightIoErrorKind::ExpectedBias("conv")))?;
                let bias = parse_floats(bno, bias_line, k, "conv bias")?;
                layers.push(Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(k, ch, kh, kw, weights),
                    bias,
                    activation: parse_act(act, line_no)?,
                }));
            }
            ["pool", kind, kh, kw, step] => {
                let kind = match *kind {
                    "max" => PoolKind::Max,
                    "mean" => PoolKind::Mean,
                    other => {
                        return Err(err(
                            line_no,
                            WeightIoErrorKind::UnknownPoolKind(other.into()),
                        ))
                    }
                };
                layers.push(Layer::Pool(PoolLayer {
                    kind,
                    kh: parse_dim(kh, line_no)?,
                    kw: parse_dim(kw, line_no)?,
                    step: parse_dim(step, line_no)?,
                }));
            }
            ["flatten"] => layers.push(Layer::Flatten),
            ["linear", ni, no, act] => {
                let (ni, no) = (parse_dim(ni, line_no)?, parse_dim(no, line_no)?);
                let (wno, weights_line) = next_line("linear weights")?;
                let weights = parse_floats(wno, weights_line, ni * no, "linear weights")?;
                let (bno, bias_line) = next_line("linear bias")?;
                let bias_line = bias_line
                    .trim()
                    .strip_prefix("bias")
                    .ok_or_else(|| err(bno, WeightIoErrorKind::ExpectedBias("linear")))?;
                let bias = parse_floats(bno, bias_line, no, "linear bias")?;
                layers.push(Layer::Linear(LinearLayer {
                    weights,
                    bias,
                    inputs: ni,
                    outputs: no,
                    activation: parse_act(act, line_no)?,
                }));
            }
            ["logsoftmax"] => layers.push(Layer::LogSoftMax),
            _ => {
                return Err(err(
                    line_no,
                    WeightIoErrorKind::UnrecognizedLine(line.trim().into()),
                ))
            }
        }
    }

    let net = Network::new(input_shape, layers)
        .map_err(|e| err(0, WeightIoErrorKind::InvalidNetwork(e.to_string())))?;
    Ok((net, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::Tensor;

    /// Deterministic pseudo-weights (no RNG: these tests must run
    /// anywhere, and the values only need to be varied, not random).
    fn dummy_vals(n: usize, salt: u32) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 2048) as f32 / 1024.0 - 1.0
            })
            .collect()
    }

    fn net() -> Network {
        Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(6, 1, 5, 5, dummy_vals(150, 1)),
                    bias: dummy_vals(6, 2),
                    activation: None,
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: dummy_vals(2160, 3),
                    bias: dummy_vals(10, 4),
                    inputs: 216,
                    outputs: 10,
                    activation: Some(Activation::Tanh),
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_network_exactly() {
        let n = net();
        let text = write_text(&n);
        let (back, version) = read_text_versioned(&text).expect("parses");
        assert_eq!(n, back);
        assert_eq!(version, WeightFormatVersion::V2);
        // And behaviour, of course.
        let img = Tensor::full(Shape::new(1, 16, 16), 0.3);
        assert_eq!(n.forward(&img), back.forward(&img));
    }

    #[test]
    fn v1_files_still_read() {
        let n = net();
        let text = write_text_v1(&n);
        assert!(text.starts_with(MAGIC));
        assert!(!text.contains("checksum"));
        let (back, version) = read_text_versioned(&text).expect("v1 parses");
        assert_eq!(n, back);
        assert_eq!(version, WeightFormatVersion::V1);
    }

    #[test]
    fn format_is_line_oriented_and_tagged() {
        let text = write_text(&net());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(MAGIC_V2));
        assert_eq!(lines.next(), Some("input 1 16 16"));
        assert!(text.contains("conv 6 1 5 5 none"));
        assert!(text.contains("pool max 2 2 2"));
        assert!(text.contains("flatten"));
        assert!(text.contains("linear 216 10 tanh"));
        assert!(text.contains("logsoftmax"));
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("checksum "), "{last}");
    }

    #[test]
    fn missing_magic_rejected() {
        let e = read_text("input 1 2 2\n").unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn wrong_weight_count_rejected_with_line_number() {
        let text = format!("{MAGIC}\ninput 1 4 4\nconv 1 1 2 2 none\n1 2 3\nbias 0\n");
        let e = read_text(&text).unwrap_err();
        assert!(e.to_string().contains("expected 4 values"), "{e}");
        assert_eq!(e.line, 4, "{e}");
    }

    #[test]
    fn bad_activation_rejected() {
        let text = format!("{MAGIC}\ninput 1 4 4\nconv 1 1 2 2 swish\n1 2 3 4\nbias 0\n");
        let e = read_text(&text).unwrap_err();
        assert!(e.to_string().contains("unknown activation"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn garbage_line_rejected() {
        let text = format!("{MAGIC}\ninput 1 4 4\nwat 1 2\n");
        let e = read_text(&text).unwrap_err();
        assert!(e.to_string().contains("unrecognized"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn structural_invalidity_rejected() {
        // conv kernel larger than the input: the Network validator fires.
        let text = format!(
            "{MAGIC}\ninput 1 2 2\nconv 1 1 3 3 none\n{}\nbias 0\n",
            ["0.5"; 9].join(" ")
        );
        let e = read_text(&text).unwrap_err();
        assert!(e.to_string().contains("invalid network"), "{e}");
    }

    #[test]
    fn mean_pool_and_all_activations_roundtrip() {
        let n = Network::new(
            Shape::new(2, 10, 10),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(3, 2, 3, 3, dummy_vals(54, 5)),
                    bias: dummy_vals(3, 6),
                    activation: Some(Activation::Relu),
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Mean,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: dummy_vals(48 * 5, 7),
                    bias: dummy_vals(5, 8),
                    inputs: 48,
                    outputs: 5,
                    activation: Some(Activation::Sigmoid),
                }),
                Layer::Linear(LinearLayer {
                    weights: dummy_vals(10, 9),
                    bias: dummy_vals(2, 10),
                    inputs: 5,
                    outputs: 2,
                    activation: None,
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap();
        let back = read_text(&write_text(&n)).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        // The `{}` f32 formatting is shortest-round-trip; parsing it
        // back must give the identical bits.
        let n = net();
        let back = read_text(&write_text(&n)).unwrap();
        if let (Layer::Conv2d(a), Layer::Conv2d(b)) = (&n.layers()[0], &back.layers()[0]) {
            for (x, y) in a.kernels.as_slice().iter().zip(b.kernels.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        } else {
            panic!("layer 0 should be conv");
        }
    }

    #[test]
    fn corrupted_float_is_caught_by_the_v2_checksum() {
        // Regression: flip one digit of one weight. The float still
        // parses and the counts still match, so the v1 grammar accepts
        // the corrupted file silently; v2's checksum must refuse it.
        let text = write_text(&net());
        let pos = text
            .char_indices()
            .find(|&(i, ch)| {
                ch.is_ascii_digit() && i > text.find('\n').unwrap() + 1 && {
                    // Stay inside a float line (not a header count).
                    let line_start = text[..i].rfind('\n').unwrap() + 1;
                    !text[line_start..].starts_with("input")
                        && !text[line_start..].starts_with("conv")
                        && !text[line_start..].starts_with("checksum")
                }
            })
            .map(|(i, _)| i)
            .expect("a digit inside a weight line");
        let mut corrupted = text.clone().into_bytes();
        corrupted[pos] = if corrupted[pos] == b'9' { b'8' } else { b'9' };
        let corrupted = String::from_utf8(corrupted).unwrap();

        let e = read_text(&corrupted).unwrap_err();
        assert!(
            matches!(e.kind, WeightIoErrorKind::ChecksumMismatch { .. }),
            "expected checksum mismatch, got: {e}"
        );

        // The same corruption in a v1 file parses fine — that is the
        // gap v2 closes.
        let v1 = write_text_v1(&net());
        let mut v1_corrupt = v1.into_bytes();
        v1_corrupt[pos] = if v1_corrupt[pos] == b'9' { b'8' } else { b'9' };
        let v1_corrupt = String::from_utf8(v1_corrupt).unwrap();
        if let Ok(bad) = read_text(&v1_corrupt) {
            assert_ne!(bad, net(), "corruption silently accepted by v1");
        }
    }

    #[test]
    fn truncated_v2_file_is_rejected() {
        let text = write_text(&net());
        // Drop the checksum line entirely: the last non-empty line is
        // then a grammar line, not a checksum.
        let without = text.rsplit_once("checksum").unwrap().0;
        let e = read_text(without).unwrap_err();
        assert!(
            matches!(
                e.kind,
                WeightIoErrorKind::BadChecksumLine(_) | WeightIoErrorKind::ChecksumMismatch { .. }
            ),
            "{e}"
        );
    }

    #[test]
    fn error_display_carries_line_numbers() {
        let e = WeightIoError {
            line: 7,
            kind: WeightIoErrorKind::UnknownActivation("swish".into()),
        };
        assert_eq!(e.to_string(), "line 7: unknown activation 'swish'");
        let whole = WeightIoError {
            line: 0,
            kind: WeightIoErrorKind::InvalidNetwork("empty".into()),
        };
        assert_eq!(whole.to_string(), "invalid network: empty");
    }
}
