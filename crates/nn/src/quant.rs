//! Weight quantization — the accuracy side of the fixed-point
//! ablation. The paper chose 32-bit floats because lower precision
//! "reduces the prediction error \[gap\]"; this module quantizes a
//! trained network's parameters onto a signed `Qm.n` grid so the
//! error cost of that choice can be measured instead of assumed.

use crate::layer::Layer;
use crate::network::Network;
use cnn_tensor::ops::quantize::{dequantize_code, quantize_to_code};

/// Quantizes a value onto the signed fixed-point grid with
/// `frac_bits` fractional bits and `total_bits` total width
/// (round-to-nearest, saturating). A thin wrapper over the shared
/// [`quantize_to_code`]/[`dequantize_code`] primitives that also back
/// the true-int8 path, so both quantizers saturate and round
/// identically by construction: codes clamp to
/// `[-2^(total-1), 2^(total-1)-1]`, i.e. values to
/// `±2^(total-frac-1)` (asymmetric by one grid step on the positive
/// side, exactly like two's-complement hardware).
pub fn quantize_value(v: f32, total_bits: u32, frac_bits: u32) -> f32 {
    assert!(total_bits > frac_bits, "no integer bits left");
    assert!(total_bits <= 32, "width beyond 32 bits");
    let inv_scale = (1u64 << frac_bits) as f32;
    let max_code = (1i64 << (total_bits - 1)) - 1;
    let min_code = -(1i64 << (total_bits - 1));
    dequantize_code(
        quantize_to_code(v, inv_scale, min_code, max_code),
        inv_scale,
    )
}

/// Returns a copy of the network with every trainable parameter
/// quantized to `Qm.n` (activations stay f32 — weight-only
/// quantization, the cheapest hardware win).
pub fn quantize_network(net: &Network, total_bits: u32, frac_bits: u32) -> Network {
    let layers: Vec<Layer> = net
        .layers()
        .iter()
        .map(|layer| match layer {
            Layer::Conv2d(c) => {
                let mut c = c.clone();
                for w in c.kernels.as_mut_slice() {
                    *w = quantize_value(*w, total_bits, frac_bits);
                }
                for b in &mut c.bias {
                    *b = quantize_value(*b, total_bits, frac_bits);
                }
                Layer::Conv2d(c)
            }
            Layer::Linear(l) => {
                let mut l = l.clone();
                for w in &mut l.weights {
                    *w = quantize_value(*w, total_bits, frac_bits);
                }
                for b in &mut l.bias {
                    *b = quantize_value(*b, total_bits, frac_bits);
                }
                Layer::Linear(l)
            }
            other => other.clone(),
        })
        .collect();
    Network::new(net.input_shape(), layers).expect("quantization preserves shapes")
}

/// Largest absolute quantization error over all parameters.
pub fn max_quantization_error(original: &Network, quantized: &Network) -> f32 {
    let mut worst = 0.0f32;
    for (a, b) in original.layers().iter().zip(quantized.layers()) {
        match (a, b) {
            (Layer::Conv2d(x), Layer::Conv2d(y)) => {
                for (p, q) in x.kernels.as_slice().iter().zip(y.kernels.as_slice()) {
                    worst = worst.max((p - q).abs());
                }
                for (p, q) in x.bias.iter().zip(&y.bias) {
                    worst = worst.max((p - q).abs());
                }
            }
            (Layer::Linear(x), Layer::Linear(y)) => {
                for (p, q) in x.weights.iter().zip(&y.weights) {
                    worst = worst.max((p - q).abs());
                }
                for (p, q) in x.bias.iter().zip(&y.bias) {
                    worst = worst.max((p - q).abs());
                }
            }
            _ => {}
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::{Shape, Tensor};

    fn net() -> Network {
        let mut rng = seeded_rng(4);
        Network::builder(Shape::new(1, 8, 8))
            .conv(3, 3, 3, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(5, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn quantize_value_grid() {
        // Q8.8: grid step 1/256.
        assert_eq!(quantize_value(0.0, 16, 8), 0.0);
        assert_eq!(quantize_value(1.0, 16, 8), 1.0);
        let q = quantize_value(0.1234, 16, 8);
        assert!((q * 256.0).fract().abs() < 1e-5, "{q} not on the grid");
        assert!((q - 0.1234).abs() <= 0.5 / 256.0 + 1e-6);
    }

    #[test]
    fn quantize_value_saturates() {
        // Q4.4 (8-bit): codes in [-128, 127], scale 16 → max 7.9375.
        assert_eq!(quantize_value(100.0, 8, 4), 127.0 / 16.0);
        assert_eq!(quantize_value(-100.0, 8, 4), -8.0);
    }

    #[test]
    #[should_panic(expected = "no integer bits")]
    fn zero_integer_bits_rejected() {
        quantize_value(1.0, 8, 8);
    }

    #[test]
    fn saturation_boundary_is_exact() {
        // The representable range of a Qm.n grid is pinned at the
        // two's-complement boundary ±2^(total−frac−1): the negative
        // bound is hit exactly, the positive bound stops one grid
        // step short.
        for &(total, frac) in &[(8u32, 4u32), (16, 8), (12, 10), (16, 15)] {
            let bound = (1u64 << (total - frac - 1)) as f32; // 2^(m)
            let step = 1.0 / (1u64 << frac) as f32;
            let hi = bound - step;
            // Exactly on the boundary: positive saturates to hi,
            // negative is representable.
            assert_eq!(quantize_value(bound, total, frac), hi, "Q{total}.{frac}");
            assert_eq!(quantize_value(-bound, total, frac), -bound);
            // Just inside: round-trips exactly.
            assert_eq!(quantize_value(hi, total, frac), hi);
            assert_eq!(quantize_value(-bound + step, total, frac), -bound + step);
            // Far beyond: still clamps to the same codes.
            assert_eq!(quantize_value(bound * 64.0, total, frac), hi);
            assert_eq!(quantize_value(-bound * 64.0, total, frac), -bound);
        }
    }

    #[test]
    fn rounding_is_half_away_from_zero_on_the_grid() {
        // Midpoints round away from zero, matching the int8 engine's
        // requantize epilogue (both use f32::round / f64::round).
        let step = 1.0 / 16.0; // Q4.4
        assert_eq!(quantize_value(1.5 * step, 8, 4), 2.0 * step);
        assert_eq!(quantize_value(-1.5 * step, 8, 4), -2.0 * step);
        assert_eq!(quantize_value(2.5 * step, 8, 4), 3.0 * step);
    }

    #[test]
    fn network_quantization_bounds_error() {
        let n = net();
        let q16 = quantize_network(&n, 16, 8);
        assert!(max_quantization_error(&n, &q16) <= 0.5 / 256.0 + 1e-6);
        let q8 = quantize_network(&n, 8, 4);
        assert!(max_quantization_error(&n, &q8) <= 0.5 / 16.0 + 1e-6);
        // Coarser grid, larger error.
        assert!(max_quantization_error(&n, &q8) >= max_quantization_error(&n, &q16));
    }

    #[test]
    fn quantized_network_still_runs() {
        let n = net();
        let q = quantize_network(&n, 16, 8);
        let img = Tensor::full(Shape::new(1, 8, 8), 0.5);
        let a = n.forward(&img);
        let b = q.forward(&img);
        assert_eq!(a.len(), b.len());
        // Q8.8 weight noise should barely move the outputs here.
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 0.2, "{x} vs {y}");
        }
    }

    #[test]
    fn quantization_is_idempotent() {
        let n = net();
        let q1 = quantize_network(&n, 16, 8);
        let q2 = quantize_network(&q1, 16, 8);
        assert_eq!(q1, q2);
    }
}
