//! Human-readable network summaries — the textual equivalent of the
//! paper's Fig. 1 structure diagram.

use crate::layer::Layer;
use crate::network::Network;
use std::fmt::Write as _;

/// One row of the structure table.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerSummary {
    /// Layer index.
    pub index: usize,
    /// Layer kind tag ("conv2d", "max_pool", ...).
    pub kind: &'static str,
    /// Configuration string (kernel counts/sizes, neuron counts).
    pub config: String,
    /// Output shape rendered as `CxHxW`.
    pub output_shape: String,
    /// Trainable parameter count.
    pub params: usize,
}

/// Builds per-layer summaries for a network.
pub fn summarize(net: &Network) -> Vec<LayerSummary> {
    net.layers()
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let config = match layer {
                Layer::Conv2d(c) => {
                    let act = c
                        .activation
                        .map(|a| format!(" + {}", a.name()))
                        .unwrap_or_default();
                    format!(
                        "{} kernels {}x{}{act}",
                        c.kernels.kernels(),
                        c.kernels.kh(),
                        c.kernels.kw()
                    )
                }
                Layer::Pool(p) => format!("{}x{} stride {}", p.kh, p.kw, p.step),
                Layer::Flatten => String::new(),
                Layer::Linear(l) => {
                    let act = l
                        .activation
                        .map(|a| format!(" + {}", a.name()))
                        .unwrap_or_default();
                    format!("{} -> {} neurons{act}", l.inputs, l.outputs)
                }
                Layer::LogSoftMax => String::new(),
            };
            LayerSummary {
                index: i,
                kind: layer.kind_name(),
                config,
                output_shape: net.shape_after(i).to_string(),
                params: layer.param_count(),
            }
        })
        .collect()
}

/// Renders the Fig. 1-style structure diagram as text.
pub fn render(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "input {:>24}  params", net.input_shape().to_string());
    for row in summarize(net) {
        let _ = writeln!(
            out,
            "  [{}] {:<12} {:<24} -> {:<10} {:>7}",
            row.index, row.kind, row.config, row.output_shape, row.params
        );
    }
    let _ = writeln!(out, "total parameters: {}", net.param_count());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn summary_rows_cover_all_layers() {
        let net = test1_net();
        let rows = summarize(&net);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].kind, "conv2d");
        assert_eq!(rows[0].config, "6 kernels 5x5");
        assert_eq!(rows[0].output_shape, "6x12x12");
        assert_eq!(rows[0].params, 156);
        assert_eq!(rows[1].kind, "max_pool");
        assert_eq!(rows[3].kind, "linear");
        assert_eq!(rows[3].config, "216 -> 10 neurons + tanh");
        assert_eq!(rows[4].kind, "log_softmax");
    }

    #[test]
    fn render_includes_totals_and_shapes() {
        let net = test1_net();
        let text = render(&net);
        assert!(text.contains("1x16x16"));
        assert!(text.contains("6x12x12"));
        assert!(text.contains("total parameters: 2326"));
    }
}
