#![warn(missing_docs)]

//! # cnn-nn
//!
//! Convolutional neural networks as the paper defines them
//! (Section III): convolutional layers (Eq. 1) optionally followed by
//! max/mean sub-sampling (Eqs. 4–5), linear perceptron layers (Eq. 6)
//! with an optional hyperbolic-tangent, and a LogSoftMax tail (Eq. 7)
//! whose argmax is the predicted class.
//!
//! This crate provides three things:
//!
//! 1. the **software reference path** — [`Network::forward`] /
//!    [`Network::predict`] — against which the simulated hardware is
//!    compared for both accuracy (identical predictions) and speed,
//! 2. an **SGD/backprop trainer** ([`train`](fn@train)) replacing the paper's use
//!    of Torch, so the prediction-error columns of Table I come from
//!    really-trained weights,
//! 3. **weight serialization** ([`Network::to_json`]/[`Network::from_json`]) —
//!    the "file containing the trained weights" the framework ingests.
//!
//! ```
//! use cnn_nn::{Network, Layer};
//! use cnn_tensor::{Shape, Tensor};
//! use cnn_tensor::ops::pool::PoolKind;
//! use cnn_tensor::ops::activation::Activation;
//!
//! // The paper's Test-1 network: conv(6x5x5) + maxpool(2x2) + linear(10)
//! let mut rng = cnn_tensor::init::seeded_rng(1);
//! let net = Network::builder(Shape::new(1, 16, 16))
//!     .conv(6, 5, 5, &mut rng)
//!     .pool(PoolKind::Max, 2, 2)
//!     .flatten()
//!     .linear(10, Some(Activation::Tanh), &mut rng)
//!     .log_softmax()
//!     .build()
//!     .unwrap();
//! let image = Tensor::zeros(Shape::new(1, 16, 16));
//! let class = net.predict(&image);
//! assert!(class < 10);
//! ```

pub mod builder;
pub mod checkpoint;
pub mod grad;
pub mod io;
pub mod layer;
pub mod metrics;
pub mod network;
pub mod qnetwork;
pub mod quant;
pub mod summary;
pub mod train;

pub use builder::NetworkBuilder;
pub use checkpoint::{run_checkpointed, train_checkpointed, TrainCheckpoint};
pub use layer::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
pub use network::{Network, NetworkError};
pub use qnetwork::{calibrate, CalibrationStats, QLayer, QuantError, QuantNetwork};
pub use train::{train, EpochStats, TrainConfig};
