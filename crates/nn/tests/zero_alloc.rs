//! Steady-state inference performs **zero heap allocations**.
//!
//! A counting global allocator wraps the system allocator; after one
//! warmup pass (which builds the packed-weight cache and grows the
//! [`Workspace`] to its high-water sizes) the allocation counter must
//! not move across many further [`Network::infer`] calls.
//!
//! This file deliberately contains a **single** `#[test]`: the global
//! allocator counts allocations process-wide, so a second concurrently
//! running test would pollute the counter.
//!
//! The network is sized below the engine's `PAR_MIN_FLOPS` gate so the
//! row-panel fan-out (whose scoped threads do allocate stacks) never
//! fires — matching the steady-state serving configuration where
//! inter-image parallelism is already saturated.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use cnn_nn::{Conv2dLayer, Layer, LinearLayer, Network, PoolLayer};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::{Shape, Tensor, Tensor4, Workspace};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static LAST_SIZE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Only allocations made while this thread-local flag is set are
    /// counted, so background threads (test harness, OS runtime) can't
    /// perturb the measurement. Const-initialized: reading it never
    /// allocates.
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

fn tracked() -> bool {
    TRACKED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if tracked() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(layout.size(), Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if tracked() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The paper's Test-1 network shape with deterministic weights.
fn test1_like_net() -> Network {
    let mut state = 0x0123_4567_89AB_CDEF_u64 | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32 * 0.4 - 0.2
    };
    Network::new(
        Shape::new(1, 16, 16),
        vec![
            Layer::Conv2d(Conv2dLayer {
                kernels: Tensor4::from_fn(6, 1, 5, 5, |_, _, _, _| next()),
                bias: (0..6).map(|_| next()).collect(),
                activation: Some(Activation::Tanh),
            }),
            Layer::Pool(PoolLayer {
                kind: PoolKind::Max,
                kh: 2,
                kw: 2,
                step: 2,
            }),
            Layer::Flatten,
            Layer::Linear(LinearLayer {
                weights: (0..216 * 10).map(|_| next()).collect(),
                bias: (0..10).map(|_| next()).collect(),
                inputs: 216,
                outputs: 10,
                activation: Some(Activation::Tanh),
            }),
            Layer::LogSoftMax,
        ],
    )
    .unwrap()
}

#[test]
fn steady_state_infer_is_allocation_free() {
    let net = test1_like_net();
    let inputs: Vec<Tensor> = (0..8)
        .map(|i| {
            Tensor::from_fn(Shape::new(1, 16, 16), |_, y, x| {
                ((y * 16 + x + i * 31) % 23) as f32 * 0.08 - 0.9
            })
        })
        .collect();

    // Reference results via the per-layer path, computed before the
    // measurement window so their allocations don't count.
    let references: Vec<Tensor> = inputs
        .iter()
        .map(|input| {
            let mut t = input.clone();
            for layer in net.layers() {
                t = layer.forward(&t);
            }
            t
        })
        .collect();

    let mut ws = Workspace::new();

    // Warmup: builds the packed-kernel cache and grows the workspace.
    let _ = net.infer(&inputs[0], &mut ws).argmax();

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut classes = [0usize; 8];
    TRACKED.set(true);
    for round in 0..50 {
        for (i, input) in inputs.iter().enumerate() {
            classes[i] = net.infer(input, &mut ws).argmax();
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "round {round}: inference allocated {} time(s) after warmup (last size {})",
            after - before,
            LAST_SIZE.load(Ordering::Relaxed)
        );
    }
    TRACKED.set(false);

    // The allocation-free path is still the *correct* path.
    for (i, (input, want)) in inputs.iter().zip(&references).enumerate() {
        let got = net.infer(input, &mut ws);
        assert_eq!(got.shape(), want.shape());
        for (j, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "input {i} elem {j}: {a} vs {b}");
        }
        assert_eq!(classes[i], want.argmax());
    }
}
