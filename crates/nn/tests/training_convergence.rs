//! Training-behaviour integration tests: the SGD trainer must make
//! progress on learnable data across layer configurations — including
//! the mean-pooling and ReLU/sigmoid variants the paper lists as
//! extensions.

use cnn_nn::{train, Network, TrainConfig};
use cnn_tensor::init::{seeded_rng, Init};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::{Shape, Tensor};
use rand::rngs::StdRng;

/// Two-class problem: vertical vs horizontal bright bar.
fn bars(n: usize, rng: &mut StdRng) -> (Vec<Tensor>, Vec<usize>) {
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let noise = cnn_tensor::init::init_tensor(rng, Shape::new(1, 10, 10), Init::Uniform(0.15));
        let mut img = Tensor::from_fn(Shape::new(1, 10, 10), |_, y, x| {
            let on = if class == 0 {
                (4..6).contains(&x)
            } else {
                (4..6).contains(&y)
            };
            if on {
                1.0
            } else {
                0.0
            }
        });
        img.add_assign(&noise);
        images.push(img);
        labels.push(class);
    }
    (images, labels)
}

fn check_learns(net: &mut Network, epochs: usize, lr: f32) {
    let mut rng = seeded_rng(42);
    let (images, labels) = bars(96, &mut rng);
    let cfg = TrainConfig {
        learning_rate: lr,
        batch_size: 16,
        epochs,
        weight_decay: 1e-4,
        lr_decay: 0.97,
        momentum: 0.0,
    };
    let mut trng = seeded_rng(7);
    let stats = train(net, &images, &labels, &cfg, &mut trng);
    assert!(
        stats.last().unwrap().mean_loss < stats[0].mean_loss,
        "loss did not decrease: {:?} -> {:?}",
        stats[0].mean_loss,
        stats.last().unwrap().mean_loss
    );
    let err = net.prediction_error(&images, &labels);
    assert!(
        err < 0.2,
        "final error {err:.2} too high for a separable problem"
    );
}

#[test]
fn max_pool_tanh_network_learns() {
    let mut rng = seeded_rng(1);
    let mut net = Network::builder(Shape::new(1, 10, 10))
        .conv(4, 3, 3, &mut rng)
        .pool(PoolKind::Max, 2, 2)
        .flatten()
        .linear(2, Some(Activation::Tanh), &mut rng)
        .log_softmax()
        .build()
        .unwrap();
    check_learns(&mut net, 12, 0.3);
}

#[test]
fn mean_pool_network_learns() {
    // The paper's announced Mean-pooling extension must be trainable
    // end to end (its backward pass distributes gradient evenly).
    let mut rng = seeded_rng(2);
    let mut net = Network::builder(Shape::new(1, 10, 10))
        .conv(4, 3, 3, &mut rng)
        .pool(PoolKind::Mean, 2, 2)
        .flatten()
        .linear(2, Some(Activation::Tanh), &mut rng)
        .log_softmax()
        .build()
        .unwrap();
    check_learns(&mut net, 12, 0.3);
}

#[test]
fn relu_conv_network_learns() {
    let mut rng = seeded_rng(3);
    let mut net = Network::builder(Shape::new(1, 10, 10))
        .conv_activated(4, 3, 3, Activation::Relu, &mut rng)
        .pool(PoolKind::Max, 2, 2)
        .flatten()
        .linear(2, None, &mut rng)
        .log_softmax()
        .build()
        .unwrap();
    check_learns(&mut net, 14, 0.2);
}

#[test]
fn sigmoid_head_network_learns() {
    let mut rng = seeded_rng(4);
    let mut net = Network::builder(Shape::new(1, 10, 10))
        .conv(4, 3, 3, &mut rng)
        .pool(PoolKind::Max, 2, 2)
        .flatten()
        .linear(2, Some(Activation::Sigmoid), &mut rng)
        .log_softmax()
        .build()
        .unwrap();
    check_learns(&mut net, 16, 0.4);
}

#[test]
fn two_conv_layer_network_learns() {
    let mut rng = seeded_rng(5);
    let mut net = Network::builder(Shape::new(1, 10, 10))
        .conv(4, 3, 3, &mut rng)
        .conv(6, 3, 3, &mut rng)
        .pool(PoolKind::Max, 2, 2)
        .flatten()
        .linear(2, Some(Activation::Tanh), &mut rng)
        .log_softmax()
        .build()
        .unwrap();
    check_learns(&mut net, 14, 0.15);
}

#[test]
fn quantized_trained_network_keeps_accuracy() {
    // Weight-only Q8.8 quantization after training should cost at
    // most a little accuracy on an easy problem.
    let mut rng = seeded_rng(6);
    let mut net = Network::builder(Shape::new(1, 10, 10))
        .conv(4, 3, 3, &mut rng)
        .pool(PoolKind::Max, 2, 2)
        .flatten()
        .linear(2, Some(Activation::Tanh), &mut rng)
        .log_softmax()
        .build()
        .unwrap();
    check_learns(&mut net, 12, 0.3);

    let mut drng = seeded_rng(42);
    let (images, labels) = bars(96, &mut drng);
    let err_f32 = net.prediction_error(&images, &labels);
    let q = cnn_nn::quant::quantize_network(&net, 16, 8);
    let err_q16 = q.prediction_error(&images, &labels);
    assert!(
        err_q16 <= err_f32 + 0.1,
        "Q8.8 quantization destroyed accuracy: {err_f32:.3} -> {err_q16:.3}"
    );
}
