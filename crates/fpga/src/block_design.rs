//! The Fig. 5 block design as a validated component graph.
//!
//! The paper's `cnn_vivado.tcl` instantiates six blocks — ZYNQ7
//! Processing System, AXI DMA, two AXI Interconnects, a Processor
//! System Reset, and the CNN IP core — and wires them so the PS
//! streams images to the IP through the DMA and receives the class
//! index back. This module builds the same graph programmatically,
//! validates it the way `validate_bd_design` would, and exports
//! Graphviz DOT for documentation.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The component types of Fig. 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ComponentKind {
    /// ZYNQ7 Processing System (the hardwired ARM dual-core).
    ProcessingSystem,
    /// AXI Direct Memory Access engine.
    AxiDma,
    /// AXI Interconnect switch.
    AxiInterconnect,
    /// Processor System Reset.
    ProcSysReset,
    /// The generated CNN IP core.
    CnnIp,
}

/// One instantiated component.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Instance name (e.g. `axi_dma_0`).
    pub name: String,
    /// Component type.
    pub kind: ComponentKind,
    /// Interface pins the component exposes.
    pub pins: Vec<String>,
}

/// A point-to-point interface connection.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// `instance/pin` source.
    pub from: String,
    /// `instance/pin` destination.
    pub to: String,
}

/// Validation failures (`validate_bd_design` equivalents).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesignError {
    /// A connection references an unknown instance or pin.
    UnknownEndpoint(String),
    /// A destination pin is driven twice.
    DoubleDriven(String),
    /// A required component kind is missing.
    MissingComponent(ComponentKind),
    /// The stream path PS→DMA→CNN→DMA→PS is not closed.
    BrokenStreamPath(String),
    /// Duplicate instance name.
    DuplicateInstance(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::UnknownEndpoint(e) => write!(f, "unknown endpoint {e}"),
            DesignError::DoubleDriven(p) => write!(f, "pin {p} driven twice"),
            DesignError::MissingComponent(k) => write!(f, "missing component {k:?}"),
            DesignError::BrokenStreamPath(m) => write!(f, "broken stream path: {m}"),
            DesignError::DuplicateInstance(n) => write!(f, "duplicate instance {n}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// The block design graph.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDesign {
    /// Design name.
    pub name: String,
    /// Instantiated components.
    pub components: Vec<Component>,
    /// Interface connections.
    pub connections: Vec<Connection>,
}

impl BlockDesign {
    /// Builds the paper's exact Fig. 5 design.
    pub fn fig5() -> BlockDesign {
        let mut d = BlockDesign {
            name: "design_1".into(),
            components: Vec::new(),
            connections: Vec::new(),
        };
        d.add(Component {
            name: "processing_system7_0".into(),
            kind: ComponentKind::ProcessingSystem,
            pins: vec!["M_AXI_GP0".into(), "S_AXI_HP0".into(), "FCLK_CLK0".into()],
        });
        d.add(Component {
            name: "axi_dma_0".into(),
            kind: ComponentKind::AxiDma,
            pins: vec![
                "S_AXI_LITE".into(),
                "M_AXIS_MM2S".into(),
                "S_AXIS_S2MM".into(),
                "M_AXI_MM2S".into(),
                "M_AXI_S2MM".into(),
            ],
        });
        d.add(Component {
            name: "axi_interconnect_0".into(),
            kind: ComponentKind::AxiInterconnect,
            pins: vec!["S00_AXI".into(), "M00_AXI".into()],
        });
        d.add(Component {
            name: "axi_interconnect_1".into(),
            kind: ComponentKind::AxiInterconnect,
            pins: vec!["S00_AXI".into(), "S01_AXI".into(), "M00_AXI".into()],
        });
        d.add(Component {
            name: "proc_sys_reset_0".into(),
            kind: ComponentKind::ProcSysReset,
            pins: vec!["slowest_sync_clk".into(), "peripheral_aresetn".into()],
        });
        d.add(Component {
            name: "cnn_0".into(),
            kind: ComponentKind::CnnIp,
            pins: vec!["in_stream".into(), "out_stream".into(), "s_axi_ctrl".into()],
        });

        for (from, to) in [
            // control: PS GP master -> interconnect 0 -> DMA register file
            (
                "processing_system7_0/M_AXI_GP0",
                "axi_interconnect_0/S00_AXI",
            ),
            ("axi_interconnect_0/M00_AXI", "axi_dma_0/S_AXI_LITE"),
            // stream: DMA -> CNN -> DMA
            ("axi_dma_0/M_AXIS_MM2S", "cnn_0/in_stream"),
            ("cnn_0/out_stream", "axi_dma_0/S_AXIS_S2MM"),
            // memory: DMA masters -> interconnect 1 -> PS HP slave
            ("axi_dma_0/M_AXI_MM2S", "axi_interconnect_1/S00_AXI"),
            ("axi_dma_0/M_AXI_S2MM", "axi_interconnect_1/S01_AXI"),
            (
                "axi_interconnect_1/M00_AXI",
                "processing_system7_0/S_AXI_HP0",
            ),
            // clock/reset distribution
            (
                "processing_system7_0/FCLK_CLK0",
                "proc_sys_reset_0/slowest_sync_clk",
            ),
            ("proc_sys_reset_0/peripheral_aresetn", "cnn_0/s_axi_ctrl"),
        ] {
            d.connect(from, to);
        }
        d
    }

    /// Adds a component.
    pub fn add(&mut self, c: Component) {
        self.components.push(c);
    }

    /// Adds a connection by endpoint strings (`instance/pin`).
    pub fn connect(&mut self, from: &str, to: &str) {
        self.connections.push(Connection {
            from: from.into(),
            to: to.into(),
        });
    }

    fn endpoint_exists(&self, ep: &str) -> bool {
        let Some((inst, pin)) = ep.split_once('/') else {
            return false;
        };
        self.components
            .iter()
            .any(|c| c.name == inst && c.pins.iter().any(|p| p == pin))
    }

    /// Validates the design: endpoints resolve, no pin is driven
    /// twice, all Fig. 5 component kinds are present, the stream loop
    /// closes, and instance names are unique.
    pub fn validate(&self) -> Result<(), Vec<DesignError>> {
        let mut errs = Vec::new();

        let mut seen = HashSet::new();
        for c in &self.components {
            if !seen.insert(&c.name) {
                errs.push(DesignError::DuplicateInstance(c.name.clone()));
            }
        }

        let mut driven: HashMap<&str, u32> = HashMap::new();
        for conn in &self.connections {
            for ep in [&conn.from, &conn.to] {
                if !self.endpoint_exists(ep) {
                    errs.push(DesignError::UnknownEndpoint(ep.clone()));
                }
            }
            *driven.entry(conn.to.as_str()).or_default() += 1;
        }
        for (pin, n) in driven {
            if n > 1 {
                errs.push(DesignError::DoubleDriven(pin.to_string()));
            }
        }

        for kind in [
            ComponentKind::ProcessingSystem,
            ComponentKind::AxiDma,
            ComponentKind::AxiInterconnect,
            ComponentKind::ProcSysReset,
            ComponentKind::CnnIp,
        ] {
            if !self.components.iter().any(|c| c.kind == kind) {
                errs.push(DesignError::MissingComponent(kind));
            }
        }

        // Stream path: some DMA MM2S out feeds a CNN input, and the CNN
        // output feeds the DMA S2MM in.
        let has = |from_pin: &str, to_pin: &str| {
            self.connections
                .iter()
                .any(|c| c.from.ends_with(from_pin) && c.to.ends_with(to_pin))
        };
        if !has("M_AXIS_MM2S", "in_stream") {
            errs.push(DesignError::BrokenStreamPath("DMA→CNN missing".into()));
        }
        if !has("out_stream", "S_AXIS_S2MM") {
            errs.push(DesignError::BrokenStreamPath("CNN→DMA missing".into()));
        }

        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Exports Graphviz DOT (the Fig. 5 regenerator uses this).
    pub fn to_dot(&self) -> String {
        let mut out = format!(
            "digraph \"{}\" {{\n  rankdir=LR;\n  node [shape=box];\n",
            self.name
        );
        for c in &self.components {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n{:?}\"];\n",
                c.name, c.name, c.kind
            ));
        }
        for conn in &self.connections {
            let fi = conn.from.split('/').next().unwrap_or("?");
            let ti = conn.to.split('/').next().unwrap_or("?");
            let fp = conn.from.split('/').nth(1).unwrap_or("?");
            let tp = conn.to.split('/').nth(1).unwrap_or("?");
            out.push_str(&format!(
                "  \"{fi}\" -> \"{ti}\" [label=\"{fp} -> {tp}\", fontsize=8];\n"
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_has_six_components() {
        let d = BlockDesign::fig5();
        assert_eq!(d.components.len(), 6);
        let inter = d
            .components
            .iter()
            .filter(|c| c.kind == ComponentKind::AxiInterconnect)
            .count();
        assert_eq!(inter, 2, "Fig. 5 has exactly two AXI interconnects");
    }

    #[test]
    fn fig5_validates() {
        BlockDesign::fig5()
            .validate()
            .expect("Fig. 5 must validate");
    }

    #[test]
    fn unknown_endpoint_detected() {
        let mut d = BlockDesign::fig5();
        d.connect("ghost_0/M_AXI", "cnn_0/in_stream");
        let errs = d.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, DesignError::UnknownEndpoint(ep) if ep.contains("ghost"))));
    }

    #[test]
    fn double_driven_pin_detected() {
        let mut d = BlockDesign::fig5();
        d.connect("processing_system7_0/FCLK_CLK0", "cnn_0/in_stream");
        d.connect("axi_interconnect_0/M00_AXI", "cnn_0/in_stream");
        let errs = d.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, DesignError::DoubleDriven(_))));
    }

    #[test]
    fn missing_component_detected() {
        let mut d = BlockDesign::fig5();
        d.components.retain(|c| c.kind != ComponentKind::AxiDma);
        d.connections
            .retain(|c| !c.from.contains("dma") && !c.to.contains("dma"));
        let errs = d.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, DesignError::MissingComponent(ComponentKind::AxiDma))));
        assert!(errs
            .iter()
            .any(|e| matches!(e, DesignError::BrokenStreamPath(_))));
    }

    #[test]
    fn duplicate_instance_detected() {
        let mut d = BlockDesign::fig5();
        d.add(Component {
            name: "cnn_0".into(),
            kind: ComponentKind::CnnIp,
            pins: vec![],
        });
        let errs = d.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, DesignError::DuplicateInstance(_))));
    }

    #[test]
    fn broken_stream_path_detected() {
        let mut d = BlockDesign::fig5();
        d.connections.retain(|c| c.to != "cnn_0/in_stream");
        let errs = d.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, DesignError::BrokenStreamPath(m) if m.contains("DMA→CNN"))));
    }

    #[test]
    fn dot_export_mentions_all_components() {
        let dot = BlockDesign::fig5().to_dot();
        for name in [
            "processing_system7_0",
            "axi_dma_0",
            "axi_interconnect_0",
            "axi_interconnect_1",
            "proc_sys_reset_0",
            "cnn_0",
        ] {
            assert!(dot.contains(name), "missing {name}");
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn error_display_strings() {
        assert!(DesignError::UnknownEndpoint("a/b".into())
            .to_string()
            .contains("a/b"));
        assert!(DesignError::MissingComponent(ComponentKind::CnnIp)
            .to_string()
            .contains("CnnIp"));
    }

    #[test]
    fn serde_roundtrip() {
        let d = BlockDesign::fig5();
        let json = serde_json::to_string(&d).unwrap();
        let back: BlockDesign = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
