//! Supported evaluation boards — the GUI's board selector
//! (Section IV-A): Zedboard and Zybo.

use cnn_hls::FpgaPart;
use serde::{Deserialize, Serialize};

/// A supported development board.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Board {
    /// Avnet Zedboard (Zynq-7020) — the paper's evaluation platform.
    Zedboard,
    /// Digilent Zybo (Zynq-7010).
    Zybo,
}

impl Board {
    /// The board's programmable-logic part.
    pub fn part(self) -> FpgaPart {
        match self {
            Board::Zedboard => FpgaPart::zynq7020(),
            Board::Zybo => FpgaPart::zynq7010(),
        }
    }

    /// ARM Cortex-A9 CPU clock (both boards run the PS at 667 MHz or
    /// below; the paper's software baseline runs here).
    pub fn cpu_clock_hz(self) -> u64 {
        match self {
            Board::Zedboard => 667_000_000,
            Board::Zybo => 650_000_000,
        }
    }

    /// Display name matching the GUI option.
    pub fn name(self) -> &'static str {
        match self {
            Board::Zedboard => "Zedboard",
            Board::Zybo => "Zybo",
        }
    }

    /// Parses the GUI's board string.
    pub fn from_name(name: &str) -> Option<Board> {
        match name.to_ascii_lowercase().as_str() {
            "zedboard" => Some(Board::Zedboard),
            "zybo" => Some(Board::Zybo),
            _ => None,
        }
    }

    /// All supported boards.
    pub const ALL: [Board; 2] = [Board::Zedboard, Board::Zybo];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_match_boards() {
        assert_eq!(Board::Zedboard.part().name, "xc7z020clg484-1");
        assert_eq!(Board::Zybo.part().name, "xc7z010clg400-1");
    }

    #[test]
    fn cpu_clocks() {
        assert_eq!(Board::Zedboard.cpu_clock_hz(), 667_000_000);
        assert!(Board::Zybo.cpu_clock_hz() <= Board::Zedboard.cpu_clock_hz());
    }

    #[test]
    fn name_roundtrip() {
        for b in Board::ALL {
            assert_eq!(Board::from_name(b.name()), Some(b));
        }
        assert_eq!(Board::from_name("virtex"), None);
    }

    #[test]
    fn serde_snake_case() {
        assert_eq!(
            serde_json::to_string(&Board::Zedboard).unwrap(),
            "\"zedboard\""
        );
    }
}
