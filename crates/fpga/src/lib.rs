#![warn(missing_docs)]

//! # cnn-fpga
//!
//! The hardware substrate of the reproduction: everything the paper
//! runs on a physical Zedboard is simulated here at transaction level.
//!
//! * [`board`] — the two supported boards (Zedboard, Zybo) and their
//!   Zynq-7000 parts,
//! * [`block_design`] — the Fig. 5 block design (ZYNQ7 PS, AXI DMA,
//!   two AXI interconnects, processor system reset, CNN IP core) as a
//!   validated component graph with Graphviz export,
//! * [`axi`] — AXI4-Stream and AXI-DMA transaction/cycle accounting,
//!   plus the CRC32 trailer framing that gives every stream packet
//!   end-to-end integrity (silent bit flips become detected retries),
//! * [`address_map`] — the Address Editor step: non-overlapping,
//!   size-aligned AXI-Lite segments in the PS GP0 window,
//! * [`dma_regs`] — the AXI DMA's memory-mapped register file and the
//!   PS-side simple-transfer driver sequence (the referenced ZedBoard
//!   Linux DMA driver's protocol),
//! * [`hdl`] — the `make_wrapper` step: the top-level Verilog wrapper
//!   around the validated block design,
//! * [`ip_core`] — the CNN IP core executor: evaluates the *same*
//!   floating-point network as the software path (so predictions are
//!   bit-identical, the paper's key accuracy observation) while
//!   charging the cycles of the HLS schedule,
//! * [`cosim`] — a cycle-level simulator of the DATAFLOW task
//!   pipeline that validates the analytic schedule (latency, interval)
//!   from below,
//! * [`bitstream`] — bitstream artifacts and programming checks,
//! * [`device`] — the programmed device: the PS-side driver loop that
//!   streams test sets through the DMA into the fabric (optionally on
//!   a real thread pair connected by crossbeam channels) and reports
//!   classifications plus exact cycle counts, per-image outcomes and
//!   fault/recovery statistics,
//! * [`fault`] — deterministic seed-driven fault injection for the
//!   transport/driver stack (dropped/corrupted stream beats, MM2S/S2MM
//!   stalls, DMA halts) plus the bounded retry policy the driver runs
//!   against it.

pub mod address_map;
pub mod axi;
pub mod bitstream;
pub mod block_design;
pub mod board;
pub mod cosim;
pub mod device;
pub mod dma_regs;
pub mod fault;
pub mod hdl;
pub mod ip_core;
pub mod weight_mem;

pub use address_map::MapError;
pub use axi::{check_packet, crc32, frame_packet, IntegrityError, StreamError, CRC_WORDS};
pub use bitstream::{Bitstream, ModelVersion};
pub use block_design::BlockDesign;
pub use board::Board;
pub use device::{
    BatchResult, DeviceError, ImageDispatch, ImageOutcome, ReconfigReport, ZynqDevice, ABANDONED,
};
pub use dma_regs::{DmaChannel, DmaError, HwFault};
pub use fault::{FaultError, FaultPlan, FaultStats, InjectedFault, RetryPolicy};
pub use ip_core::{CnnIpCore, PacketError};
pub use weight_mem::{SeuUpset, WeightMemory};
