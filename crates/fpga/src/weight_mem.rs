//! The on-device weight/configuration memory image.
//!
//! When a bitstream is programmed, the loader captures the network's
//! parameters into banked on-chip memory — one bank per parameterized
//! layer, each word one f32 bit pattern — and records a golden
//! FNV-1a/64 digest per bank. This is the long-lived state a deployed
//! accelerator trusts between reloads, and therefore the target of
//! SEU-style configuration upsets: a bit flip here never crosses the
//! DMA, so the CRC stream trailers cannot see it, and the core keeps
//! producing well-formed (possibly wrong) predictions.
//!
//! The memory supports the three defense layers built on top of it:
//! scrubbing ([`WeightMemory::dirty_banks`] against the golden
//! digests), reload ([`WeightMemory::reload_all`] from the bitstream's
//! pristine network), and reconstruction of the corrupted compute
//! ([`WeightMemory::restore_network`]) so the device model actually
//! misclassifies while upset instead of merely flagging a counter.

use cnn_nn::{Layer, Network};
use cnn_store::golden::{GoldenBank, GoldenManifest};
use cnn_store::hash::{Fnv64, SplitMix64};

/// One weight bank: the parameters of one layer, as raw f32 bits.
#[derive(Clone, Debug)]
struct Bank {
    label: String,
    words: Vec<u32>,
}

/// One applied upset, for accounting and flight stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeuUpset {
    /// Bank hit.
    pub bank: usize,
    /// Word within the bank.
    pub word: usize,
    /// Bit flipped within the word.
    pub bit: u32,
}

/// A banked, checksummed image of the device's weight memory.
#[derive(Clone, Debug)]
pub struct WeightMemory {
    banks: Vec<Bank>,
    /// Per-bank digests captured at load time — the golden reference
    /// the scrubber compares against.
    golden: Vec<u64>,
}

/// Flattens one layer's parameters into bank words, if it has any.
fn bank_of(index: usize, layer: &Layer) -> Option<Bank> {
    let (label, words) = match layer {
        Layer::Conv2d(c) => {
            let mut words: Vec<u32> = c.kernels.as_slice().iter().map(|w| w.to_bits()).collect();
            words.extend(c.bias.iter().map(|b| b.to_bits()));
            (format!("conv{index}"), words)
        }
        Layer::Linear(l) => {
            let mut words: Vec<u32> = l.weights.iter().map(|w| w.to_bits()).collect();
            words.extend(l.bias.iter().map(|b| b.to_bits()));
            (format!("linear{index}"), words)
        }
        Layer::Pool(_) | Layer::Flatten | Layer::LogSoftMax => return None,
    };
    Some(Bank { label, words })
}

fn digest(words: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    for &w in words {
        h.update(&w.to_le_bytes());
    }
    h.finish()
}

impl WeightMemory {
    /// Loads the image from a pristine network and captures the golden
    /// digests.
    pub fn load(net: &Network) -> WeightMemory {
        let banks: Vec<Bank> = net
            .layers()
            .iter()
            .enumerate()
            .filter_map(|(i, l)| bank_of(i, l))
            .collect();
        let golden = banks.iter().map(|b| digest(&b.words)).collect();
        WeightMemory { banks, golden }
    }

    /// Banks in the image.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total parameter words across all banks.
    pub fn total_words(&self) -> usize {
        self.banks.iter().map(|b| b.words.len()).sum()
    }

    /// Label of bank `i`.
    pub fn bank_label(&self, i: usize) -> &str {
        &self.banks[i].label
    }

    /// Digest over bank `i`'s **current** contents (what the scrubber
    /// recomputes).
    pub fn live_digest(&self, i: usize) -> u64 {
        digest(&self.banks[i].words)
    }

    /// The golden digest captured when bank `i` was loaded.
    pub fn golden_digest(&self, i: usize) -> u64 {
        self.golden[i]
    }

    /// Banks whose live digest has diverged from golden.
    pub fn dirty_banks(&self) -> Vec<usize> {
        (0..self.banks.len())
            .filter(|&i| self.live_digest(i) != self.golden[i])
            .collect()
    }

    /// Whether every bank still matches its golden digest.
    pub fn is_clean(&self) -> bool {
        self.dirty_banks().is_empty()
    }

    /// Flips one bit at a site drawn from `stream`. The bit is chosen
    /// finite-preserving (exponent flip when it stays finite, else the
    /// sign bit), because the point of an SEU model is *silent* skew:
    /// a NaN weight would advertise itself, a sign/exponent flip just
    /// changes the answer. Returns `None` only for a parameterless
    /// image.
    pub fn upset(&mut self, stream: &mut SplitMix64) -> Option<SeuUpset> {
        if self.banks.is_empty() {
            return None;
        }
        let bank = stream.next_below(self.banks.len());
        let words = &mut self.banks[bank].words;
        if words.is_empty() {
            return None;
        }
        let word = stream.next_below(words.len());
        // Prefer the high exponent bit (orders-of-magnitude skew);
        // fall back to the sign bit when that would leave the f32
        // non-finite. Both keep the value well-formed.
        let mut bit = 30;
        if !f32::from_bits(words[word] ^ (1 << bit)).is_finite() {
            bit = 31;
        }
        words[word] ^= 1 << bit;
        Some(SeuUpset { bank, word, bit })
    }

    /// Rewrites every dirty bank from the pristine `source` network
    /// (the bitstream the device was programmed with). Returns how
    /// many banks were rewritten.
    pub fn reload_all(&mut self, source: &Network) -> usize {
        let pristine = WeightMemory::load(source);
        assert_eq!(
            pristine.banks.len(),
            self.banks.len(),
            "reload source must have the image's architecture"
        );
        let mut rewritten = 0;
        for (i, bank) in pristine.banks.into_iter().enumerate() {
            if self.banks[i].words != bank.words {
                self.banks[i].words = bank.words;
                rewritten += 1;
            }
        }
        rewritten
    }

    /// Reconstructs the network the core is *actually* computing with:
    /// `template`'s architecture carrying this memory's (possibly
    /// upset) parameter words. Bit-exact round trip when clean.
    pub fn restore_network(&self, template: &Network) -> Network {
        let mut cursor = 0usize;
        let layers: Vec<Layer> = template
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| match layer {
                Layer::Conv2d(c) => {
                    let bank = &self.banks[cursor].words;
                    cursor += 1;
                    let mut c = c.clone();
                    let n_kernel = c.kernels.len();
                    debug_assert_eq!(bank.len(), n_kernel + c.bias.len(), "conv{i} bank size");
                    for (dst, &bits) in c.kernels.as_mut_slice().iter_mut().zip(bank.iter()) {
                        *dst = f32::from_bits(bits);
                    }
                    for (dst, &bits) in c.bias.iter_mut().zip(bank[n_kernel..].iter()) {
                        *dst = f32::from_bits(bits);
                    }
                    Layer::Conv2d(c)
                }
                Layer::Linear(l) => {
                    let bank = &self.banks[cursor].words;
                    cursor += 1;
                    let mut l = l.clone();
                    let n_w = l.weights.len();
                    debug_assert_eq!(bank.len(), n_w + l.bias.len(), "linear{i} bank size");
                    for (dst, &bits) in l.weights.iter_mut().zip(bank.iter()) {
                        *dst = f32::from_bits(bits);
                    }
                    for (dst, &bits) in l.bias.iter_mut().zip(bank[n_w..].iter()) {
                        *dst = f32::from_bits(bits);
                    }
                    Layer::Linear(l)
                }
                other => other.clone(),
            })
            .collect();
        assert_eq!(cursor, self.banks.len(), "template/bank layer mismatch");
        Network::new(template.input_shape(), layers)
            .expect("restoring into the same architecture cannot fail validation")
    }

    /// The golden manifest for this image, tied to `model` (the
    /// bitstream content hash) — what `cnn-store` persists and the
    /// scrubber audits against.
    pub fn manifest(&self, model: u64) -> GoldenManifest {
        GoldenManifest::new(
            model,
            self.banks
                .iter()
                .zip(&self.golden)
                .map(|(b, &digest)| GoldenBank {
                    label: b.label.clone(),
                    words: b.words.len(),
                    digest,
                })
                .collect(),
        )
        .expect("bank labels are generated and always valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_nn::{Conv2dLayer, LinearLayer, PoolLayer};
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::{Shape, Tensor, Tensor4};

    /// A small deterministic two-param-layer network (no `rand`).
    fn net() -> Network {
        let mut mix = SplitMix64::new(99);
        let mut val = |n: usize| -> Vec<f32> {
            (0..n)
                .map(|_| (mix.next_f64() * 0.5 - 0.25) as f32)
                .collect()
        };
        let conv = Conv2dLayer {
            kernels: Tensor4::from_vec(4, 1, 3, 3, val(36)),
            bias: val(4),
            activation: None,
        };
        let linear = LinearLayer {
            weights: val(10 * 196),
            bias: val(10),
            inputs: 196,
            outputs: 10,
            activation: None,
        };
        Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(conv),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(linear),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    fn image() -> Tensor {
        let mut mix = SplitMix64::new(5);
        Tensor::from_vec(
            Shape::new(1, 16, 16),
            (0..256)
                .map(|_| (mix.next_f64() * 2.0 - 1.0) as f32)
                .collect(),
        )
    }

    #[test]
    fn load_is_clean_and_banks_follow_layers() {
        let mem = WeightMemory::load(&net());
        assert_eq!(mem.bank_count(), 2);
        assert_eq!(mem.bank_label(0), "conv0");
        assert_eq!(mem.bank_label(1), "linear3");
        assert_eq!(mem.total_words(), 36 + 4 + 10 * 196 + 10);
        assert!(mem.is_clean());
        for i in 0..2 {
            assert_eq!(mem.live_digest(i), mem.golden_digest(i));
        }
    }

    #[test]
    fn restore_round_trips_bit_exactly_when_clean() {
        let n = net();
        let mem = WeightMemory::load(&n);
        let restored = mem.restore_network(&n);
        assert_eq!(restored, n);
        let img = image();
        assert_eq!(restored.predict(&img), n.predict(&img));
    }

    #[test]
    fn upset_dirties_exactly_one_bank_and_scrub_sees_it() {
        let n = net();
        let mut mem = WeightMemory::load(&n);
        let up = mem.upset(&mut SplitMix64::new(7)).unwrap();
        assert_eq!(mem.dirty_banks(), vec![up.bank]);
        assert!(!mem.is_clean());
        // The restored network differs from the pristine one and every
        // weight is still finite — the upset is silent, not loud.
        let corrupted = mem.restore_network(&n);
        assert_ne!(corrupted, n);
        for layer in corrupted.layers() {
            match layer {
                Layer::Conv2d(c) => {
                    assert!(c.kernels.as_slice().iter().all(|w| w.is_finite()));
                    assert!(c.bias.iter().all(|w| w.is_finite()));
                }
                Layer::Linear(l) => {
                    assert!(l.weights.iter().all(|w| w.is_finite()));
                    assert!(l.bias.iter().all(|w| w.is_finite()));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn upsets_replay_identically_from_the_stream_seed() {
        let n = net();
        let mut a = WeightMemory::load(&n);
        let mut b = WeightMemory::load(&n);
        assert_eq!(
            a.upset(&mut SplitMix64::new(42)),
            b.upset(&mut SplitMix64::new(42))
        );
        assert_eq!(a.live_digest(0), b.live_digest(0));
        assert_eq!(a.live_digest(1), b.live_digest(1));
    }

    #[test]
    fn reload_restores_golden_state() {
        let n = net();
        let mut mem = WeightMemory::load(&n);
        for s in 0..3 {
            mem.upset(&mut SplitMix64::new(s));
        }
        assert!(!mem.is_clean());
        let rewritten = mem.reload_all(&n);
        assert!(rewritten >= 1);
        assert!(mem.is_clean());
        assert_eq!(mem.restore_network(&n), n);
        // A clean reload is a no-op.
        assert_eq!(mem.reload_all(&n), 0);
    }

    #[test]
    fn manifest_reflects_the_golden_image() {
        let n = net();
        let mut mem = WeightMemory::load(&n);
        let manifest = mem.manifest(0xB175);
        assert_eq!(manifest.model, 0xB175);
        assert_eq!(manifest.banks.len(), 2);
        assert_eq!(manifest.bank_digest(0), Some(mem.golden_digest(0)));
        // Corruption does not silently rewrite the golden reference.
        mem.upset(&mut SplitMix64::new(1));
        assert_eq!(mem.manifest(0xB175), manifest);
        let text = manifest.to_text();
        assert_eq!(GoldenManifest::parse(&text).unwrap(), manifest);
    }
}
