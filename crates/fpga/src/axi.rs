//! AXI4-Stream and AXI-DMA transaction-level models.
//!
//! The paper's design moves every image from DDR through the AXI DMA
//! into the IP core over a 32-bit AXI4-Stream and returns the class
//! index the same way (Section IV-B). This module provides the cycle
//! accounting for those transfers, a channel-based stream pair for
//! threaded co-simulation, and the beat-level fault hooks the
//! [`crate::fault`] injector drives (dropped and corrupted beats).

use crossbeam::channel::{bounded, Receiver, Sender};
use std::fmt;

/// Cycle accounting for one DMA engine (both directions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Completed MM2S (memory → stream) transfers.
    pub mm2s_transfers: u64,
    /// Words moved MM2S.
    pub mm2s_words: u64,
    /// Completed S2MM (stream → memory) transfers.
    pub s2mm_transfers: u64,
    /// Words moved S2MM.
    pub s2mm_words: u64,
}

/// Transaction-level AXI DMA: computes the fabric cycles a transfer
/// occupies and tallies statistics.
#[derive(Clone, Debug, Default)]
pub struct AxiDma {
    stats: DmaStats,
}

impl AxiDma {
    /// New idle engine.
    pub fn new() -> AxiDma {
        AxiDma::default()
    }

    /// Cycles to move `words` 32-bit words memory→stream: descriptor
    /// setup plus one beat per word.
    pub fn mm2s(&mut self, words: u64) -> u64 {
        self.stats.mm2s_transfers += 1;
        self.stats.mm2s_words += words;
        let cycles = cnn_hls::calibration::DMA_SETUP_CYCLES
            + words / cnn_hls::calibration::STREAM_WORDS_PER_CYCLE;
        cnn_trace::counter_add("cnn_dma_beats_total", &[("channel", "mm2s")], words);
        cnn_trace::advance_cycles(cycles);
        cycles
    }

    /// Cycles to move `words` words stream→memory.
    pub fn s2mm(&mut self, words: u64) -> u64 {
        self.stats.s2mm_transfers += 1;
        self.stats.s2mm_words += words;
        let cycles = cnn_hls::calibration::DMA_SETUP_CYCLES
            + words / cnn_hls::calibration::STREAM_WORDS_PER_CYCLE;
        cnn_trace::counter_add("cnn_dma_beats_total", &[("channel", "s2mm")], words);
        cnn_trace::advance_cycles(cycles);
        cycles
    }

    /// Statistics so far.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }
}

/// One 32-bit AXI4-Stream beat: data plus TLAST.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamBeat {
    /// Payload word.
    pub data: f32,
    /// End-of-packet marker.
    pub last: bool,
}

/// Stream transport failure: the other end of the channel went away
/// mid-packet (a torn-down co-simulation thread, the model's analogue
/// of a wedged stream interface).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// `send` found the receiver dropped.
    ReceiverDropped,
    /// `recv` found the sender dropped before TLAST.
    SenderDropped,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ReceiverDropped => {
                write!(f, "AXI-Stream receiver dropped mid-packet")
            }
            StreamError::SenderDropped => {
                write!(f, "AXI-Stream sender dropped before TLAST")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A beat-level fault to apply while sending one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeatFault {
    /// Drop the beat at this index entirely (it never reaches the
    /// FIFO). TLAST is re-asserted on the final *kept* beat so the
    /// receiver still sees a framed — but short — packet.
    Drop(usize),
    /// Replace the beat's payload at this index with a non-finite
    /// pattern (bus glitch; NaN is the float analogue of a parity
    /// error and is detected at the IP core).
    Corrupt(usize),
}

/// A bounded AXI4-Stream channel pair (master → slave), used by the
/// threaded co-simulation in [`crate::device`].
pub struct AxiStream {
    tx: Sender<StreamBeat>,
    rx: Receiver<StreamBeat>,
}

impl AxiStream {
    /// Creates a stream with the given FIFO depth (backpressure bound).
    pub fn with_depth(depth: usize) -> AxiStream {
        assert!(depth > 0, "stream FIFO depth must be positive");
        let (tx, rx) = bounded(depth);
        AxiStream { tx, rx }
    }

    /// Splits into (master, slave) ends.
    pub fn split(self) -> (Sender<StreamBeat>, Receiver<StreamBeat>) {
        (self.tx, self.rx)
    }

    /// Sends a full packet (all words, TLAST on the final beat).
    /// Blocks when the FIFO is full — AXI backpressure. Errors if the
    /// receiver end has been dropped.
    pub fn send_packet(tx: &Sender<StreamBeat>, words: &[f32]) -> Result<(), StreamError> {
        Self::send_packet_faulted(tx, words, None)
    }

    /// [`Self::send_packet`] with an optional injected beat fault.
    ///
    /// A `Drop` on a single-beat packet would erase the packet (and
    /// its TLAST) entirely, deadlocking the receiver — so it degrades
    /// to a corruption, which stays detectable.
    pub fn send_packet_faulted(
        tx: &Sender<StreamBeat>,
        words: &[f32],
        fault: Option<BeatFault>,
    ) -> Result<(), StreamError> {
        let n = words.len();
        let fault = match fault {
            Some(BeatFault::Drop(i)) if n <= 1 => Some(BeatFault::Corrupt(i)),
            other => other,
        };
        let dropped = match fault {
            Some(BeatFault::Drop(i)) => Some(i.min(n.saturating_sub(1))),
            _ => None,
        };
        let corrupted = match fault {
            Some(BeatFault::Corrupt(i)) => Some(i.min(n.saturating_sub(1))),
            _ => None,
        };
        // Index of the final beat actually sent, for TLAST placement.
        let last_sent = match dropped {
            Some(i) if i + 1 == n => n.saturating_sub(2),
            _ => n.saturating_sub(1),
        };
        for (i, &w) in words.iter().enumerate() {
            if dropped == Some(i) {
                continue;
            }
            let data = if corrupted == Some(i) { f32::NAN } else { w };
            tx.send(StreamBeat {
                data,
                last: i == last_sent,
            })
            .map_err(|_| StreamError::ReceiverDropped)?;
        }
        Ok(())
    }

    /// Receives one packet (until TLAST). Returns the payload, or an
    /// error if the sender disappears before the packet is framed.
    pub fn recv_packet(rx: &Receiver<StreamBeat>) -> Result<Vec<f32>, StreamError> {
        let mut out = Vec::new();
        loop {
            let beat = rx.recv().map_err(|_| StreamError::SenderDropped)?;
            out.push(beat.data);
            if beat.last {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_cycle_formula() {
        let mut dma = AxiDma::new();
        let c = dma.mm2s(256);
        assert_eq!(c, cnn_hls::calibration::DMA_SETUP_CYCLES + 256);
        let c2 = dma.s2mm(1);
        assert_eq!(c2, cnn_hls::calibration::DMA_SETUP_CYCLES + 1);
        let stats = dma.stats();
        assert_eq!(stats.mm2s_transfers, 1);
        assert_eq!(stats.mm2s_words, 256);
        assert_eq!(stats.s2mm_transfers, 1);
        assert_eq!(stats.s2mm_words, 1);
    }

    #[test]
    fn dma_accumulates_stats() {
        let mut dma = AxiDma::new();
        for _ in 0..10 {
            dma.mm2s(100);
        }
        assert_eq!(dma.stats().mm2s_words, 1000);
        assert_eq!(dma.stats().mm2s_transfers, 10);
    }

    #[test]
    fn stream_packet_roundtrip() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        let words = vec![1.0, 2.0, 3.0];
        let t = std::thread::spawn(move || AxiStream::send_packet(&tx, &words));
        let got = AxiStream::recv_packet(&rx).unwrap();
        t.join().unwrap().unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn stream_applies_backpressure() {
        // Depth 2 with a 5-word packet: sender must block until the
        // receiver drains.
        let s = AxiStream::with_depth(2);
        let (tx, rx) = s.split();
        let words = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let t = std::thread::spawn(move || AxiStream::send_packet(&tx, &words));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let got = AxiStream::recv_packet(&rx).unwrap();
        t.join().unwrap().unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], 5.0);
    }

    #[test]
    fn multiple_packets_keep_boundaries() {
        let s = AxiStream::with_depth(64);
        let (tx, rx) = s.split();
        AxiStream::send_packet(&tx, &[1.0, 2.0]).unwrap();
        AxiStream::send_packet(&tx, &[3.0]).unwrap();
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![1.0, 2.0]);
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![3.0]);
    }

    #[test]
    fn disconnected_receiver_is_error_not_panic() {
        let s = AxiStream::with_depth(4);
        let (tx, rx) = s.split();
        drop(rx);
        assert_eq!(
            AxiStream::send_packet(&tx, &[1.0, 2.0]),
            Err(StreamError::ReceiverDropped)
        );
    }

    #[test]
    fn disconnected_sender_is_error_not_panic() {
        let s = AxiStream::with_depth(4);
        let (tx, rx) = s.split();
        // One unterminated beat, then the sender vanishes.
        tx.send(StreamBeat {
            data: 1.0,
            last: false,
        })
        .unwrap();
        drop(tx);
        assert_eq!(AxiStream::recv_packet(&rx), Err(StreamError::SenderDropped));
    }

    #[test]
    fn dropped_beat_shortens_packet_but_keeps_framing() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0, 3.0], Some(BeatFault::Drop(1))).unwrap();
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![1.0, 3.0]);
    }

    #[test]
    fn dropped_last_beat_moves_tlast_back() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0, 3.0], Some(BeatFault::Drop(2))).unwrap();
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn corrupted_beat_keeps_length_and_is_nan() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0, 3.0], Some(BeatFault::Corrupt(1))).unwrap();
        let got = AxiStream::recv_packet(&rx).unwrap();
        assert_eq!(got.len(), 3);
        assert!(got[1].is_nan());
        assert_eq!(got[2], 3.0);
    }

    #[test]
    fn drop_on_single_beat_packet_degrades_to_corruption() {
        // Dropping the only beat would erase TLAST and wedge the
        // receiver; the fault degrades to a corrupt beat instead.
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[7.0], Some(BeatFault::Drop(0))).unwrap();
        let got = AxiStream::recv_packet(&rx).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].is_nan());
    }

    #[test]
    fn fault_index_clamped_to_packet() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0], Some(BeatFault::Corrupt(99))).unwrap();
        let got = AxiStream::recv_packet(&rx).unwrap();
        assert!(got[1].is_nan());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        AxiStream::with_depth(0);
    }
}
