//! AXI4-Stream and AXI-DMA transaction-level models.
//!
//! The paper's design moves every image from DDR through the AXI DMA
//! into the IP core over a 32-bit AXI4-Stream and returns the class
//! index the same way (Section IV-B). This module provides the cycle
//! accounting for those transfers, a channel-based stream pair for
//! threaded co-simulation, the beat-level fault hooks the
//! [`crate::fault`] injector drives (dropped and corrupted beats), and
//! the end-to-end packet integrity layer: every packet carries a
//! CRC32 trailer word ([`frame_packet`]) that the receiving side
//! verifies ([`check_packet`]), so transport damage is *detected* at
//! the stream boundary instead of silently reaching the core.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::fmt;

/// Words the CRC framing appends to every packet (the trailer).
pub const CRC_WORDS: u64 = 1;

/// Bit pattern a corrupted beat is XORed with: the top mantissa bit,
/// so a finite payload word stays finite but wrong — the silent kind
/// of bus glitch only the CRC trailer can catch (a NaN would already
/// trip the core's non-finite check).
pub const CORRUPT_XOR_MASK: u32 = 0x0040_0000;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over the
/// little-endian byte representation of the payload words — the
/// checksum the MM2S framer appends and the S2MM checker verifies.
pub fn crc32(words: &[f32]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for w in words {
        for byte in w.to_bits().to_le_bytes() {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

/// A packet that failed the CRC integrity check at the receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// The packet had no beats at all (nothing to check).
    Empty,
    /// The trailer word does not match the payload checksum.
    Mismatch {
        /// CRC32 recomputed over the received payload.
        expected: u32,
        /// The trailer word actually received.
        got: u32,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::Empty => write!(f, "empty packet has no CRC trailer"),
            IntegrityError::Mismatch { expected, got } => {
                write!(
                    f,
                    "CRC mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Frames a payload for transmission: payload words followed by one
/// CRC32 trailer word (the checksum bits reinterpreted as an `f32`
/// beat — the stream carries raw 32-bit words, not numbers).
pub fn frame_packet(payload: &[f32]) -> Vec<f32> {
    let mut framed = Vec::with_capacity(payload.len() + 1);
    framed.extend_from_slice(payload);
    framed.push(f32::from_bits(crc32(payload)));
    framed
}

/// Verifies a received frame's CRC trailer and returns the payload
/// slice. Any dropped or corrupted beat — payload *or* trailer —
/// surfaces here as an [`IntegrityError`].
pub fn check_packet(frame: &[f32]) -> Result<&[f32], IntegrityError> {
    let (trailer, payload) = frame.split_last().ok_or(IntegrityError::Empty)?;
    let expected = crc32(payload);
    let got = trailer.to_bits();
    if got != expected {
        return Err(IntegrityError::Mismatch { expected, got });
    }
    Ok(payload)
}

/// Cycle accounting for one DMA engine (both directions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Completed MM2S (memory → stream) transfers.
    pub mm2s_transfers: u64,
    /// Words moved MM2S.
    pub mm2s_words: u64,
    /// Completed S2MM (stream → memory) transfers.
    pub s2mm_transfers: u64,
    /// Words moved S2MM.
    pub s2mm_words: u64,
}

/// Transaction-level AXI DMA: computes the fabric cycles a transfer
/// occupies and tallies statistics.
#[derive(Clone, Debug, Default)]
pub struct AxiDma {
    stats: DmaStats,
}

impl AxiDma {
    /// New idle engine.
    pub fn new() -> AxiDma {
        AxiDma::default()
    }

    /// Cycles to move `words` 32-bit words memory→stream: descriptor
    /// setup plus one beat per word.
    pub fn mm2s(&mut self, words: u64) -> u64 {
        self.stats.mm2s_transfers += 1;
        self.stats.mm2s_words += words;
        let cycles = cnn_hls::calibration::DMA_SETUP_CYCLES
            + words / cnn_hls::calibration::STREAM_WORDS_PER_CYCLE;
        cnn_trace::counter_add("cnn_dma_beats_total", &[("channel", "mm2s")], words);
        cnn_trace::advance_cycles(cycles);
        cycles
    }

    /// Cycles to move `words` words stream→memory.
    pub fn s2mm(&mut self, words: u64) -> u64 {
        self.stats.s2mm_transfers += 1;
        self.stats.s2mm_words += words;
        let cycles = cnn_hls::calibration::DMA_SETUP_CYCLES
            + words / cnn_hls::calibration::STREAM_WORDS_PER_CYCLE;
        cnn_trace::counter_add("cnn_dma_beats_total", &[("channel", "s2mm")], words);
        cnn_trace::advance_cycles(cycles);
        cycles
    }

    /// Statistics so far.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }
}

/// One 32-bit AXI4-Stream beat: data plus TLAST.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamBeat {
    /// Payload word.
    pub data: f32,
    /// End-of-packet marker.
    pub last: bool,
}

/// Stream transport failure: the other end of the channel went away
/// mid-packet (a torn-down co-simulation thread, the model's analogue
/// of a wedged stream interface).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// `send` found the receiver dropped.
    ReceiverDropped,
    /// `recv` found the sender dropped before TLAST.
    SenderDropped,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::ReceiverDropped => {
                write!(f, "AXI-Stream receiver dropped mid-packet")
            }
            StreamError::SenderDropped => {
                write!(f, "AXI-Stream sender dropped before TLAST")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A beat-level fault to apply while sending one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeatFault {
    /// Drop the beat at this index entirely (it never reaches the
    /// FIFO). TLAST is re-asserted on the final *kept* beat so the
    /// receiver still sees a framed — but short — packet.
    Drop(usize),
    /// XOR the beat's payload at this index with
    /// [`CORRUPT_XOR_MASK`]: a silent single-beat glitch that leaves
    /// the word finite and plausible — undetectable at the core,
    /// caught only by the CRC trailer check.
    Corrupt(usize),
}

/// Applies a beat fault to an in-memory packet, exactly as the
/// streaming sender would damage it — the fast driver loop and the
/// threaded co-simulation share this so their damaged packets are
/// bit-identical.
///
/// A `Drop` on a single-beat packet would erase the packet (and its
/// TLAST) entirely, deadlocking the receiver — so it degrades to a
/// corruption, which stays detectable.
pub fn apply_beat_fault(packet: &mut Vec<f32>, fault: BeatFault) {
    let n = packet.len();
    if n == 0 {
        return;
    }
    match fault {
        BeatFault::Drop(i) if n > 1 => {
            packet.remove(i.min(n - 1));
        }
        BeatFault::Drop(i) | BeatFault::Corrupt(i) => {
            let i = i.min(n - 1);
            packet[i] = f32::from_bits(packet[i].to_bits() ^ CORRUPT_XOR_MASK);
        }
    }
}

/// A bounded AXI4-Stream channel pair (master → slave), used by the
/// threaded co-simulation in [`crate::device`].
pub struct AxiStream {
    tx: Sender<StreamBeat>,
    rx: Receiver<StreamBeat>,
}

impl AxiStream {
    /// Creates a stream with the given FIFO depth (backpressure bound).
    pub fn with_depth(depth: usize) -> AxiStream {
        assert!(depth > 0, "stream FIFO depth must be positive");
        let (tx, rx) = bounded(depth);
        AxiStream { tx, rx }
    }

    /// Splits into (master, slave) ends.
    pub fn split(self) -> (Sender<StreamBeat>, Receiver<StreamBeat>) {
        (self.tx, self.rx)
    }

    /// Sends a full packet (all words, TLAST on the final beat).
    /// Blocks when the FIFO is full — AXI backpressure. Errors if the
    /// receiver end has been dropped.
    pub fn send_packet(tx: &Sender<StreamBeat>, words: &[f32]) -> Result<(), StreamError> {
        Self::send_packet_faulted(tx, words, None)
    }

    /// [`Self::send_packet`] with an optional injected beat fault
    /// (applied via [`apply_beat_fault`], so the wire sees exactly
    /// the damage the in-process fast path models).
    pub fn send_packet_faulted(
        tx: &Sender<StreamBeat>,
        words: &[f32],
        fault: Option<BeatFault>,
    ) -> Result<(), StreamError> {
        let damaged;
        let to_send: &[f32] = match fault {
            Some(f) => {
                let mut packet = words.to_vec();
                apply_beat_fault(&mut packet, f);
                damaged = packet;
                &damaged
            }
            None => words,
        };
        let last = to_send.len().saturating_sub(1);
        for (i, &data) in to_send.iter().enumerate() {
            tx.send(StreamBeat {
                data,
                last: i == last,
            })
            .map_err(|_| StreamError::ReceiverDropped)?;
        }
        Ok(())
    }

    /// Receives one packet (until TLAST). Returns the payload, or an
    /// error if the sender disappears before the packet is framed.
    pub fn recv_packet(rx: &Receiver<StreamBeat>) -> Result<Vec<f32>, StreamError> {
        let mut out = Vec::new();
        loop {
            let beat = rx.recv().map_err(|_| StreamError::SenderDropped)?;
            out.push(beat.data);
            if beat.last {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_cycle_formula() {
        let mut dma = AxiDma::new();
        let c = dma.mm2s(256);
        assert_eq!(c, cnn_hls::calibration::DMA_SETUP_CYCLES + 256);
        let c2 = dma.s2mm(1);
        assert_eq!(c2, cnn_hls::calibration::DMA_SETUP_CYCLES + 1);
        let stats = dma.stats();
        assert_eq!(stats.mm2s_transfers, 1);
        assert_eq!(stats.mm2s_words, 256);
        assert_eq!(stats.s2mm_transfers, 1);
        assert_eq!(stats.s2mm_words, 1);
    }

    #[test]
    fn dma_accumulates_stats() {
        let mut dma = AxiDma::new();
        for _ in 0..10 {
            dma.mm2s(100);
        }
        assert_eq!(dma.stats().mm2s_words, 1000);
        assert_eq!(dma.stats().mm2s_transfers, 10);
    }

    #[test]
    fn stream_packet_roundtrip() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        let words = vec![1.0, 2.0, 3.0];
        let t = std::thread::spawn(move || AxiStream::send_packet(&tx, &words));
        let got = AxiStream::recv_packet(&rx).unwrap();
        t.join().unwrap().unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn stream_applies_backpressure() {
        // Depth 2 with a 5-word packet: sender must block until the
        // receiver drains.
        let s = AxiStream::with_depth(2);
        let (tx, rx) = s.split();
        let words = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let t = std::thread::spawn(move || AxiStream::send_packet(&tx, &words));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let got = AxiStream::recv_packet(&rx).unwrap();
        t.join().unwrap().unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], 5.0);
    }

    #[test]
    fn multiple_packets_keep_boundaries() {
        let s = AxiStream::with_depth(64);
        let (tx, rx) = s.split();
        AxiStream::send_packet(&tx, &[1.0, 2.0]).unwrap();
        AxiStream::send_packet(&tx, &[3.0]).unwrap();
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![1.0, 2.0]);
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![3.0]);
    }

    #[test]
    fn disconnected_receiver_is_error_not_panic() {
        let s = AxiStream::with_depth(4);
        let (tx, rx) = s.split();
        drop(rx);
        assert_eq!(
            AxiStream::send_packet(&tx, &[1.0, 2.0]),
            Err(StreamError::ReceiverDropped)
        );
    }

    #[test]
    fn disconnected_sender_is_error_not_panic() {
        let s = AxiStream::with_depth(4);
        let (tx, rx) = s.split();
        // One unterminated beat, then the sender vanishes.
        tx.send(StreamBeat {
            data: 1.0,
            last: false,
        })
        .unwrap();
        drop(tx);
        assert_eq!(AxiStream::recv_packet(&rx), Err(StreamError::SenderDropped));
    }

    #[test]
    fn dropped_beat_shortens_packet_but_keeps_framing() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0, 3.0], Some(BeatFault::Drop(1))).unwrap();
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![1.0, 3.0]);
    }

    #[test]
    fn dropped_last_beat_moves_tlast_back() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0, 3.0], Some(BeatFault::Drop(2))).unwrap();
        assert_eq!(AxiStream::recv_packet(&rx).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn corrupted_beat_keeps_length_and_flips_bits() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0, 3.0], Some(BeatFault::Corrupt(1))).unwrap();
        let got = AxiStream::recv_packet(&rx).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[1].to_bits(), 2.0f32.to_bits() ^ CORRUPT_XOR_MASK);
        assert!(got[1].is_finite(), "silent corruption must stay finite");
        assert_eq!(got[2], 3.0);
    }

    #[test]
    fn drop_on_single_beat_packet_degrades_to_corruption() {
        // Dropping the only beat would erase TLAST and wedge the
        // receiver; the fault degrades to a corrupt beat instead.
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[7.0], Some(BeatFault::Drop(0))).unwrap();
        let got = AxiStream::recv_packet(&rx).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].to_bits(), 7.0f32.to_bits() ^ CORRUPT_XOR_MASK);
    }

    #[test]
    fn fault_index_clamped_to_packet() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        AxiStream::send_packet_faulted(&tx, &[1.0, 2.0], Some(BeatFault::Corrupt(99))).unwrap();
        let got = AxiStream::recv_packet(&rx).unwrap();
        assert_eq!(got[1].to_bits(), 2.0f32.to_bits() ^ CORRUPT_XOR_MASK);
    }

    #[test]
    fn crc_roundtrip_accepts_clean_frame() {
        let payload = vec![1.5f32, -2.25, 0.0, 1e-20];
        let framed = frame_packet(&payload);
        assert_eq!(framed.len(), payload.len() + CRC_WORDS as usize);
        assert_eq!(check_packet(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn crc_detects_corrupted_beat() {
        let payload = vec![1.0f32, 2.0, 3.0];
        let mut framed = frame_packet(&payload);
        apply_beat_fault(&mut framed, BeatFault::Corrupt(1));
        assert!(matches!(
            check_packet(&framed),
            Err(IntegrityError::Mismatch { .. })
        ));
    }

    #[test]
    fn crc_detects_dropped_beat() {
        let payload = vec![1.0f32, 2.0, 3.0];
        let mut framed = frame_packet(&payload);
        apply_beat_fault(&mut framed, BeatFault::Drop(0));
        assert!(check_packet(&framed).is_err());
    }

    #[test]
    fn crc_detects_corrupted_trailer_itself() {
        let payload = vec![4.0f32, 5.0];
        let mut framed = frame_packet(&payload);
        let last = framed.len() - 1;
        apply_beat_fault(&mut framed, BeatFault::Corrupt(last));
        assert!(matches!(
            check_packet(&framed),
            Err(IntegrityError::Mismatch { .. })
        ));
    }

    #[test]
    fn empty_frame_is_integrity_error() {
        assert!(matches!(check_packet(&[]), Err(IntegrityError::Empty)));
    }

    #[test]
    fn crc_empty_payload_roundtrips() {
        let framed = frame_packet(&[]);
        assert_eq!(framed.len(), 1);
        assert_eq!(check_packet(&framed).unwrap(), &[] as &[f32]);
    }

    #[test]
    fn crc_matches_known_ieee_vector() {
        // CRC-32/IEEE of the ASCII bytes "123456789" is 0xCBF43926.
        // Feed those bytes through the f32 word path: words are
        // hashed as little-endian u32 bit patterns, so pack the
        // first 8 bytes into two words and check a one-word tail
        // separately via an independent all-zeros identity.
        let words: Vec<f32> = [0x3433_3231u32, 0x3837_3635]
            .iter()
            .map(|&b| f32::from_bits(b))
            .collect();
        // Independent reference value computed with the bitwise
        // reflected algorithm over bytes 31 32 ... 38.
        assert_eq!(crc32(&words), 0x9AE0_DAAF);
        // A zero payload must not hash to zero (guards against a
        // degenerate implementation that ignores input length).
        assert_ne!(crc32(&[0.0; 4]), crc32(&[0.0; 5]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        AxiStream::with_depth(0);
    }
}
