//! AXI4-Stream and AXI-DMA transaction-level models.
//!
//! The paper's design moves every image from DDR through the AXI DMA
//! into the IP core over a 32-bit AXI4-Stream and returns the class
//! index the same way (Section IV-B). This module provides the cycle
//! accounting for those transfers and a channel-based stream pair for
//! threaded co-simulation.

use crossbeam::channel::{bounded, Receiver, Sender};

/// Cycle accounting for one DMA engine (both directions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Completed MM2S (memory → stream) transfers.
    pub mm2s_transfers: u64,
    /// Words moved MM2S.
    pub mm2s_words: u64,
    /// Completed S2MM (stream → memory) transfers.
    pub s2mm_transfers: u64,
    /// Words moved S2MM.
    pub s2mm_words: u64,
}

/// Transaction-level AXI DMA: computes the fabric cycles a transfer
/// occupies and tallies statistics.
#[derive(Clone, Debug, Default)]
pub struct AxiDma {
    stats: DmaStats,
}

impl AxiDma {
    /// New idle engine.
    pub fn new() -> AxiDma {
        AxiDma::default()
    }

    /// Cycles to move `words` 32-bit words memory→stream: descriptor
    /// setup plus one beat per word.
    pub fn mm2s(&mut self, words: u64) -> u64 {
        self.stats.mm2s_transfers += 1;
        self.stats.mm2s_words += words;
        cnn_hls::calibration::DMA_SETUP_CYCLES
            + words / cnn_hls::calibration::STREAM_WORDS_PER_CYCLE
    }

    /// Cycles to move `words` words stream→memory.
    pub fn s2mm(&mut self, words: u64) -> u64 {
        self.stats.s2mm_transfers += 1;
        self.stats.s2mm_words += words;
        cnn_hls::calibration::DMA_SETUP_CYCLES
            + words / cnn_hls::calibration::STREAM_WORDS_PER_CYCLE
    }

    /// Statistics so far.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }
}

/// One 32-bit AXI4-Stream beat: data plus TLAST.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamBeat {
    /// Payload word.
    pub data: f32,
    /// End-of-packet marker.
    pub last: bool,
}

/// A bounded AXI4-Stream channel pair (master → slave), used by the
/// threaded co-simulation in [`crate::device`].
pub struct AxiStream {
    tx: Sender<StreamBeat>,
    rx: Receiver<StreamBeat>,
}

impl AxiStream {
    /// Creates a stream with the given FIFO depth (backpressure bound).
    pub fn with_depth(depth: usize) -> AxiStream {
        assert!(depth > 0, "stream FIFO depth must be positive");
        let (tx, rx) = bounded(depth);
        AxiStream { tx, rx }
    }

    /// Splits into (master, slave) ends.
    pub fn split(self) -> (Sender<StreamBeat>, Receiver<StreamBeat>) {
        (self.tx, self.rx)
    }

    /// Sends a full packet (all words, TLAST on the final beat).
    /// Blocks when the FIFO is full — AXI backpressure.
    pub fn send_packet(tx: &Sender<StreamBeat>, words: &[f32]) {
        let n = words.len();
        for (i, &w) in words.iter().enumerate() {
            tx.send(StreamBeat { data: w, last: i + 1 == n })
                .expect("stream receiver dropped");
        }
    }

    /// Receives one packet (until TLAST). Returns the payload.
    pub fn recv_packet(rx: &Receiver<StreamBeat>) -> Vec<f32> {
        let mut out = Vec::new();
        loop {
            let beat = rx.recv().expect("stream sender dropped");
            out.push(beat.data);
            if beat.last {
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_cycle_formula() {
        let mut dma = AxiDma::new();
        let c = dma.mm2s(256);
        assert_eq!(c, cnn_hls::calibration::DMA_SETUP_CYCLES + 256);
        let c2 = dma.s2mm(1);
        assert_eq!(c2, cnn_hls::calibration::DMA_SETUP_CYCLES + 1);
        let stats = dma.stats();
        assert_eq!(stats.mm2s_transfers, 1);
        assert_eq!(stats.mm2s_words, 256);
        assert_eq!(stats.s2mm_transfers, 1);
        assert_eq!(stats.s2mm_words, 1);
    }

    #[test]
    fn dma_accumulates_stats() {
        let mut dma = AxiDma::new();
        for _ in 0..10 {
            dma.mm2s(100);
        }
        assert_eq!(dma.stats().mm2s_words, 1000);
        assert_eq!(dma.stats().mm2s_transfers, 10);
    }

    #[test]
    fn stream_packet_roundtrip() {
        let s = AxiStream::with_depth(8);
        let (tx, rx) = s.split();
        let words = vec![1.0, 2.0, 3.0];
        let t = std::thread::spawn(move || AxiStream::send_packet(&tx, &words));
        let got = AxiStream::recv_packet(&rx);
        t.join().unwrap();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn stream_applies_backpressure() {
        // Depth 2 with a 5-word packet: sender must block until the
        // receiver drains.
        let s = AxiStream::with_depth(2);
        let (tx, rx) = s.split();
        let words = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let t = std::thread::spawn(move || AxiStream::send_packet(&tx, &words));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let got = AxiStream::recv_packet(&rx);
        t.join().unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], 5.0);
    }

    #[test]
    fn multiple_packets_keep_boundaries() {
        let s = AxiStream::with_depth(64);
        let (tx, rx) = s.split();
        AxiStream::send_packet(&tx, &[1.0, 2.0]);
        AxiStream::send_packet(&tx, &[3.0]);
        assert_eq!(AxiStream::recv_packet(&rx), vec![1.0, 2.0]);
        assert_eq!(AxiStream::recv_packet(&rx), vec![3.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        AxiStream::with_depth(0);
    }
}
