//! The CNN IP core executor.
//!
//! Functionally, the core evaluates the same single-precision network
//! as the software reference — the generated C++ is a literal
//! transcription of the layer math — so its classifications are
//! **bit-identical** to the software path (the paper's Section V-A
//! observation that hardware and software report the same prediction
//! error). Temporally, each image costs the cycles of the HLS
//! schedule: `latency` for an isolated image, `interval` per image in
//! a DATAFLOW-pipelined stream.

use cnn_hls::HlsProject;
use cnn_nn::Network;
use cnn_tensor::{Shape, Tensor};
use std::fmt;

/// A malformed input packet, as the core's stream interface would
/// flag it: wrong word count (a dropped beat shortened the packet) or
/// a non-finite payload word (the float analogue of a parity error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketError {
    /// The packet carried `got` words, the core expects `want`.
    BadLength {
        /// Words received.
        got: usize,
        /// Words the input shape requires.
        want: usize,
    },
    /// The word at `index` is NaN/infinite.
    NonFinite {
        /// Index of the corrupt word.
        index: usize,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::BadLength { got, want } => {
                write!(f, "packet length {got} != expected {want}")
            }
            PacketError::NonFinite { index } => {
                write!(f, "non-finite payload word at beat {index}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// A synthesized CNN IP core ready to be dropped into the block design.
#[derive(Clone, Debug)]
pub struct CnnIpCore {
    network: Network,
    latency_cycles: u64,
    interval_cycles: u64,
    dataflow: bool,
    input_shape: Shape,
}

impl CnnIpCore {
    /// Builds the core from a synthesized project.
    pub fn from_project(project: &HlsProject) -> CnnIpCore {
        let s = project.schedule();
        CnnIpCore {
            network: project.network().clone(),
            latency_cycles: s.latency_cycles,
            interval_cycles: s.interval_cycles,
            dataflow: s.dataflow,
            input_shape: project.network().input_shape(),
        }
    }

    /// The network the core evaluates (the weights "baked into" the
    /// fabric) — the source the on-device weight image is built from.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The same schedule with `network`'s weights swapped in — how the
    /// device models an upset weight memory: identical timing (the HLS
    /// schedule depends only on the architecture, which an SEU cannot
    /// change), different arithmetic.
    pub fn with_network(&self, network: Network) -> CnnIpCore {
        CnnIpCore {
            network,
            ..self.clone()
        }
    }

    /// Expected input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// Words per input packet.
    pub fn input_words(&self) -> u64 {
        self.input_shape.len() as u64
    }

    /// Per-image latency (cycles).
    pub fn latency_cycles(&self) -> u64 {
        self.latency_cycles
    }

    /// Steady-state initiation interval (cycles).
    pub fn interval_cycles(&self) -> u64 {
        self.interval_cycles
    }

    /// Whether the core is task-pipelined (DATAFLOW).
    pub fn dataflow(&self) -> bool {
        self.dataflow
    }

    /// Processes one raw input packet (flat CHW floats); returns the
    /// predicted class — the `int` the generated function returns.
    pub fn process_packet(&self, words: &[f32]) -> usize {
        assert_eq!(
            words.len() as u64,
            self.input_words(),
            "packet length {} != expected {}",
            words.len(),
            self.input_words()
        );
        let t = Tensor::from_vec(self.input_shape, words.to_vec());
        self.network.predict(&t)
    }

    /// [`Self::process_packet`] with integrity checking instead of a
    /// panic: rejects short/long packets and non-finite words, the
    /// two signatures the fault injector's beat faults leave behind.
    pub fn try_process_packet(&self, words: &[f32]) -> Result<usize, PacketError> {
        let want = self.input_words() as usize;
        if words.len() != want {
            return Err(PacketError::BadLength {
                got: words.len(),
                want,
            });
        }
        if let Some(index) = words.iter().position(|w| !w.is_finite()) {
            return Err(PacketError::NonFinite { index });
        }
        let t = Tensor::from_vec(self.input_shape, words.to_vec());
        Ok(self.network.predict(&t))
    }

    /// Processes one image tensor.
    pub fn process(&self, image: &Tensor) -> usize {
        self.network.predict(image)
    }

    /// Cycles consumed by a back-to-back batch of `n` images.
    pub fn batch_cycles(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else if self.dataflow {
            self.latency_cycles + (n - 1) * self.interval_cycles
        } else {
            n * self.latency_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_hls::{DirectiveSet, FpgaPart};
    use cnn_tensor::init::{seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;

    fn test1_project(directives: DirectiveSet) -> HlsProject {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        HlsProject::new(&net, directives, FpgaPart::zynq7020()).unwrap()
    }

    #[test]
    fn predictions_bit_identical_to_software() {
        let project = test1_project(DirectiveSet::optimized());
        let core = CnnIpCore::from_project(&project);
        let mut rng = seeded_rng(77);
        for _ in 0..50 {
            let img =
                cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0));
            assert_eq!(core.process(&img), project.network().predict(&img));
        }
    }

    #[test]
    fn packet_and_tensor_paths_agree() {
        let core = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        let mut rng = seeded_rng(3);
        let img =
            cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0));
        assert_eq!(core.process(&img), core.process_packet(img.as_slice()));
    }

    #[test]
    #[should_panic(expected = "packet length")]
    fn bad_packet_length_panics() {
        let core = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        core.process_packet(&[0.0; 100]);
    }

    #[test]
    fn try_process_packet_rejects_short_packet() {
        let core = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        assert_eq!(
            core.try_process_packet(&[0.0; 100]),
            Err(PacketError::BadLength {
                got: 100,
                want: 256
            })
        );
    }

    #[test]
    fn try_process_packet_rejects_nan_word() {
        let core = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        let mut words = vec![0.5f32; 256];
        words[17] = f32::NAN;
        assert_eq!(
            core.try_process_packet(&words),
            Err(PacketError::NonFinite { index: 17 })
        );
        words[17] = f32::INFINITY;
        assert_eq!(
            core.try_process_packet(&words),
            Err(PacketError::NonFinite { index: 17 })
        );
    }

    #[test]
    fn try_process_packet_matches_process_on_clean_input() {
        let core = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        let mut rng = seeded_rng(5);
        let img =
            cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0));
        assert_eq!(
            core.try_process_packet(img.as_slice()),
            Ok(core.process(&img))
        );
    }

    #[test]
    fn batch_cycles_semantics() {
        let naive = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        assert!(!naive.dataflow());
        assert_eq!(naive.batch_cycles(3), 3 * naive.latency_cycles());

        let opt = CnnIpCore::from_project(&test1_project(DirectiveSet::optimized()));
        assert!(opt.dataflow());
        assert_eq!(
            opt.batch_cycles(3),
            opt.latency_cycles() + 2 * opt.interval_cycles()
        );
        assert_eq!(opt.batch_cycles(0), 0);
    }

    #[test]
    fn optimized_core_is_faster_per_batch() {
        let naive = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        let opt = CnnIpCore::from_project(&test1_project(DirectiveSet::optimized()));
        assert!(opt.batch_cycles(1000) < naive.batch_cycles(1000));
    }

    #[test]
    fn input_words_match_shape() {
        let core = CnnIpCore::from_project(&test1_project(DirectiveSet::naive()));
        assert_eq!(core.input_words(), 256);
        assert_eq!(core.input_shape(), Shape::new(1, 16, 16));
    }
}
