//! Register-level AXI DMA model (simple/direct-register mode).
//!
//! The paper's PS-side software talks to the AXI DMA through its
//! memory-mapped register file (via the ZedBoard Linux DMA driver the
//! authors reference). This module models the subset that driver
//! programs for simple transfers — control, status, address and
//! length registers for both channels — with the documented state
//! machine: reset → halted → running → idle-on-IOC, **including the
//! DMASR error surface** (DMAIntErr/DMASlvErr/DMADecErr, sticky until
//! soft reset) and the Xilinx recovery sequence a real driver runs
//! when a channel halts or stalls.

use serde::Serialize;
use std::fmt;

/// Register offsets (bytes) of the AXI DMA register map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum DmaReg {
    Mm2sDmacr = 0x00,
    Mm2sDmasr = 0x04,
    Mm2sSa = 0x18,
    Mm2sLength = 0x28,
    S2mmDmacr = 0x30,
    S2mmDmasr = 0x34,
    S2mmDa = 0x48,
    S2mmLength = 0x58,
}

/// The two channels of one AXI DMA engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum DmaChannel {
    /// Memory → stream (reads DDR, feeds the fabric).
    Mm2s,
    /// Stream → memory (drains the fabric, writes DDR).
    S2mm,
}

impl fmt::Display for DmaChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaChannel::Mm2s => write!(f, "MM2S"),
            DmaChannel::S2mm => write!(f, "S2MM"),
        }
    }
}

/// DMACR bits.
pub mod cr {
    /// Run/stop.
    pub const RS: u32 = 1 << 0;
    /// Soft reset.
    pub const RESET: u32 = 1 << 2;
    /// Interrupt on complete enable.
    pub const IOC_IRQ_EN: u32 = 1 << 12;
}

/// DMASR bits.
pub mod sr {
    /// Channel halted.
    pub const HALTED: u32 = 1 << 0;
    /// Channel idle (transfer done).
    pub const IDLE: u32 = 1 << 1;
    /// DMA internal error (e.g. zero-length descriptor).
    pub const DMA_INT_ERR: u32 = 1 << 4;
    /// DMA slave error (slave responded with an error on the memory bus).
    pub const DMA_SLV_ERR: u32 = 1 << 5;
    /// DMA decode error (address decoded to no slave at all).
    pub const DMA_DEC_ERR: u32 = 1 << 6;
    /// Interrupt on complete (write-1-to-clear).
    pub const IOC_IRQ: u32 = 1 << 12;
    /// Error interrupt (write-1-to-clear; the error *cause* bits stay
    /// sticky until soft reset, as on the real engine).
    pub const ERR_IRQ: u32 = 1 << 14;

    /// Mask of the three sticky error-cause bits.
    pub const ANY_ERR: u32 = DMA_INT_ERR | DMA_SLV_ERR | DMA_DEC_ERR;
}

/// Typed failures of the DMA register protocol and engine — what the
/// PS-side driver distinguishes by reading DMASR (replaces the old
/// `&'static str` returns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaError {
    /// A transfer was programmed while the channel was halted.
    Halted(DmaChannel),
    /// A zero-length transfer was programmed (raises DMAIntErr).
    ZeroLength(DmaChannel),
    /// The engine reported DMAIntErr and halted.
    InternalError(DmaChannel),
    /// The engine reported DMASlvErr and halted.
    SlaveError(DmaChannel),
    /// The engine reported DMADecErr and halted.
    DecodeError(DmaChannel),
    /// The channel neither completed nor errored within the driver's
    /// poll budget (a stalled stream).
    Timeout(DmaChannel),
}

impl DmaError {
    /// The channel the error was observed on.
    pub fn channel(&self) -> DmaChannel {
        match *self {
            DmaError::Halted(ch)
            | DmaError::ZeroLength(ch)
            | DmaError::InternalError(ch)
            | DmaError::SlaveError(ch)
            | DmaError::DecodeError(ch)
            | DmaError::Timeout(ch) => ch,
        }
    }

    /// Whether the engine needs a soft reset before it can be reused
    /// (everything except protocol misuse on a still-halted channel).
    pub fn needs_reset(&self) -> bool {
        !matches!(self, DmaError::Halted(_))
    }
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::Halted(ch) => write!(f, "{ch}: length written while channel halted"),
            DmaError::ZeroLength(ch) => write!(f, "{ch}: zero-length transfer raises DMAIntErr"),
            DmaError::InternalError(ch) => write!(f, "{ch}: DMAIntErr — engine halted"),
            DmaError::SlaveError(ch) => write!(f, "{ch}: DMASlvErr — engine halted"),
            DmaError::DecodeError(ch) => write!(f, "{ch}: DMADecErr — engine halted"),
            DmaError::Timeout(ch) => {
                write!(f, "{ch}: no completion within the poll budget (stalled)")
            }
        }
    }
}

impl std::error::Error for DmaError {}

/// A hardware fault armed on a channel, consumed by its next transfer
/// (the fault injector's handle into the register model).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum HwFault {
    /// The transfer hangs: the channel goes busy and never completes.
    Stall,
    /// The engine halts with DMAIntErr.
    IntErr,
    /// The engine halts with DMASlvErr.
    SlvErr,
    /// The engine halts with DMADecErr.
    DecErr,
}

/// One DMA channel's architectural state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
struct Channel {
    cr: u32,
    srr: u32, // status
    addr: u32,
    length: u32,
    /// Total bytes moved (model bookkeeping).
    bytes_moved: u64,
    transfers: u64,
    /// Soft resets seen (model bookkeeping; survives reset).
    resets: u64,
    /// Fault armed for the next transfer.
    pending: Option<HwFault>,
}

impl Channel {
    fn reset(&mut self) {
        *self = Channel {
            srr: sr::HALTED,
            resets: self.resets,
            ..Channel::default()
        };
    }

    fn write_cr(&mut self, v: u32) {
        if v & cr::RESET != 0 {
            self.reset();
            self.resets += 1;
            return;
        }
        self.cr = v;
        if v & cr::RS != 0 {
            // Running: leave halted state, become idle until a length
            // write kicks a transfer.
            self.srr &= !sr::HALTED;
            self.srr |= sr::IDLE;
        } else {
            self.srr |= sr::HALTED;
        }
    }

    /// Enters the architectural error state: cause bit + Err_Irq set,
    /// RS cleared, channel halted (PG021's halt-on-error behavior).
    fn raise_error(&mut self, bit: u32) {
        self.srr |= bit | sr::ERR_IRQ | sr::HALTED;
        self.srr &= !sr::IDLE;
        self.cr &= !cr::RS;
    }

    fn write_length(&mut self, ch: DmaChannel, v: u32) -> Result<(), DmaError> {
        let v = v & 0x03FF_FFFF; // 26-bit length field
        if self.srr & sr::HALTED != 0 {
            return Err(DmaError::Halted(ch));
        }
        if v == 0 {
            self.raise_error(sr::DMA_INT_ERR);
            return Err(DmaError::ZeroLength(ch));
        }
        match self.pending.take() {
            Some(HwFault::Stall) => {
                // Transfer accepted but never completes: busy state,
                // no IOC, no error bits — only the driver's bounded
                // poll can notice.
                self.length = v;
                self.srr &= !sr::IDLE;
                Ok(())
            }
            Some(HwFault::IntErr) => {
                self.raise_error(sr::DMA_INT_ERR);
                Ok(())
            }
            Some(HwFault::SlvErr) => {
                self.raise_error(sr::DMA_SLV_ERR);
                Ok(())
            }
            Some(HwFault::DecErr) => {
                self.raise_error(sr::DMA_DEC_ERR);
                Ok(())
            }
            None => {
                self.length = v;
                // Simple-mode transfers complete "instantly" at this
                // abstraction; cycle costs live in [`crate::axi::AxiDma`].
                self.bytes_moved += v as u64;
                self.transfers += 1;
                self.srr |= sr::IDLE;
                if self.cr & cr::IOC_IRQ_EN != 0 {
                    self.srr |= sr::IOC_IRQ;
                }
                Ok(())
            }
        }
    }

    /// Decodes the sticky error-cause bits, if any.
    fn error(&self, ch: DmaChannel) -> Option<DmaError> {
        if self.srr & sr::DMA_INT_ERR != 0 {
            Some(DmaError::InternalError(ch))
        } else if self.srr & sr::DMA_SLV_ERR != 0 {
            Some(DmaError::SlaveError(ch))
        } else if self.srr & sr::DMA_DEC_ERR != 0 {
            Some(DmaError::DecodeError(ch))
        } else {
            None
        }
    }
}

/// The register file of one AXI DMA instance.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AxiDmaRegs {
    mm2s: Channel,
    s2mm: Channel,
}

impl AxiDmaRegs {
    /// Power-on state: both channels halted.
    pub fn new() -> AxiDmaRegs {
        let mut d = AxiDmaRegs::default();
        d.mm2s.reset();
        d.s2mm.reset();
        d
    }

    /// Register write (the PS's `iowrite32`).
    pub fn write(&mut self, reg: DmaReg, value: u32) -> Result<(), DmaError> {
        cnn_trace::counter_add("cnn_dma_reg_writes_total", &[], 1);
        match reg {
            DmaReg::Mm2sDmacr => {
                self.mm2s.write_cr(value);
                Ok(())
            }
            DmaReg::S2mmDmacr => {
                self.s2mm.write_cr(value);
                Ok(())
            }
            DmaReg::Mm2sSa => {
                self.mm2s.addr = value;
                Ok(())
            }
            DmaReg::S2mmDa => {
                self.s2mm.addr = value;
                Ok(())
            }
            DmaReg::Mm2sLength => self.mm2s.write_length(DmaChannel::Mm2s, value),
            DmaReg::S2mmLength => self.s2mm.write_length(DmaChannel::S2mm, value),
            DmaReg::Mm2sDmasr => {
                // write-1-to-clear interrupt bits; the error-cause
                // bits stay sticky until soft reset.
                self.mm2s.srr &= !(value & (sr::IOC_IRQ | sr::ERR_IRQ));
                Ok(())
            }
            DmaReg::S2mmDmasr => {
                self.s2mm.srr &= !(value & (sr::IOC_IRQ | sr::ERR_IRQ));
                Ok(())
            }
        }
    }

    /// Register read (the PS's `ioread32`).
    pub fn read(&self, reg: DmaReg) -> u32 {
        match reg {
            DmaReg::Mm2sDmacr => self.mm2s.cr,
            DmaReg::Mm2sDmasr => self.mm2s.srr,
            DmaReg::Mm2sSa => self.mm2s.addr,
            DmaReg::Mm2sLength => self.mm2s.length,
            DmaReg::S2mmDmacr => self.s2mm.cr,
            DmaReg::S2mmDmasr => self.s2mm.srr,
            DmaReg::S2mmDa => self.s2mm.addr,
            DmaReg::S2mmLength => self.s2mm.length,
        }
    }

    /// Arms `fault` on `ch`: its next programmed transfer misbehaves
    /// accordingly. Consumed by that transfer (or cleared by reset).
    pub fn inject(&mut self, ch: DmaChannel, fault: HwFault) {
        self.channel_mut(ch).pending = Some(fault);
    }

    /// The sticky error state of `ch`, decoded from DMASR.
    pub fn channel_error(&self, ch: DmaChannel) -> Option<DmaError> {
        self.channel(ch).error(ch)
    }

    fn channel(&self, ch: DmaChannel) -> &Channel {
        match ch {
            DmaChannel::Mm2s => &self.mm2s,
            DmaChannel::S2mm => &self.s2mm,
        }
    }

    fn channel_mut(&mut self, ch: DmaChannel) -> &mut Channel {
        match ch {
            DmaChannel::Mm2s => &mut self.mm2s,
            DmaChannel::S2mm => &mut self.s2mm,
        }
    }

    /// Bytes moved per channel `(mm2s, s2mm)`.
    pub fn bytes_moved(&self) -> (u64, u64) {
        (self.mm2s.bytes_moved, self.s2mm.bytes_moved)
    }

    /// Completed transfers per channel `(mm2s, s2mm)`.
    pub fn transfers(&self) -> (u64, u64) {
        (self.mm2s.transfers, self.s2mm.transfers)
    }

    /// Soft resets seen per channel `(mm2s, s2mm)` — includes the
    /// power-on reset the driver issues.
    pub fn resets(&self) -> (u64, u64) {
        (self.mm2s.resets, self.s2mm.resets)
    }
}

/// The canonical simple-transfer driver sequence (what the referenced
/// ZedBoard Linux DMA driver does per classification): reset both
/// channels once, then per image program S2MM first (so the return
/// word has somewhere to land), then MM2S, then poll both IOCs with a
/// bounded budget, distinguishing completion, engine error, and stall.
pub struct DmaDriver {
    regs: AxiDmaRegs,
    /// Packets the PS side rejected on a CRC32 trailer mismatch
    /// (end-to-end stream integrity, not a DMASR condition — the
    /// engine completed the transfer, the payload was damaged in
    /// flight). Survives [`Self::recover`] like the reset counters.
    crc_errors: u64,
}

impl Default for DmaDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl DmaDriver {
    /// Initializes the engine: soft reset, then run + IOC-IRQ enable
    /// on both channels. (Control-register writes cannot fault, so
    /// this goes through the channel state machine directly.)
    pub fn new() -> DmaDriver {
        let mut regs = AxiDmaRegs::new();
        regs.mm2s.write_cr(cr::RESET);
        regs.s2mm.write_cr(cr::RESET);
        regs.mm2s.write_cr(cr::RS | cr::IOC_IRQ_EN);
        regs.s2mm.write_cr(cr::RS | cr::IOC_IRQ_EN);
        DmaDriver {
            regs,
            crc_errors: 0,
        }
    }

    /// Direct register access (for tests and diagnostics).
    pub fn regs(&self) -> &AxiDmaRegs {
        &self.regs
    }

    /// Records one CRC32 trailer mismatch on a received packet.
    pub fn note_crc_error(&mut self) {
        self.crc_errors += 1;
    }

    /// Packets rejected for a CRC32 trailer mismatch since power-on.
    pub fn crc_errors(&self) -> u64 {
        self.crc_errors
    }

    /// Arms a hardware fault on a channel (fault-injection hook).
    pub fn inject(&mut self, ch: DmaChannel, fault: HwFault) {
        self.regs.inject(ch, fault);
    }

    /// One poll step: `Ok(true)` when IOC is up, `Ok(false)` while
    /// still in flight, `Err` when DMASR shows an error cause.
    fn poll(&self, ch: DmaChannel) -> Result<bool, DmaError> {
        if let Some(e) = self.regs.channel_error(ch) {
            return Err(e);
        }
        let reg = match ch {
            DmaChannel::Mm2s => DmaReg::Mm2sDmasr,
            DmaChannel::S2mm => DmaReg::S2mmDmasr,
        };
        Ok(self.regs.read(reg) & sr::IOC_IRQ != 0)
    }

    /// Performs one image transfer: `in_bytes` to the fabric,
    /// `out_bytes` back. Returns a typed [`DmaError`] on protocol
    /// misuse, engine error, or stall.
    pub fn transfer(
        &mut self,
        src: u32,
        in_bytes: u32,
        dst: u32,
        out_bytes: u32,
    ) -> Result<(), DmaError> {
        self.regs.write(DmaReg::S2mmDa, dst)?;
        self.regs.write(DmaReg::S2mmLength, out_bytes)?;
        self.regs.write(DmaReg::Mm2sSa, src)?;
        self.regs.write(DmaReg::Mm2sLength, in_bytes)?;
        // Poll both channels. The model completes (or faults)
        // instantly, so a single status read stands in for the
        // driver's bounded busy-wait; a channel that is neither done
        // nor errored by now never will be — that is the stall case.
        let mm2s_done = self.poll(DmaChannel::Mm2s)?;
        let s2mm_done = self.poll(DmaChannel::S2mm)?;
        if !mm2s_done {
            return Err(DmaError::Timeout(DmaChannel::Mm2s));
        }
        if !s2mm_done {
            return Err(DmaError::Timeout(DmaChannel::S2mm));
        }
        // Acknowledge.
        self.regs.write(DmaReg::Mm2sDmasr, sr::IOC_IRQ)?;
        self.regs.write(DmaReg::S2mmDmasr, sr::IOC_IRQ)?;
        Ok(())
    }

    /// The Xilinx recovery sequence for a halted or stalled engine:
    /// soft reset both channels (clears sticky error bits, armed
    /// faults and in-flight state), then re-arm run + IOC-IRQ enable.
    pub fn recover(&mut self) {
        self.regs.mm2s.write_cr(cr::RESET);
        self.regs.s2mm.write_cr(cr::RESET);
        self.regs.mm2s.write_cr(cr::RS | cr::IOC_IRQ_EN);
        self.regs.s2mm.write_cr(cr::RS | cr::IOC_IRQ_EN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_error_count_survives_recover() {
        let mut drv = DmaDriver::new();
        assert_eq!(drv.crc_errors(), 0);
        drv.note_crc_error();
        drv.note_crc_error();
        drv.recover();
        assert_eq!(drv.crc_errors(), 2);
    }

    #[test]
    fn power_on_is_halted() {
        let d = AxiDmaRegs::new();
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::HALTED != 0);
        assert!(d.read(DmaReg::S2mmDmasr) & sr::HALTED != 0);
    }

    #[test]
    fn run_bit_leaves_halted() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        let sr_ = d.read(DmaReg::Mm2sDmasr);
        assert_eq!(sr_ & sr::HALTED, 0);
        assert!(sr_ & sr::IDLE != 0);
    }

    #[test]
    fn length_while_halted_rejected() {
        let mut d = AxiDmaRegs::new();
        let err = d.write(DmaReg::Mm2sLength, 1024).unwrap_err();
        assert_eq!(err, DmaError::Halted(DmaChannel::Mm2s));
        assert!(err.to_string().contains("halted"));
        assert!(!err.needs_reset());
    }

    #[test]
    fn zero_length_raises_error_bit() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        assert_eq!(
            d.write(DmaReg::Mm2sLength, 0).unwrap_err(),
            DmaError::ZeroLength(DmaChannel::Mm2s)
        );
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::DMA_INT_ERR != 0);
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::HALTED != 0);
    }

    #[test]
    fn ioc_sets_and_clears() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS | cr::IOC_IRQ_EN).unwrap();
        d.write(DmaReg::Mm2sSa, 0x1000_0000).unwrap();
        d.write(DmaReg::Mm2sLength, 1024).unwrap();
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::IOC_IRQ != 0);
        d.write(DmaReg::Mm2sDmasr, sr::IOC_IRQ).unwrap();
        assert_eq!(d.read(DmaReg::Mm2sDmasr) & sr::IOC_IRQ, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        d.write(DmaReg::Mm2sSa, 0xDEAD_0000).unwrap();
        d.write(DmaReg::Mm2sLength, 64).unwrap();
        d.write(DmaReg::Mm2sDmacr, cr::RESET).unwrap();
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::HALTED != 0);
        assert_eq!(d.read(DmaReg::Mm2sSa), 0);
        assert_eq!(d.read(DmaReg::Mm2sLength), 0);
    }

    #[test]
    fn injected_errors_set_dmasr_bits_and_halt() {
        for (fault, bit) in [
            (HwFault::IntErr, sr::DMA_INT_ERR),
            (HwFault::SlvErr, sr::DMA_SLV_ERR),
            (HwFault::DecErr, sr::DMA_DEC_ERR),
        ] {
            let mut d = AxiDmaRegs::new();
            d.write(DmaReg::S2mmDmacr, cr::RS).unwrap();
            d.inject(DmaChannel::S2mm, fault);
            // The length write itself succeeds; the error surfaces in
            // DMASR, exactly as on the real engine.
            d.write(DmaReg::S2mmLength, 4).unwrap();
            let sr_ = d.read(DmaReg::S2mmDmasr);
            assert!(sr_ & bit != 0, "{fault:?} must set its cause bit");
            assert!(sr_ & sr::ERR_IRQ != 0);
            assert!(sr_ & sr::HALTED != 0);
            assert_eq!(d.read(DmaReg::S2mmDmacr) & cr::RS, 0, "RS clears on error");
            assert!(d.channel_error(DmaChannel::S2mm).is_some());
        }
    }

    #[test]
    fn error_bits_sticky_until_reset() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        d.inject(DmaChannel::Mm2s, HwFault::DecErr);
        d.write(DmaReg::Mm2sLength, 64).unwrap();
        // W1C clears Err_Irq but not the cause bit.
        d.write(DmaReg::Mm2sDmasr, sr::ERR_IRQ).unwrap();
        assert_eq!(d.read(DmaReg::Mm2sDmasr) & sr::ERR_IRQ, 0);
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::DMA_DEC_ERR != 0);
        // Only reset clears the cause.
        d.write(DmaReg::Mm2sDmacr, cr::RESET).unwrap();
        assert_eq!(d.read(DmaReg::Mm2sDmasr) & sr::ANY_ERR, 0);
        assert!(d.channel_error(DmaChannel::Mm2s).is_none());
    }

    #[test]
    fn driver_sequence_moves_paper_test1_image() {
        // One 16x16 f32 image in (1024 bytes), one int class out.
        let mut drv = DmaDriver::new();
        drv.transfer(0x1000_0000, 1024, 0x1000_8000, 4).unwrap();
        assert_eq!(drv.regs().bytes_moved(), (1024, 4));
        assert_eq!(drv.regs().transfers(), (1, 1));
    }

    #[test]
    fn driver_batch_accumulates() {
        let mut drv = DmaDriver::new();
        for i in 0..1000u32 {
            drv.transfer(0x1000_0000 + i * 1024, 1024, 0x2000_0000, 4)
                .unwrap();
        }
        assert_eq!(drv.regs().bytes_moved(), (1_024_000, 4_000));
        assert_eq!(drv.regs().transfers(), (1000, 1000));
    }

    #[test]
    fn driver_detects_injected_halt_and_recovers() {
        let mut drv = DmaDriver::new();
        drv.inject(DmaChannel::Mm2s, HwFault::SlvErr);
        let err = drv.transfer(0x1000_0000, 1024, 0x2000_0000, 4).unwrap_err();
        assert_eq!(err, DmaError::SlaveError(DmaChannel::Mm2s));
        assert!(err.needs_reset());
        let resets_before = drv.regs().resets();
        drv.recover();
        assert_eq!(
            drv.regs().resets(),
            (resets_before.0 + 1, resets_before.1 + 1)
        );
        // Engine is usable again.
        drv.transfer(0x1000_0000, 1024, 0x2000_0000, 4).unwrap();
    }

    #[test]
    fn driver_times_out_on_stalled_channel() {
        let mut drv = DmaDriver::new();
        drv.inject(DmaChannel::S2mm, HwFault::Stall);
        let err = drv.transfer(0x1000_0000, 1024, 0x2000_0000, 4).unwrap_err();
        assert_eq!(err, DmaError::Timeout(DmaChannel::S2mm));
        // No error bits: a stall is invisible in DMASR.
        assert_eq!(drv.regs().read(DmaReg::S2mmDmasr) & sr::ANY_ERR, 0);
        drv.recover();
        drv.transfer(0x1000_0000, 1024, 0x2000_0000, 4).unwrap();
    }

    #[test]
    fn mm2s_stall_detected_too() {
        let mut drv = DmaDriver::new();
        drv.inject(DmaChannel::Mm2s, HwFault::Stall);
        let err = drv.transfer(0, 1024, 0, 4).unwrap_err();
        assert_eq!(err, DmaError::Timeout(DmaChannel::Mm2s));
    }

    #[test]
    fn reset_clears_armed_fault() {
        let mut drv = DmaDriver::new();
        drv.inject(DmaChannel::Mm2s, HwFault::DecErr);
        drv.recover(); // reset consumes the armed fault
        drv.transfer(0x1000_0000, 1024, 0x2000_0000, 4).unwrap();
    }

    #[test]
    fn length_field_masked_to_26_bits() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        d.write(DmaReg::Mm2sLength, 0xFFFF_FFFF).unwrap();
        assert_eq!(d.read(DmaReg::Mm2sLength), 0x3FF_FFFF);
    }

    #[test]
    fn error_display_names_channel() {
        assert!(DmaError::Timeout(DmaChannel::S2mm)
            .to_string()
            .contains("S2MM"));
        assert!(DmaError::DecodeError(DmaChannel::Mm2s)
            .to_string()
            .contains("DMADecErr"));
        assert_eq!(
            DmaError::Timeout(DmaChannel::S2mm).channel(),
            DmaChannel::S2mm
        );
    }
}
