//! Register-level AXI DMA model (simple/direct-register mode).
//!
//! The paper's PS-side software talks to the AXI DMA through its
//! memory-mapped register file (via the ZedBoard Linux DMA driver the
//! authors reference). This module models the subset that driver
//! programs for simple transfers — control, status, address and
//! length registers for both channels — with the documented state
//! machine: reset → halted → running → idle-on-IOC.

use serde::Serialize;

/// Register offsets (bytes) of the AXI DMA register map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
#[allow(missing_docs)]
pub enum DmaReg {
    Mm2sDmacr = 0x00,
    Mm2sDmasr = 0x04,
    Mm2sSa = 0x18,
    Mm2sLength = 0x28,
    S2mmDmacr = 0x30,
    S2mmDmasr = 0x34,
    S2mmDa = 0x48,
    S2mmLength = 0x58,
}

/// DMACR bits.
pub mod cr {
    /// Run/stop.
    pub const RS: u32 = 1 << 0;
    /// Soft reset.
    pub const RESET: u32 = 1 << 2;
    /// Interrupt on complete enable.
    pub const IOC_IRQ_EN: u32 = 1 << 12;
}

/// DMASR bits.
pub mod sr {
    /// Channel halted.
    pub const HALTED: u32 = 1 << 0;
    /// Channel idle (transfer done).
    pub const IDLE: u32 = 1 << 1;
    /// Interrupt on complete (write-1-to-clear).
    pub const IOC_IRQ: u32 = 1 << 12;
    /// DMA internal error.
    pub const DMA_INT_ERR: u32 = 1 << 4;
}

/// One DMA channel's architectural state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
struct Channel {
    cr: u32,
    srr: u32, // status
    addr: u32,
    length: u32,
    /// Total bytes moved (model bookkeeping).
    bytes_moved: u64,
    transfers: u64,
}

impl Channel {
    fn reset(&mut self) {
        *self = Channel { srr: sr::HALTED, ..Channel::default() };
    }

    fn write_cr(&mut self, v: u32) {
        if v & cr::RESET != 0 {
            self.reset();
            return;
        }
        self.cr = v;
        if v & cr::RS != 0 {
            // Running: leave halted state, become idle until a length
            // write kicks a transfer.
            self.srr &= !sr::HALTED;
            self.srr |= sr::IDLE;
        } else {
            self.srr |= sr::HALTED;
        }
    }

    fn write_length(&mut self, v: u32) -> Result<(), &'static str> {
        let v = v & 0x03FF_FFFF; // 26-bit length field
        if self.srr & sr::HALTED != 0 {
            return Err("length written while channel halted");
        }
        if v == 0 {
            self.srr |= sr::DMA_INT_ERR;
            self.srr |= sr::HALTED;
            return Err("zero-length transfer raises DMAIntErr");
        }
        self.length = v;
        // Simple-mode transfers complete "instantly" at this
        // abstraction; cycle costs live in [`crate::axi::AxiDma`].
        self.bytes_moved += v as u64;
        self.transfers += 1;
        self.srr |= sr::IDLE;
        if self.cr & cr::IOC_IRQ_EN != 0 {
            self.srr |= sr::IOC_IRQ;
        }
        Ok(())
    }
}

/// The register file of one AXI DMA instance.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AxiDmaRegs {
    mm2s: Channel,
    s2mm: Channel,
}

impl AxiDmaRegs {
    /// Power-on state: both channels halted.
    pub fn new() -> AxiDmaRegs {
        let mut d = AxiDmaRegs::default();
        d.mm2s.reset();
        d.s2mm.reset();
        d
    }

    /// Register write (the PS's `iowrite32`).
    pub fn write(&mut self, reg: DmaReg, value: u32) -> Result<(), &'static str> {
        match reg {
            DmaReg::Mm2sDmacr => {
                self.mm2s.write_cr(value);
                Ok(())
            }
            DmaReg::S2mmDmacr => {
                self.s2mm.write_cr(value);
                Ok(())
            }
            DmaReg::Mm2sSa => {
                self.mm2s.addr = value;
                Ok(())
            }
            DmaReg::S2mmDa => {
                self.s2mm.addr = value;
                Ok(())
            }
            DmaReg::Mm2sLength => self.mm2s.write_length(value),
            DmaReg::S2mmLength => self.s2mm.write_length(value),
            DmaReg::Mm2sDmasr => {
                // write-1-to-clear IOC
                if value & sr::IOC_IRQ != 0 {
                    self.mm2s.srr &= !sr::IOC_IRQ;
                }
                Ok(())
            }
            DmaReg::S2mmDmasr => {
                if value & sr::IOC_IRQ != 0 {
                    self.s2mm.srr &= !sr::IOC_IRQ;
                }
                Ok(())
            }
        }
    }

    /// Register read (the PS's `ioread32`).
    pub fn read(&self, reg: DmaReg) -> u32 {
        match reg {
            DmaReg::Mm2sDmacr => self.mm2s.cr,
            DmaReg::Mm2sDmasr => self.mm2s.srr,
            DmaReg::Mm2sSa => self.mm2s.addr,
            DmaReg::Mm2sLength => self.mm2s.length,
            DmaReg::S2mmDmacr => self.s2mm.cr,
            DmaReg::S2mmDmasr => self.s2mm.srr,
            DmaReg::S2mmDa => self.s2mm.addr,
            DmaReg::S2mmLength => self.s2mm.length,
        }
    }

    /// Bytes moved per channel `(mm2s, s2mm)`.
    pub fn bytes_moved(&self) -> (u64, u64) {
        (self.mm2s.bytes_moved, self.s2mm.bytes_moved)
    }

    /// Completed transfers per channel `(mm2s, s2mm)`.
    pub fn transfers(&self) -> (u64, u64) {
        (self.mm2s.transfers, self.s2mm.transfers)
    }
}

/// The canonical simple-transfer driver sequence (what the referenced
/// ZedBoard Linux DMA driver does per classification): reset both
/// channels once, then per image program S2MM first (so the return
/// word has somewhere to land), then MM2S, then poll both IOCs.
pub struct DmaDriver {
    regs: AxiDmaRegs,
}

impl Default for DmaDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl DmaDriver {
    /// Initializes the engine: soft reset, then run + IOC-IRQ enable
    /// on both channels.
    pub fn new() -> DmaDriver {
        let mut regs = AxiDmaRegs::new();
        regs.write(DmaReg::Mm2sDmacr, cr::RESET).unwrap();
        regs.write(DmaReg::S2mmDmacr, cr::RESET).unwrap();
        regs.write(DmaReg::Mm2sDmacr, cr::RS | cr::IOC_IRQ_EN).unwrap();
        regs.write(DmaReg::S2mmDmacr, cr::RS | cr::IOC_IRQ_EN).unwrap();
        DmaDriver { regs }
    }

    /// Direct register access (for tests and diagnostics).
    pub fn regs(&self) -> &AxiDmaRegs {
        &self.regs
    }

    /// Performs one image transfer: `in_bytes` to the fabric,
    /// `out_bytes` back. Returns an error string on protocol misuse.
    pub fn transfer(
        &mut self,
        src: u32,
        in_bytes: u32,
        dst: u32,
        out_bytes: u32,
    ) -> Result<(), &'static str> {
        self.regs.write(DmaReg::S2mmDa, dst)?;
        self.regs.write(DmaReg::S2mmLength, out_bytes)?;
        self.regs.write(DmaReg::Mm2sSa, src)?;
        self.regs.write(DmaReg::Mm2sLength, in_bytes)?;
        // Poll IOC on both channels (instantaneous at this level).
        debug_assert!(self.regs.read(DmaReg::Mm2sDmasr) & sr::IOC_IRQ != 0);
        debug_assert!(self.regs.read(DmaReg::S2mmDmasr) & sr::IOC_IRQ != 0);
        // Acknowledge.
        self.regs.write(DmaReg::Mm2sDmasr, sr::IOC_IRQ)?;
        self.regs.write(DmaReg::S2mmDmasr, sr::IOC_IRQ)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_is_halted() {
        let d = AxiDmaRegs::new();
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::HALTED != 0);
        assert!(d.read(DmaReg::S2mmDmasr) & sr::HALTED != 0);
    }

    #[test]
    fn run_bit_leaves_halted() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        let sr_ = d.read(DmaReg::Mm2sDmasr);
        assert_eq!(sr_ & sr::HALTED, 0);
        assert!(sr_ & sr::IDLE != 0);
    }

    #[test]
    fn length_while_halted_rejected() {
        let mut d = AxiDmaRegs::new();
        let err = d.write(DmaReg::Mm2sLength, 1024).unwrap_err();
        assert!(err.contains("halted"));
    }

    #[test]
    fn zero_length_raises_error_bit() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        assert!(d.write(DmaReg::Mm2sLength, 0).is_err());
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::DMA_INT_ERR != 0);
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::HALTED != 0);
    }

    #[test]
    fn ioc_sets_and_clears() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS | cr::IOC_IRQ_EN).unwrap();
        d.write(DmaReg::Mm2sSa, 0x1000_0000).unwrap();
        d.write(DmaReg::Mm2sLength, 1024).unwrap();
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::IOC_IRQ != 0);
        d.write(DmaReg::Mm2sDmasr, sr::IOC_IRQ).unwrap();
        assert_eq!(d.read(DmaReg::Mm2sDmasr) & sr::IOC_IRQ, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        d.write(DmaReg::Mm2sSa, 0xDEAD_0000).unwrap();
        d.write(DmaReg::Mm2sLength, 64).unwrap();
        d.write(DmaReg::Mm2sDmacr, cr::RESET).unwrap();
        assert!(d.read(DmaReg::Mm2sDmasr) & sr::HALTED != 0);
        assert_eq!(d.read(DmaReg::Mm2sSa), 0);
        assert_eq!(d.read(DmaReg::Mm2sLength), 0);
    }

    #[test]
    fn driver_sequence_moves_paper_test1_image() {
        // One 16x16 f32 image in (1024 bytes), one int class out.
        let mut drv = DmaDriver::new();
        drv.transfer(0x1000_0000, 1024, 0x1000_8000, 4).unwrap();
        assert_eq!(drv.regs().bytes_moved(), (1024, 4));
        assert_eq!(drv.regs().transfers(), (1, 1));
    }

    #[test]
    fn driver_batch_accumulates() {
        let mut drv = DmaDriver::new();
        for i in 0..1000u32 {
            drv.transfer(0x1000_0000 + i * 1024, 1024, 0x2000_0000, 4).unwrap();
        }
        assert_eq!(drv.regs().bytes_moved(), (1_024_000, 4_000));
        assert_eq!(drv.regs().transfers(), (1000, 1000));
    }

    #[test]
    fn length_field_masked_to_26_bits() {
        let mut d = AxiDmaRegs::new();
        d.write(DmaReg::Mm2sDmacr, cr::RS).unwrap();
        d.write(DmaReg::Mm2sLength, 0xFFFF_FFFF).unwrap();
        assert_eq!(d.read(DmaReg::Mm2sLength), 0x3FF_FFFF);
    }
}
