//! Zynq address map — the Address Editor step of the Vivado flow: the
//! PS's general-purpose master port exposes a 1 GiB window
//! (0x4000_0000–0x7FFF_FFFF for GP0) into which every AXI-Lite slave
//! (the DMA register file, the CNN core's control port) must be
//! assigned a non-overlapping, size-aligned segment before the design
//! can be implemented.

use serde::Serialize;
use std::fmt;

/// Base of the PS GP0 master window.
pub const GP0_BASE: u32 = 0x4000_0000;
/// Exclusive end of the GP0 window (1 GiB).
pub const GP0_END: u32 = 0x8000_0000;

/// One assigned address segment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Segment {
    /// Slave instance name (`axi_dma_0`, `cnn_0`, ...).
    pub name: String,
    /// Base address.
    pub base: u32,
    /// Segment size in bytes (power of two, ≥ 4 KiB).
    pub size: u32,
}

impl Segment {
    /// Exclusive end address.
    pub fn end(&self) -> u32 {
        self.base + self.size
    }

    /// Whether `addr` falls inside the segment.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Address-assignment and validation failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// Size is zero, not a power of two, or below the 4 KiB minimum.
    BadSize(u32),
    /// No room left in the GP0 window.
    WindowFull,
    /// Duplicate slave name.
    Duplicate(String),
    /// A segment falls outside the GP0 window.
    OutsideWindow(String),
    /// A segment's base is not aligned to its size.
    Misaligned(String),
    /// Two segments overlap.
    Overlap(String, String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::BadSize(s) => write!(f, "segment size {s:#x} invalid (power of two ≥ 4 KiB)"),
            MapError::WindowFull => write!(f, "GP0 window exhausted"),
            MapError::Duplicate(n) => write!(f, "slave {n} already mapped"),
            MapError::OutsideWindow(n) => write!(f, "{n} outside the GP0 window"),
            MapError::Misaligned(n) => write!(f, "{n} not size-aligned"),
            MapError::Overlap(a, b) => write!(f, "{a} overlaps {b}"),
        }
    }
}

impl std::error::Error for MapError {}

/// The address map under construction.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AddressMap {
    segments: Vec<Segment>,
}

impl AddressMap {
    /// Empty map.
    pub fn new() -> AddressMap {
        AddressMap::default()
    }

    /// Builds the map the paper's block design needs: the DMA's
    /// register file and the CNN core's AXI-Lite control port.
    pub fn fig5() -> Result<AddressMap, MapError> {
        let mut m = AddressMap::new();
        m.assign("axi_dma_0", 0x1_0000)?;
        m.assign("cnn_0", 0x1_0000)?;
        Ok(m)
    }

    /// Assigns the next free size-aligned segment to `name`.
    pub fn assign(&mut self, name: &str, size: u32) -> Result<Segment, MapError> {
        if size < 0x1000 || !size.is_power_of_two() {
            return Err(MapError::BadSize(size));
        }
        if self.segments.iter().any(|s| s.name == name) {
            return Err(MapError::Duplicate(name.to_string()));
        }
        // First-fit after the highest allocated end, aligned to size.
        let start = self
            .segments
            .iter()
            .map(Segment::end)
            .max()
            .unwrap_or(GP0_BASE);
        let base = start.div_ceil(size) * size;
        let base = base.max(GP0_BASE);
        if base.checked_add(size).is_none() || base + size > GP0_END {
            return Err(MapError::WindowFull);
        }
        let seg = Segment {
            name: name.to_string(),
            base,
            size,
        };
        self.segments.push(seg.clone());
        Ok(seg)
    }

    /// All assigned segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Looks a slave's segment up by name.
    pub fn lookup(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Resolves an absolute address to the owning slave and offset —
    /// what the PS-side driver's `ioremap` arithmetic does.
    pub fn decode(&self, addr: u32) -> Option<(&Segment, u32)> {
        self.segments
            .iter()
            .find(|s| s.contains(addr))
            .map(|s| (s, addr - s.base))
    }

    /// Validates the invariants Vivado enforces: window bounds,
    /// alignment, and pairwise disjointness.
    pub fn validate(&self) -> Result<(), MapError> {
        for s in &self.segments {
            if s.base < GP0_BASE || s.end() > GP0_END {
                return Err(MapError::OutsideWindow(s.name.clone()));
            }
            if s.base % s.size != 0 {
                return Err(MapError::Misaligned(s.name.clone()));
            }
        }
        for (i, a) in self.segments.iter().enumerate() {
            for b in &self.segments[i + 1..] {
                if a.base < b.end() && b.base < a.end() {
                    return Err(MapError::Overlap(a.name.clone(), b.name.clone()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_map_validates() {
        let m = AddressMap::fig5().expect("Fig. 5 map assigns cleanly");
        m.validate().expect("Fig. 5 map is clean");
        assert_eq!(m.segments().len(), 2);
        assert_eq!(m.lookup("axi_dma_0").unwrap().base, GP0_BASE);
        assert_eq!(m.lookup("cnn_0").unwrap().base, GP0_BASE + 0x1_0000);
    }

    #[test]
    fn decode_resolves_register_addresses() {
        let m = AddressMap::fig5().unwrap();
        // MM2S_DMACR of the DMA lives at base + 0x00.
        let (seg, off) = m.decode(0x4000_0000).unwrap();
        assert_eq!(seg.name, "axi_dma_0");
        assert_eq!(off, 0);
        // S2MM_DMACR at base + 0x30.
        let (seg, off) = m.decode(0x4000_0030).unwrap();
        assert_eq!(seg.name, "axi_dma_0");
        assert_eq!(off, 0x30);
        assert!(m.decode(0x3FFF_FFFF).is_none());
    }

    #[test]
    fn sizes_are_validated() {
        let mut m = AddressMap::new();
        assert_eq!(m.assign("x", 0x800).unwrap_err(), MapError::BadSize(0x800));
        assert_eq!(
            m.assign("x", 0x3000).unwrap_err(),
            MapError::BadSize(0x3000)
        );
        assert!(m.assign("x", 0x1000).is_ok());
    }

    #[test]
    fn duplicates_rejected() {
        let mut m = AddressMap::new();
        m.assign("dma", 0x1000).unwrap();
        assert_eq!(
            m.assign("dma", 0x1000).unwrap_err(),
            MapError::Duplicate("dma".into())
        );
    }

    #[test]
    fn segments_are_aligned_and_disjoint() {
        let mut m = AddressMap::new();
        m.assign("a", 0x1000).unwrap();
        m.assign("b", 0x1_0000).unwrap(); // must skip to a 64 KiB boundary
        m.assign("c", 0x1000).unwrap();
        m.validate().unwrap();
        let b = m.lookup("b").unwrap();
        assert_eq!(b.base % b.size, 0);
    }

    #[test]
    fn window_exhaustion_detected() {
        let mut m = AddressMap::new();
        // 1 GiB window: two 512 MiB segments fill it.
        m.assign("big1", 0x2000_0000).unwrap();
        m.assign("big2", 0x2000_0000).unwrap();
        assert_eq!(m.assign("late", 0x1000).unwrap_err(), MapError::WindowFull);
    }

    #[test]
    fn error_display() {
        assert!(MapError::BadSize(7).to_string().contains("power of two"));
        assert!(MapError::WindowFull.to_string().contains("exhausted"));
        assert!(MapError::Overlap("a".into(), "b".into())
            .to_string()
            .contains("overlaps"));
        assert!(MapError::Misaligned("x".into())
            .to_string()
            .contains("aligned"));
        assert!(MapError::OutsideWindow("y".into())
            .to_string()
            .contains("window"));
    }

    #[test]
    fn validate_reports_typed_overlap() {
        // Hand-build an overlapping map (assign() itself never
        // produces one).
        let mut m = AddressMap::new();
        m.segments.push(Segment {
            name: "a".into(),
            base: GP0_BASE,
            size: 0x2000,
        });
        m.segments.push(Segment {
            name: "b".into(),
            base: GP0_BASE + 0x1000,
            size: 0x1000,
        });
        assert_eq!(
            m.validate().unwrap_err(),
            MapError::Overlap("a".into(), "b".into())
        );
    }

    #[test]
    fn validate_reports_out_of_window_and_misaligned() {
        let mut m = AddressMap::new();
        m.segments.push(Segment {
            name: "low".into(),
            base: 0x1000,
            size: 0x1000,
        });
        assert_eq!(
            m.validate().unwrap_err(),
            MapError::OutsideWindow("low".into())
        );

        let mut m = AddressMap::new();
        m.segments.push(Segment {
            name: "skew".into(),
            base: GP0_BASE + 0x800,
            size: 0x1000,
        });
        assert_eq!(
            m.validate().unwrap_err(),
            MapError::Misaligned("skew".into())
        );
    }
}
