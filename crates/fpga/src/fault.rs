//! Deterministic, seed-driven fault injection for the transport and
//! driver stack.
//!
//! Real Zynq deployments hit DMA decode/slave errors, stream stalls
//! and halted engines — the DMASR register exists to report them.
//! This module generates those events reproducibly: a [`FaultPlan`]
//! holds per-transfer probabilities and a seed, and derives an
//! independent RNG per `(image, attempt)` pair via splitmix64, so the
//! fast and threaded classification paths (and any rerun with the
//! same seed) inject *exactly* the same faults.

use crate::axi::BeatFault;
use crate::dma_regs::{DmaChannel, HwFault};
use cnn_store::hash::{mix64, SplitMix64};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;
use std::fmt;

/// Salt separating the SEU site-selection stream from the transport
/// fault streams (which use their own salts below).
const SEU_SALT: u64 = 0x5EED_BEEF_CAFE_F00D;

/// A fault chosen for one transfer attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InjectedFault {
    /// Drop the stream beat at this index (short packet at the core).
    DropBeat(usize),
    /// Silently corrupt the stream beat at this index (bit flips that
    /// keep the word finite — only the CRC trailer catches it).
    CorruptBeat(usize),
    /// The channel accepts the transfer but never completes it.
    Stall(DmaChannel),
    /// The engine halts with a DMASR error cause.
    Halt(DmaChannel, HwFault),
}

/// Invalid fault-plan configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultError {
    /// A probability field is outside `[0, 1]` (or not finite).
    BadProbability {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadProbability { field, value } => {
                write!(f, "fault probability `{field}` = {value} is not in [0, 1]")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Per-attempt fault probabilities plus the master seed.
///
/// At most one fault is injected per transfer attempt; the fields are
/// the marginal probabilities of each kind and may sum to at most 1
/// (a sum of exactly 1 means every attempt faults). Out-of-range
/// values are clamped at sampling time so no seed/plan combination
/// can panic; use [`FaultPlan::validate`] to reject them up front.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Master seed; everything derives from it deterministically.
    pub seed: u64,
    /// P(drop one stream beat of the MM2S packet).
    pub drop_beat: f64,
    /// P(corrupt one stream beat of the MM2S packet).
    pub corrupt_beat: f64,
    /// P(the MM2S channel stalls — accepted, never completed).
    pub mm2s_stall: f64,
    /// P(the S2MM channel stalls).
    pub s2mm_stall: f64,
    /// P(a DMA engine halts with a DMASR error cause).
    pub dma_halt: f64,
    /// Deterministic latency jitter: when non-zero, roughly one in
    /// `stall_every` images stalls its *first* transfer attempt (the
    /// retry then succeeds, so the image recovers — slower, never
    /// wrong). Selection hashes `(seed, image)` directly, with no RNG
    /// on the sampling path, so benchmarks that must stay free of the
    /// `rand` dependency at runtime can still produce the latency
    /// outliers that exercise hedging. `0` disables the jitter.
    pub stall_every: u32,
    /// Seeded SEU injection: when non-zero, roughly one in `seu_every`
    /// device dispatches flips one bit in the device's on-chip weight
    /// memory *before* the transfer runs. Unlike every other field,
    /// this corruption is **silent**: the DMA packet is untouched, so
    /// the CRC trailer passes, no fault is counted, and the device
    /// returns a well-formed (possibly wrong) prediction. Selection
    /// hashes `(seed, dispatch sequence)` — deterministic, RNG-free —
    /// and the upset site comes from [`FaultPlan::seu_stream`]. `0`
    /// disables injection.
    pub seu_every: u32,
}

impl FaultPlan {
    /// The fault-free plan: classification behaves byte-identically
    /// to the stack without the injector.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_beat: 0.0,
            corrupt_beat: 0.0,
            mm2s_stall: 0.0,
            s2mm_stall: 0.0,
            dma_halt: 0.0,
            stall_every: 0,
            seu_every: 0,
        }
    }

    /// A transport-clean plan whose only hazard is the silent weight
    /// memory SEU (see [`FaultPlan::seu_every`]): roughly one in
    /// `every` dispatches upsets one bit of on-device weight memory.
    pub fn seu(seed: u64, every: u32) -> FaultPlan {
        FaultPlan {
            seed,
            seu_every: every,
            ..FaultPlan::none()
        }
    }

    /// A fault-free plan plus the deterministic one-in-`every`
    /// first-attempt stall jitter (see [`FaultPlan::stall_every`]) —
    /// the canonical way to give a benchmark device recoverable
    /// latency outliers without the `rand` crate on the hot path.
    pub fn stall_jitter(seed: u64, every: u32) -> FaultPlan {
        FaultPlan {
            seed,
            stall_every: every,
            ..FaultPlan::none()
        }
    }

    /// A plan where each attempt faults with probability `rate`,
    /// split evenly across the five fault kinds. `rate = 1.0` makes
    /// every attempt fault (nothing ever classifies on hardware).
    ///
    /// A non-positive (or non-finite) `rate` normalizes to the
    /// canonical fault-free plan with the seed preserved, so
    /// `uniform(s, 0.0)` compares equal to `FaultPlan { seed: s,
    /// ..FaultPlan::none() }` field-for-field — no `-0.0` shares.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        if !rate.is_finite() || rate <= 0.0 {
            return FaultPlan {
                seed,
                ..FaultPlan::none()
            };
        }
        let p = (rate / 5.0).clamp(0.0, 0.2);
        FaultPlan {
            seed,
            drop_beat: p,
            corrupt_beat: p,
            mm2s_stall: p,
            s2mm_stall: p,
            dma_halt: p,
            stall_every: 0,
            seu_every: 0,
        }
    }

    /// Rejects probabilities outside `[0, 1]` or summing past 1.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (field, value) in [
            ("drop_beat", self.drop_beat),
            ("corrupt_beat", self.corrupt_beat),
            ("mm2s_stall", self.mm2s_stall),
            ("s2mm_stall", self.s2mm_stall),
            ("dma_halt", self.dma_halt),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(FaultError::BadProbability { field, value });
            }
        }
        let sum =
            self.drop_beat + self.corrupt_beat + self.mm2s_stall + self.s2mm_stall + self.dma_halt;
        // Tolerate float noise at exactly-1 (e.g. five 0.2 shares).
        if sum > 1.0 + 1e-9 {
            return Err(FaultError::BadProbability {
                field: "sum",
                value: sum,
            });
        }
        Ok(())
    }

    /// True when no *transport* fault can ever be injected (after
    /// clamping). Deliberately ignores [`FaultPlan::seu_every`]: an
    /// SEU plan keeps the bus byte-identical to a clean run — that is
    /// what makes the corruption silent — so the transport paths treat
    /// it as fault-free and the weight-memory injector handles it.
    pub fn is_fault_free(&self) -> bool {
        self.stall_every == 0 && !self.has_random_faults()
    }

    /// Whether a weight-memory SEU is due at device dispatch `seq`
    /// (the device's lifetime dispatch ordinal). Hash-selected like
    /// the stall jitter: deterministic, RNG-free, roughly one in
    /// [`FaultPlan::seu_every`].
    pub fn seu_due(&self, seq: u64) -> bool {
        self.seu_every > 0 && self.seu_hash(seq).is_multiple_of(u64::from(self.seu_every))
    }

    /// The seeded stream that picks the upset site (bank, word, bit)
    /// for the SEU due at dispatch `seq`. Independent per dispatch and
    /// decorrelated from [`FaultPlan::seu_due`]'s selection hash.
    pub fn seu_stream(&self, seq: u64) -> SplitMix64 {
        SplitMix64::new(mix64(self.seu_hash(seq) ^ SEU_SALT))
    }

    fn seu_hash(&self, seq: u64) -> u64 {
        let s = mix64(self.seed ^ SEU_SALT);
        mix64(s ^ seq)
    }

    /// True when any of the *probabilistic* fault fields can fire —
    /// the only case that needs the seeded RNG at sampling time.
    fn has_random_faults(&self) -> bool {
        [
            self.drop_beat,
            self.corrupt_beat,
            self.mm2s_stall,
            self.s2mm_stall,
            self.dma_halt,
        ]
        .iter()
        .any(|&p| p.is_finite() && p > 0.0)
    }

    /// Decides the fault (if any) for attempt `attempt` of image
    /// `image`, whose MM2S packet carries `packet_words` words.
    ///
    /// Deterministic in `(seed, image, attempt)` alone — independent
    /// of batch order, threading, and of every other image — so the
    /// fast path, the threaded co-simulation, and a rerun all agree.
    pub fn sample(&self, image: usize, attempt: u32, packet_words: usize) -> Option<InjectedFault> {
        // The deterministic jitter decides first, from a plain hash —
        // no RNG is constructed unless a probabilistic field is live.
        if self.stall_every > 0
            && attempt == 0
            && self
                .stall_hash(image)
                .is_multiple_of(u64::from(self.stall_every))
        {
            return Some(InjectedFault::Stall(DmaChannel::Mm2s));
        }
        if !self.has_random_faults() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(self.attempt_seed(image, attempt));
        let clamp = |p: f64| {
            if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        acc += clamp(self.drop_beat);
        if u < acc {
            return Some(InjectedFault::DropBeat(
                rng.gen_range(0..packet_words.max(1)),
            ));
        }
        acc += clamp(self.corrupt_beat);
        if u < acc {
            return Some(InjectedFault::CorruptBeat(
                rng.gen_range(0..packet_words.max(1)),
            ));
        }
        acc += clamp(self.mm2s_stall);
        if u < acc {
            return Some(InjectedFault::Stall(DmaChannel::Mm2s));
        }
        acc += clamp(self.s2mm_stall);
        if u < acc {
            return Some(InjectedFault::Stall(DmaChannel::S2mm));
        }
        acc += clamp(self.dma_halt);
        if u < acc {
            let ch = if rng.gen_range(0..2u32) == 0 {
                DmaChannel::Mm2s
            } else {
                DmaChannel::S2mm
            };
            let hw = match rng.gen_range(0..3u32) {
                0 => HwFault::IntErr,
                1 => HwFault::SlvErr,
                _ => HwFault::DecErr,
            };
            return Some(InjectedFault::Halt(ch, hw));
        }
        None
    }

    /// The RNG seed for one `(image, attempt)` pair.
    fn attempt_seed(&self, image: usize, attempt: u32) -> u64 {
        let mut s = mix64(self.seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        s = mix64(s ^ image as u64);
        mix64(s ^ attempt as u64)
    }

    /// The per-image hash behind [`FaultPlan::stall_every`] (distinct
    /// salt from [`FaultPlan::attempt_seed`] so the jitter never
    /// correlates with the probabilistic draws).
    fn stall_hash(&self, image: usize) -> u64 {
        let s = mix64(self.seed ^ 0x57A1_157A_1157_A115);
        mix64(s ^ image as u64)
    }
}

impl InjectedFault {
    /// Short label of the fault kind, used as the `kind` label on the
    /// `cnn_faults_injected_total` metric and in trace instant events.
    pub fn kind_name(&self) -> &'static str {
        match self {
            InjectedFault::DropBeat(_) => "drop_beat",
            InjectedFault::CorruptBeat(_) => "corrupt_beat",
            InjectedFault::Stall(_) => "stall",
            InjectedFault::Halt(_, _) => "halt",
        }
    }

    /// The stream-level part of this fault, if any (what
    /// [`crate::axi::AxiStream::send_packet_faulted`] applies).
    pub fn beat_fault(&self) -> Option<BeatFault> {
        match *self {
            InjectedFault::DropBeat(i) => Some(BeatFault::Drop(i)),
            InjectedFault::CorruptBeat(i) => Some(BeatFault::Corrupt(i)),
            _ => None,
        }
    }
}

/// Bounded retry-with-reset policy for the PS-side driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (so an image gets
    /// `max_retries + 1` attempts before it is abandoned to the
    /// software fallback).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3 }
    }
}

impl RetryPolicy {
    /// Attempts an image receives in total. Saturates so a
    /// `max_retries` of `u32::MAX` cannot wrap to zero attempts
    /// (which would abandon every image without ever trying).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }
}

/// Aggregate fault/recovery accounting for one batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Faults injected (one per failed attempt).
    pub injected: u64,
    /// Retry attempts issued (failed attempts that were retried).
    pub retries: u64,
    /// Images classified on the first attempt.
    pub clean: u64,
    /// Images that failed at least once but eventually classified.
    pub recovered: u64,
    /// Images that exhausted the retry budget (software fallback).
    pub abandoned: u64,
    /// DMA soft-reset sequences run.
    pub resets: u64,
    /// Failed attempts whose damage was caught by the AXI4-Stream
    /// CRC32 trailer check (beat drops and silent corruptions) —
    /// every one of these would have been a wrong or lost prediction
    /// without the integrity layer.
    pub crc_detected: u64,
    /// Extra fabric cycles burned on failed attempts, timeouts and
    /// resets (on top of the useful transfer cycles).
    pub fault_cycles: u64,
}

impl FaultStats {
    /// The accounting invariant: every image is exactly one of
    /// clean / recovered / abandoned.
    pub fn balances(&self, total: usize) -> bool {
        self.clean + self.recovered + self.abandoned == total as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_fault_free_and_never_samples() {
        let plan = FaultPlan::none();
        assert!(plan.is_fault_free());
        plan.validate().unwrap();
        for img in 0..100 {
            assert_eq!(plan.sample(img, 0, 256), None);
        }
    }

    #[test]
    fn stall_jitter_is_deterministic_first_attempt_only_and_rng_free() {
        let plan = FaultPlan::stall_jitter(7, 8);
        assert!(!plan.is_fault_free());
        plan.validate().unwrap();
        let mut stalled = 0usize;
        for img in 0..512 {
            let f = plan.sample(img, 0, 256);
            // Same (image, attempt) always replays identically.
            assert_eq!(f, plan.sample(img, 0, 256));
            match f {
                Some(InjectedFault::Stall(DmaChannel::Mm2s)) => stalled += 1,
                None => {}
                other => panic!("jitter may only stall MM2S, got {other:?}"),
            }
            // The retry attempt is always clean: every stalled image
            // recovers, none abandons.
            assert_eq!(plan.sample(img, 1, 256), None);
        }
        // Roughly one in eight of 512 images (hash spread, not exact).
        assert!(
            (32..=96).contains(&stalled),
            "expected ~64 stalls, got {stalled}"
        );
        // A different seed selects a different image subset.
        let other = FaultPlan::stall_jitter(8, 8);
        assert!((0..512).any(|i| plan.sample(i, 0, 256) != other.sample(i, 0, 256)));
    }

    #[test]
    fn uniform_rate_one_always_faults() {
        let plan = FaultPlan::uniform(2016, 1.0);
        plan.validate().unwrap();
        for img in 0..200 {
            for attempt in 0..4 {
                assert!(plan.sample(img, attempt, 256).is_some());
            }
        }
    }

    #[test]
    fn uniform_rate_zero_is_fault_free() {
        assert!(FaultPlan::uniform(7, 0.0).is_fault_free());
    }

    #[test]
    fn uniform_rate_zero_normalizes_to_canonical_none() {
        for rate in [0.0, -0.0, -1.0, f64::NAN, f64::NEG_INFINITY] {
            let plan = FaultPlan::uniform(7, rate);
            assert!(plan.is_fault_free(), "rate {rate}");
            assert_eq!(
                plan,
                FaultPlan {
                    seed: 7,
                    ..FaultPlan::none()
                },
                "rate {rate} must normalize to the exact fault-free plan"
            );
            // Bit-exact zeros, not -0.0 shares.
            assert_eq!(plan.drop_beat.to_bits(), 0.0f64.to_bits(), "rate {rate}");
            plan.validate().unwrap();
            assert_eq!(plan.sample(0, 0, 256), None);
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed_image_attempt() {
        let plan = FaultPlan::uniform(42, 0.5);
        for img in 0..50 {
            for attempt in 0..3 {
                assert_eq!(
                    plan.sample(img, attempt, 256),
                    plan.sample(img, attempt, 256)
                );
            }
        }
    }

    #[test]
    fn different_attempts_decorrelate() {
        // With a 50% plan, 64 (image, attempt) pairs must not all
        // agree — the per-attempt seeds would otherwise be broken.
        let plan = FaultPlan::uniform(9, 0.5);
        let outcomes: Vec<bool> = (0..64)
            .map(|i| plan.sample(i, (i % 4) as u32, 256).is_some())
            .collect();
        assert!(outcomes.iter().any(|&b| b));
        assert!(outcomes.iter().any(|&b| !b));
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut plan = FaultPlan::none();
        plan.drop_beat = 1.5;
        assert_eq!(
            plan.validate(),
            Err(FaultError::BadProbability {
                field: "drop_beat",
                value: 1.5
            })
        );
        plan.drop_beat = f64::NAN;
        assert!(plan.validate().is_err());
        plan.drop_beat = -0.1;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_rejects_oversubscribed_sum() {
        let mut plan = FaultPlan::none();
        plan.drop_beat = 0.6;
        plan.dma_halt = 0.6;
        assert!(matches!(
            plan.validate(),
            Err(FaultError::BadProbability { field: "sum", .. })
        ));
    }

    #[test]
    fn pathological_probabilities_never_panic() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 7.0] {
            let plan = FaultPlan {
                seed: 1,
                drop_beat: bad,
                corrupt_beat: bad,
                mm2s_stall: bad,
                s2mm_stall: bad,
                dma_halt: bad,
                stall_every: 0,
                seu_every: 0,
            };
            // validate() rejects these, but sample() must still be total.
            let _ = plan.sample(0, 0, 16);
            let _ = plan.sample(3, 2, 0); // zero-word packet, too
        }
    }

    #[test]
    fn beat_fault_projection() {
        assert_eq!(
            InjectedFault::DropBeat(4).beat_fault(),
            Some(BeatFault::Drop(4))
        );
        assert_eq!(
            InjectedFault::CorruptBeat(9).beat_fault(),
            Some(BeatFault::Corrupt(9))
        );
        assert_eq!(InjectedFault::Stall(DmaChannel::Mm2s).beat_fault(), None);
        assert_eq!(
            InjectedFault::Halt(DmaChannel::S2mm, HwFault::DecErr).beat_fault(),
            None
        );
    }

    #[test]
    fn uniform_covers_every_fault_kind_eventually() {
        let plan = FaultPlan::uniform(2016, 1.0);
        let mut saw = [false; 4];
        for img in 0..500 {
            match plan.sample(img, 0, 256) {
                Some(InjectedFault::DropBeat(_)) => saw[0] = true,
                Some(InjectedFault::CorruptBeat(_)) => saw[1] = true,
                Some(InjectedFault::Stall(_)) => saw[2] = true,
                Some(InjectedFault::Halt(_, _)) => saw[3] = true,
                None => unreachable!("rate-1.0 plan must always fault"),
            }
        }
        assert_eq!(saw, [true; 4]);
    }

    #[test]
    fn seu_plan_is_transport_clean_and_deterministic() {
        let plan = FaultPlan::seu(11, 8);
        // Transport: byte-identical to a clean run by construction.
        assert!(plan.is_fault_free());
        plan.validate().unwrap();
        for img in 0..64 {
            assert_eq!(plan.sample(img, 0, 256), None);
        }
        // Selection replays identically and hits roughly one in eight.
        let due: Vec<u64> = (0..512).filter(|&s| plan.seu_due(s)).collect();
        assert_eq!(
            due,
            (0..512).filter(|&s| plan.seu_due(s)).collect::<Vec<_>>()
        );
        assert!(
            (32..=96).contains(&due.len()),
            "expected ~64 upsets in 512 dispatches, got {}",
            due.len()
        );
        // Site streams replay and decorrelate across dispatches.
        let a: Vec<u64> = (0..4).map(|_| plan.seu_stream(due[0]).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(
            plan.seu_stream(due[0]).next_u64(),
            plan.seu_stream(due[1]).next_u64()
        );
        // A different seed selects a different dispatch subset.
        let other = FaultPlan::seu(12, 8);
        assert!((0..512).any(|s| plan.seu_due(s) != other.seu_due(s)));
    }

    #[test]
    fn seu_disabled_never_fires() {
        let plan = FaultPlan::none();
        assert!((0..1_000).all(|s| !plan.seu_due(s)));
    }

    #[test]
    fn retry_policy_default_is_three() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.max_attempts(), 4);
    }

    #[test]
    fn retry_policy_saturates_instead_of_wrapping() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
        };
        assert_eq!(p.max_attempts(), u32::MAX);
        let zero = RetryPolicy { max_retries: 0 };
        assert_eq!(zero.max_attempts(), 1, "zero retries still means one try");
    }

    #[test]
    fn stats_balance_check() {
        let stats = FaultStats {
            clean: 7,
            recovered: 2,
            abandoned: 1,
            ..Default::default()
        };
        assert!(stats.balances(10));
        assert!(!stats.balances(11));
    }
}
