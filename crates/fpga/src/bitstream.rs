//! Bitstream artifacts — the terminal output of the paper's flow
//! ("the produced bitstream can be directly downloaded on the target
//! device"). Here a bitstream carries the design metadata needed to
//! program the simulated device and to verify part compatibility.

use crate::block_design::BlockDesign;
use crate::board::Board;
use crate::ip_core::CnnIpCore;
use cnn_hls::{HlsProject, ResourceUsage};

/// Semantic identity of the model a bitstream serves: a human-chosen
/// model name plus a monotonically increasing version number. Carried
/// *alongside* [`Bitstream::content_hash`] — the hash says "these
/// exact bits", the version says "this release of this model" — so a
/// pool can refuse a version-skewed weight/bitstream pair at attach
/// time instead of discovering the skew as wrong answers.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelVersion {
    /// Model family name (e.g. `usps-small`). No whitespace, so the
    /// version stays line-parseable in manifests.
    pub model: String,
    /// Release number within the family; later is newer.
    pub version: u32,
}

impl ModelVersion {
    /// Builds a version tag, replacing any whitespace in the model
    /// name with `-` to keep manifest lines parseable.
    pub fn new(model: impl Into<String>, version: u32) -> ModelVersion {
        let model: String = model.into();
        ModelVersion {
            model: model.split_whitespace().collect::<Vec<_>>().join("-"),
            version,
        }
    }

    /// The placeholder identity of builds that never opted into
    /// versioning.
    pub fn unversioned() -> ModelVersion {
        ModelVersion::new("unversioned", 0)
    }

    /// True when `other` is the same model family (a legal upgrade
    /// source/target); differing families are a skewed pair.
    pub fn same_model(&self, other: &ModelVersion) -> bool {
        self.model == other.model
    }
}

impl std::fmt::Display for ModelVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@v{}", self.model, self.version)
    }
}

/// A generated "bitstream": the programmed configuration of one build.
#[derive(Clone, Debug)]
pub struct Bitstream {
    /// Board the bitstream was implemented for.
    pub board: Board,
    /// The block design it implements.
    pub design: BlockDesign,
    /// Resource utilization of the implementation.
    pub resources: ResourceUsage,
    /// The CNN core configuration (network + timing).
    pub core: CnnIpCore,
    /// Directive label the build used.
    pub directives: String,
    /// Semantic model/version identity (see [`ModelVersion`]).
    pub version: ModelVersion,
}

/// Errors when producing a bitstream.
#[derive(Clone, Debug, PartialEq)]
pub enum BitstreamError {
    /// The block design failed validation.
    InvalidDesign(String),
    /// The project was bound for a different part than the board's.
    PartMismatch {
        /// Part the project targeted.
        project: &'static str,
        /// Part on the board.
        board: &'static str,
    },
    /// The design does not fit the board's part.
    DoesNotFit(Vec<&'static str>),
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::InvalidDesign(m) => write!(f, "invalid block design: {m}"),
            BitstreamError::PartMismatch { project, board } => {
                write!(f, "project part {project} != board part {board}")
            }
            BitstreamError::DoesNotFit(rs) => write!(f, "design does not fit: {rs:?}"),
        }
    }
}

impl std::error::Error for BitstreamError {}

impl Bitstream {
    /// Implements `project` on `board` with the Fig. 5 block design —
    /// the `launch_runs impl_1 -to_step write_bitstream` equivalent.
    pub fn implement(project: &HlsProject, board: Board) -> Result<Bitstream, BitstreamError> {
        if project.part() != board.part() {
            return Err(BitstreamError::PartMismatch {
                project: project.part().name,
                board: board.part().name,
            });
        }
        let resources = project.resources();
        if !resources.fits() {
            return Err(BitstreamError::DoesNotFit(resources.overflows()));
        }
        let design = BlockDesign::fig5();
        design
            .validate()
            .map_err(|errs| BitstreamError::InvalidDesign(format!("{errs:?}")))?;
        Ok(Bitstream {
            board,
            design,
            resources,
            core: CnnIpCore::from_project(project),
            directives: project.directives().label(),
            version: ModelVersion::unversioned(),
        })
    }

    /// Tags the bitstream with a semantic model/version identity.
    /// The tag participates in [`Bitstream::content_text`], so two
    /// otherwise identical builds released under different versions
    /// have different content hashes.
    pub fn with_version(mut self, version: ModelVersion) -> Bitstream {
        self.version = version;
        self
    }

    /// Canonical, line-oriented manifest of everything that makes this
    /// bitstream what it is: the board and part, the block design's
    /// components and connections, resource utilization, the CNN
    /// core's timing contract and the directive label. Stable across
    /// runs for equal builds, so it can be content-addressed.
    pub fn content_text(&self) -> String {
        let mut out = String::from("cnn2fpga-bitstream v1\n");
        out.push_str(&format!("board {}\n", self.board.name()));
        out.push_str(&format!("part {}\n", self.board.part().name));
        out.push_str(&format!("design {}\n", self.design.name));
        for c in &self.design.components {
            out.push_str(&format!(
                "component {} {:?} pins {}\n",
                c.name,
                c.kind,
                c.pins.join(",")
            ));
        }
        for c in &self.design.connections {
            out.push_str(&format!("connection {} -> {}\n", c.from, c.to));
        }
        out.push_str(&format!(
            "resources ff={} lut={} lutram={} bram36={} dsp={}\n",
            self.resources.ff,
            self.resources.lut,
            self.resources.lutram,
            self.resources.bram36,
            self.resources.dsp
        ));
        out.push_str(&format!(
            "core input={} words={} latency={} interval={} dataflow={}\n",
            self.core.input_shape(),
            self.core.input_words(),
            self.core.latency_cycles(),
            self.core.interval_cycles(),
            self.core.dataflow()
        ));
        out.push_str(&format!("directives {}\n", self.directives));
        out.push_str(&format!(
            "version {} {}\n",
            self.version.model, self.version.version
        ));
        out
    }

    /// FNV-1a/64 hash of [`Bitstream::content_text`] — the identity
    /// the resumable workflow journals for the programming stage.
    pub fn content_hash(&self) -> u64 {
        cnn_store::hash::fnv64(self.content_text().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_hls::{DirectiveSet, FpgaPart, HlsProject};
    use cnn_nn::Network;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    fn test4_net() -> Network {
        let mut rng = seeded_rng(2);
        Network::builder(Shape::new(3, 32, 32))
            .conv(12, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(36, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(36, Some(Activation::Tanh), &mut rng)
            .linear(10, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn implement_succeeds_on_matching_board() {
        let p = HlsProject::new(
            &test1_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        )
        .unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        assert_eq!(bs.board, Board::Zedboard);
        assert_eq!(bs.directives, "dataflow+pipe-conv");
        assert!(bs.resources.fits());
    }

    #[test]
    fn part_mismatch_rejected() {
        let p = HlsProject::new(&test1_net(), DirectiveSet::naive(), FpgaPart::zynq7020()).unwrap();
        let err = Bitstream::implement(&p, Board::Zybo).unwrap_err();
        assert!(matches!(err, BitstreamError::PartMismatch { .. }));
    }

    #[test]
    fn overflowing_design_rejected() {
        // Test-4 network bound (unchecked) for the Zybo: BRAM overflow.
        let p = HlsProject::new_unchecked(
            &test4_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7010(),
        );
        let err = Bitstream::implement(&p, Board::Zybo).unwrap_err();
        match err {
            BitstreamError::DoesNotFit(rs) => assert!(rs.contains(&"BRAM")),
            other => panic!("unexpected {other}"),
        }
    }

    /// A rand-free deterministic build (the `seeded_rng` path is not
    /// available in every test environment).
    fn mix_net() -> Network {
        use cnn_nn::{Layer, LinearLayer};
        use cnn_store::hash::SplitMix64;
        let mut mix = SplitMix64::new(0xB17);
        let mut val =
            |n: usize| -> Vec<f32> { (0..n).map(|_| (mix.next_f64() - 0.5) as f32).collect() };
        Network::new(
            Shape::new(1, 8, 8),
            vec![
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: val(10 * 64),
                    bias: val(10),
                    inputs: 64,
                    outputs: 10,
                    activation: None,
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap()
    }

    #[test]
    fn version_tag_changes_content_hash_but_not_build() {
        let p =
            HlsProject::new(&mix_net(), DirectiveSet::optimized(), FpgaPart::zynq7020()).unwrap();
        let base = Bitstream::implement(&p, Board::Zedboard).unwrap();
        assert_eq!(base.version, ModelVersion::unversioned());
        let v1 = base.clone().with_version(ModelVersion::new("usps", 1));
        let v2 = base.clone().with_version(ModelVersion::new("usps", 2));
        assert_ne!(base.content_hash(), v1.content_hash());
        assert_ne!(v1.content_hash(), v2.content_hash());
        assert!(v1.version.same_model(&v2.version));
        assert!(!v1.version.same_model(&ModelVersion::new("other", 1)));
        assert_eq!(v2.version.to_string(), "usps@v2");
        assert!(v1.content_text().contains("version usps 1"));
    }

    #[test]
    fn model_names_with_whitespace_are_sanitized() {
        let v = ModelVersion::new("two words here", 3);
        assert_eq!(v.model, "two-words-here");
    }

    #[test]
    fn error_display() {
        let e = BitstreamError::PartMismatch {
            project: "a",
            board: "b",
        };
        assert!(e.to_string().contains("a"));
        assert!(BitstreamError::DoesNotFit(vec!["DSP"])
            .to_string()
            .contains("DSP"));
    }
}
