//! The programmed Zynq device: the PS-side driver loop that pushes a
//! test set through the AXI DMA into the CNN IP core and collects the
//! classifications, with exact fabric-cycle accounting.
//!
//! Two execution modes exercise the same timing model:
//!
//! * [`ZynqDevice::classify_batch`] — the fast in-process loop used by
//!   benchmarks and tables,
//! * [`ZynqDevice::classify_batch_threaded`] — a real two-thread
//!   co-simulation where the PS driver and the fabric run concurrently,
//!   connected by bounded crossbeam channels modelling the AXI4-Stream
//!   FIFOs (backpressure included). Classifications and cycle counts
//!   are identical to the in-process loop by construction.

use crate::axi::{AxiDma, AxiStream, StreamBeat};
use crate::bitstream::Bitstream;
use crate::dma_regs::DmaDriver;
use crate::board::Board;
use cnn_tensor::parallel::par_map;
use cnn_tensor::Tensor;
use crossbeam::channel::{Receiver, Sender};

/// Result of classifying a batch on the device.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchResult {
    /// Predicted class per image, in input order.
    pub predictions: Vec<usize>,
    /// Total fabric cycles (compute; DMA overlaps under DATAFLOW).
    pub fabric_cycles: u64,
    /// Total DMA transfer cycles issued (for bus-utilization stats).
    pub dma_cycles: u64,
    /// Wall-clock seconds at the fabric clock.
    pub seconds: f64,
}

/// A Zynq board programmed with a CNN bitstream.
#[derive(Clone, Debug)]
pub struct ZynqDevice {
    board: Board,
    bitstream: Bitstream,
}

/// Errors when programming the device.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceError {
    /// Bitstream built for a different board.
    WrongBoard {
        /// Board the bitstream targets.
        bitstream: Board,
        /// Actual device board.
        device: Board,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::WrongBoard { bitstream, device } => write!(
                f,
                "bitstream for {} cannot program a {}",
                bitstream.name(),
                device.name()
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

impl ZynqDevice {
    /// Programs `board` with `bitstream` (the "download on the target
    /// device" step).
    pub fn program(board: Board, bitstream: Bitstream) -> Result<ZynqDevice, DeviceError> {
        if bitstream.board != board {
            return Err(DeviceError::WrongBoard { bitstream: bitstream.board, device: board });
        }
        Ok(ZynqDevice { board, bitstream })
    }

    /// The board this device is.
    pub fn board(&self) -> Board {
        self.board
    }

    /// The loaded bitstream.
    pub fn bitstream(&self) -> &Bitstream {
        &self.bitstream
    }

    fn total_cycles(&self, n: u64, dma_cycles: u64) -> (u64, f64) {
        let core = &self.bitstream.core;
        let fabric = core.batch_cycles(n);
        // Under DATAFLOW the DMA streams overlap compute; otherwise the
        // transfers serialize with it. Note the HLS schedule already
        // charges the input-read loop, so only the non-overlapped
        // return-word transfers add here.
        let total = if core.dataflow() {
            fabric
        } else {
            fabric + dma_cycles / 8 // light bus contention charge
        };
        let secs = total as f64 / cnn_hls::calibration::FABRIC_CLOCK_HZ as f64;
        (total, secs)
    }

    /// Classifies `images` through the simulated PS→DMA→IP loop,
    /// computing predictions in parallel (rayon) and cycles
    /// analytically.
    pub fn classify_batch(&self, images: &[Tensor]) -> BatchResult {
        let core = &self.bitstream.core;
        let mut dma = AxiDma::new();
        let mut driver = DmaDriver::new();
        let words = core.input_words();
        let mut dma_cycles = 0u64;
        for (i, _) in images.iter().enumerate() {
            // Program the register file exactly as the PS driver does
            // (S2MM return word first, then the MM2S image transfer).
            driver
                .transfer(
                    0x1000_0000u32.wrapping_add((i as u32) * words as u32 * 4),
                    words as u32 * 4,
                    0x2000_0000,
                    4,
                )
                .expect("simple-transfer protocol");
            dma_cycles += dma.mm2s(words);
            dma_cycles += dma.s2mm(1);
        }
        debug_assert_eq!(driver.regs().transfers(), (images.len() as u64, images.len() as u64));
        let predictions = par_map(images, |img| core.process(img));
        let (fabric_cycles, seconds) = self.total_cycles(images.len() as u64, dma_cycles);
        BatchResult { predictions, fabric_cycles, dma_cycles, seconds }
    }

    /// Same classification through a two-thread co-simulation: the
    /// calling thread plays the PS/DMA (streaming packets), a fabric
    /// thread plays the IP core (consuming packets, returning one
    /// class word per image).
    pub fn classify_batch_threaded(&self, images: &[Tensor]) -> BatchResult {
        let core = self.bitstream.core.clone();
        let words = core.input_words() as usize;

        let in_stream = AxiStream::with_depth(words.max(16));
        let out_stream = AxiStream::with_depth(16);
        let (in_tx, in_rx): (Sender<StreamBeat>, Receiver<StreamBeat>) = in_stream.split();
        let (out_tx, out_rx) = out_stream.split();

        let n = images.len();
        let fabric = std::thread::spawn(move || {
            for _ in 0..n {
                let packet = AxiStream::recv_packet(&in_rx);
                let class = core.process_packet(&packet);
                AxiStream::send_packet(&out_tx, &[class as f32]);
            }
        });

        let mut dma = AxiDma::new();
        let mut dma_cycles = 0u64;
        let mut predictions = Vec::with_capacity(n);
        for img in images {
            dma_cycles += dma.mm2s(img.len() as u64);
            AxiStream::send_packet(&in_tx, img.as_slice());
            let back = AxiStream::recv_packet(&out_rx);
            dma_cycles += dma.s2mm(back.len() as u64);
            predictions.push(back[0] as usize);
        }
        fabric.join().expect("fabric thread panicked");

        let (fabric_cycles, seconds) = self.total_cycles(n as u64, dma_cycles);
        BatchResult { predictions, fabric_cycles, dma_cycles, seconds }
    }

    /// Prediction error over a labelled set (the Table I metric).
    pub fn prediction_error(&self, images: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty test set");
        let res = self.classify_batch(images);
        let wrong = res
            .predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p != l)
            .count();
        wrong as f64 / images.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_hls::{DirectiveSet, FpgaPart, HlsProject};
    use cnn_nn::Network;
    use cnn_tensor::init::{seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn device(directives: DirectiveSet) -> (ZynqDevice, Network) {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        let p = HlsProject::new(&net, directives, FpgaPart::zynq7020()).unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        (ZynqDevice::program(Board::Zedboard, bs).unwrap(), net)
    }

    fn images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0))
            })
            .collect()
    }

    #[test]
    fn wrong_board_rejected() {
        let (_, net) = device(DirectiveSet::naive());
        let p = HlsProject::new(&net, DirectiveSet::naive(), FpgaPart::zynq7020()).unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        let err = ZynqDevice::program(Board::Zybo, bs).unwrap_err();
        assert!(matches!(err, DeviceError::WrongBoard { .. }));
    }

    #[test]
    fn device_predictions_match_software() {
        let (dev, net) = device(DirectiveSet::optimized());
        let imgs = images(32, 9);
        let res = dev.classify_batch(&imgs);
        let sw: Vec<usize> = imgs.iter().map(|i| net.predict(i)).collect();
        assert_eq!(res.predictions, sw, "HW and SW classifications must be identical");
    }

    #[test]
    fn threaded_cosim_matches_fast_path() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(16, 11);
        let fast = dev.classify_batch(&imgs);
        let threaded = dev.classify_batch_threaded(&imgs);
        assert_eq!(fast.predictions, threaded.predictions);
        assert_eq!(fast.fabric_cycles, threaded.fabric_cycles);
        assert_eq!(fast.dma_cycles, threaded.dma_cycles);
    }

    #[test]
    fn optimized_device_is_faster() {
        let (naive, _) = device(DirectiveSet::naive());
        let (opt, _) = device(DirectiveSet::optimized());
        let imgs = images(64, 5);
        let rn = naive.classify_batch(&imgs);
        let ro = opt.classify_batch(&imgs);
        assert!(
            ro.seconds < rn.seconds / 3.0,
            "expected ≳3x speedup: naive {:.4}s vs opt {:.4}s",
            rn.seconds,
            ro.seconds
        );
    }

    #[test]
    fn prediction_error_counts_correctly() {
        let (dev, net) = device(DirectiveSet::naive());
        let imgs = images(10, 21);
        let labels: Vec<usize> = imgs.iter().map(|i| net.predict(i)).collect();
        assert_eq!(dev.prediction_error(&imgs, &labels), 0.0);
        let wrong: Vec<usize> = labels.iter().map(|l| (l + 1) % 10).collect();
        assert_eq!(dev.prediction_error(&imgs, &wrong), 1.0);
    }

    #[test]
    fn dma_stats_scale_with_batch() {
        let (dev, _) = device(DirectiveSet::optimized());
        let r1 = dev.classify_batch(&images(1, 2));
        let r4 = dev.classify_batch(&images(4, 2));
        assert!(r4.dma_cycles > r1.dma_cycles);
        assert_eq!(r4.dma_cycles, 4 * r1.dma_cycles);
    }

    #[test]
    fn empty_batch_is_zero_cycles() {
        let (dev, _) = device(DirectiveSet::optimized());
        let res = dev.classify_batch(&[]);
        assert!(res.predictions.is_empty());
        assert_eq!(res.fabric_cycles, 0);
    }
}
