//! The programmed Zynq device: the PS-side driver loop that pushes a
//! test set through the AXI DMA into the CNN IP core and collects the
//! classifications, with exact fabric-cycle accounting.
//!
//! Two execution modes exercise the same timing model:
//!
//! * [`ZynqDevice::classify_batch`] — the fast in-process loop used by
//!   benchmarks and tables,
//! * [`ZynqDevice::classify_batch_threaded`] — a real two-thread
//!   co-simulation where the PS driver and the fabric run concurrently,
//!   connected by bounded crossbeam channels modelling the AXI4-Stream
//!   FIFOs (backpressure included). Classifications and cycle counts
//!   are identical to the in-process loop by construction.
//!
//! Both modes accept a [`FaultPlan`]: the driver loop detects injected
//! transport faults (via DMASR error bits, poll timeouts, or the
//! CRC32 trailer on every AXI4-Stream packet — see
//! [`crate::axi::frame_packet`]), runs the bounded reset-and-retry
//! policy, and reports a per-image [`ImageOutcome`]. Images that
//! exhaust the retry budget are *abandoned* — their prediction slot
//! holds [`ABANDONED`] and the caller (see
//! `cnn-framework::workflow::classify_with_recovery`) falls back to
//! the bit-identical software path.
//!
//! The CRC layer is what makes *silent* corruption (finite bit flips
//! that pass the core's NaN screen) a detected-and-retried event
//! instead of a wrong classification. Every packet — image payload
//! out, class word back — carries one extra trailer word; the
//! receive side checks it before trusting the payload.

use crate::axi::{
    apply_beat_fault, check_packet, frame_packet, AxiDma, AxiStream, StreamBeat, CRC_WORDS,
};
use crate::bitstream::Bitstream;
use crate::board::Board;
use crate::dma_regs::{DmaDriver, HwFault};
use crate::fault::{FaultPlan, FaultStats, InjectedFault, RetryPolicy};
use crate::ip_core::CnnIpCore;
use crate::weight_mem::WeightMemory;
use cnn_hls::calibration::{DMA_RESET_CYCLES, DMA_SETUP_CYCLES, DMA_TIMEOUT_CYCLES};
use cnn_store::GoldenManifest;
use cnn_tensor::parallel::par_map;
use cnn_tensor::Tensor;
use crossbeam::channel::{Receiver, Sender};
use serde::Serialize;

/// Sentinel prediction for an image the hardware abandoned after
/// exhausting its retry budget (no real class index can be this).
pub const ABANDONED: usize = usize::MAX;

/// What happened to one image on the hardware path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ImageOutcome {
    /// Classified on the first attempt.
    Clean,
    /// Classified after `retries` failed attempts (reset-and-retry).
    Recovered {
        /// Failed attempts before the one that succeeded.
        retries: u32,
    },
    /// Every attempt failed; the prediction slot holds [`ABANDONED`]
    /// and the image needs the software fallback.
    Abandoned {
        /// Attempts spent (the policy's full budget).
        attempts: u32,
    },
}

impl ImageOutcome {
    /// True unless the image was abandoned.
    pub fn classified(&self) -> bool {
        !matches!(self, ImageOutcome::Abandoned { .. })
    }
}

/// Result of classifying a batch on the device.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchResult {
    /// Predicted class per image, in input order ([`ABANDONED`] for
    /// images the hardware gave up on).
    pub predictions: Vec<usize>,
    /// Total fabric cycles (compute; DMA overlaps under DATAFLOW;
    /// includes the fault/retry/reset penalty cycles).
    pub fabric_cycles: u64,
    /// Useful DMA transfer cycles issued (successful attempts only,
    /// for bus-utilization stats).
    pub dma_cycles: u64,
    /// Wall-clock seconds at the fabric clock.
    pub seconds: f64,
    /// Per-image hardware outcome, in input order.
    pub outcomes: Vec<ImageOutcome>,
    /// Aggregate fault/recovery accounting.
    pub faults: FaultStats,
}

impl BatchResult {
    /// Seconds burned on failed attempts, timeouts and resets (part
    /// of [`Self::seconds`]) — the energy model charges these as
    /// waste.
    pub fn fault_seconds(&self) -> f64 {
        self.faults.fault_cycles as f64 / cnn_hls::calibration::FABRIC_CLOCK_HZ as f64
    }

    /// Indices of abandoned images (the software-fallback set).
    pub fn abandoned_indices(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.classified())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Result of serving one image through [`ZynqDevice::dispatch_image`]
/// — the unit of work a multi-device serving pool schedules.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageDispatch {
    /// Predicted class, or [`ABANDONED`] when every attempt failed.
    pub prediction: usize,
    /// What happened on the hardware path.
    pub outcome: ImageOutcome,
    /// Total simulated cycles this dispatch charged the device (DMA
    /// transfers, fault/reset penalties, and core compute).
    pub cycles: u64,
    /// Useful DMA transfer cycles (successful attempts only).
    pub dma_cycles: u64,
    /// Fault/recovery accounting for this dispatch alone.
    pub faults: FaultStats,
}

/// A Zynq board programmed with a CNN bitstream.
///
/// Beyond the transport loop the device models the fabric's long-lived
/// state: the banked on-chip **weight memory** captured at programming
/// time ([`WeightMemory`]). A [`FaultPlan`] with `seu_every > 0` upsets
/// that memory at deterministic dispatch points — corruption the CRC
/// stream trailers can never see, because it happens *behind* the DMA.
/// While upset, the device computes with the corrupted parameters
/// (`corrupted` holds the rebuilt core) and keeps returning well-formed
/// predictions; [`Self::scrub`], [`Self::canary`] and
/// [`Self::reload_weights`] are the detection/repair surface a serving
/// pool drives.
#[derive(Clone, Debug)]
pub struct ZynqDevice {
    board: Board,
    bitstream: Bitstream,
    memory: WeightMemory,
    /// The core rebuilt with the upset weight image; `None` while the
    /// memory is clean, so the fault-free path computes on the pristine
    /// `bitstream.core` byte-for-byte.
    corrupted: Option<CnnIpCore>,
    /// Monotonic dispatch sequence number — the SEU plan's cycle axis.
    dispatch_seq: u64,
    seu_injected: u64,
}

/// Errors when programming the device.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceError {
    /// Bitstream built for a different board.
    WrongBoard {
        /// Board the bitstream targets.
        bitstream: Board,
        /// Actual device board.
        device: Board,
    },
    /// The offered bitstream belongs to a different model family than
    /// the one the device is serving — a version-skewed pair that a
    /// rolling upgrade must refuse at attach time rather than discover
    /// as wrong answers.
    ModelSkew {
        /// Version the device currently serves.
        current: crate::bitstream::ModelVersion,
        /// Version the caller tried to attach.
        offered: crate::bitstream::ModelVersion,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::WrongBoard { bitstream, device } => write!(
                f,
                "bitstream for {} cannot program a {}",
                bitstream.name(),
                device.name()
            ),
            DeviceError::ModelSkew { current, offered } => write!(
                f,
                "version-skewed pair: device serves {current}, offered {offered}"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// What one [`ZynqDevice::reconfigure`] swap did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconfigReport {
    /// Weight banks loaded from the new model image.
    pub banks_loaded: usize,
    /// Bank an injected fault upset *during* the swap, if the plan
    /// fired at this reconfiguration point. The device comes up
    /// serving corrupted parameters — exactly what the post-swap
    /// canary probes exist to catch.
    pub swap_upset: Option<usize>,
}

/// Extra cycles one failed attempt burns, by fault kind: beat faults
/// waste the full CRC-framed transfer both ways (detected only at
/// the receive-side trailer check), a stall wastes the driver's
/// whole poll budget, a halt is flagged on the first status read
/// after setup.
fn fault_attempt_cycles(fault: InjectedFault, words: u64) -> u64 {
    match fault {
        InjectedFault::DropBeat(_) | InjectedFault::CorruptBeat(_) => {
            (DMA_SETUP_CYCLES + words + CRC_WORDS) + (DMA_SETUP_CYCLES + 1 + CRC_WORDS)
        }
        InjectedFault::Stall(_) => DMA_SETUP_CYCLES + DMA_TIMEOUT_CYCLES,
        InjectedFault::Halt(_, _) => DMA_SETUP_CYCLES,
    }
}

/// Whether the engine must be soft-reset after this fault.
fn fault_needs_reset(fault: InjectedFault) -> bool {
    matches!(fault, InjectedFault::Stall(_) | InjectedFault::Halt(_, _))
}

/// Pre-registers every outcome/fault counter series at zero so a
/// fault-free batch still exports them (a Prometheus scrape must see
/// `cnn_images_total{outcome="abandoned"} 0`, not a missing series).
fn preregister_batch_metrics() {
    for outcome in ["clean", "recovered", "abandoned"] {
        cnn_trace::counter_add("cnn_images_total", &[("outcome", outcome)], 0);
    }
    cnn_trace::counter_add("cnn_dma_retries_total", &[], 0);
    cnn_trace::counter_add("cnn_dma_resets_total", &[], 0);
}

/// The shared per-image retry loop: samples the fault for each
/// attempt, delegates the actual transfer to `attempt_fn` (`Some`
/// prediction on success), and keeps the cycle/outcome accounting —
/// identical for the fast and threaded paths by construction.
///
/// `attempt_base` offsets the attempt index fed to the fault
/// sampler: a serving pool re-dispatching an image (to the same or
/// another device) passes a fresh base so the retry does not replay
/// the exact fault that just killed the attempt. Batch paths pass 0.
fn run_image<F>(
    plan: &FaultPlan,
    policy: &RetryPolicy,
    image: usize,
    attempt_base: u32,
    words: u64,
    stats: &mut FaultStats,
    mut attempt_fn: F,
) -> ImageOutcome
where
    F: FnMut(Option<InjectedFault>) -> Option<usize>,
{
    // The sampler sees the wire length: payload plus CRC trailer, so
    // a beat fault can land on the trailer word too.
    let wire_words = (words + CRC_WORDS) as usize;
    for attempt in 0..policy.max_attempts() {
        // Request-scoped dispatches (the serving pool installs a
        // context before calling into the device) stamp every DMA
        // attempt on the flight recorder; context-free batch runs
        // stamp nothing — there is no trace id to attribute them to.
        if let Some(ctx) = cnn_trace::current_ctx() {
            cnn_trace::flight_record(
                ctx.trace_id,
                cnn_trace::FlightStage::DmaAttempt,
                cnn_trace::cycles(),
                u64::from(attempt_base.saturating_add(attempt)),
            );
        }
        let fault = plan.sample(image, attempt_base.saturating_add(attempt), wire_words);
        if let Some(f) = fault {
            stats.injected += 1;
            if cnn_trace::is_enabled() {
                cnn_trace::counter_add("cnn_faults_injected_total", &[("kind", f.kind_name())], 1);
                cnn_trace::instant("fpga", format!("fault {}", f.kind_name()));
            }
        }
        if attempt_fn(fault).is_some() {
            if attempt == 0 {
                stats.clean += 1;
                cnn_trace::counter_add("cnn_images_total", &[("outcome", "clean")], 1);
                return ImageOutcome::Clean;
            }
            stats.recovered += 1;
            cnn_trace::counter_add("cnn_images_total", &[("outcome", "recovered")], 1);
            return ImageOutcome::Recovered { retries: attempt };
        }
        if let Some(f) = fault {
            if f.beat_fault().is_some() {
                // A failed beat-fault attempt is by construction a
                // CRC trailer mismatch at the receive side — the
                // transfer completed, the payload was damaged.
                stats.crc_detected += 1;
                cnn_trace::counter_add("cnn_crc_detected_total", &[], 1);
            }
            let penalty = fault_attempt_cycles(f, words);
            stats.fault_cycles += penalty;
            cnn_trace::advance_cycles(penalty);
            if fault_needs_reset(f) {
                stats.resets += 1;
                stats.fault_cycles += DMA_RESET_CYCLES;
                cnn_trace::advance_cycles(DMA_RESET_CYCLES);
                cnn_trace::counter_add("cnn_dma_resets_total", &[], 1);
                cnn_trace::instant("fpga", "dma_soft_reset");
            }
        }
        if attempt + 1 < policy.max_attempts() {
            stats.retries += 1;
            cnn_trace::counter_add("cnn_dma_retries_total", &[], 1);
        }
    }
    stats.abandoned += 1;
    cnn_trace::counter_add("cnn_images_total", &[("outcome", "abandoned")], 1);
    ImageOutcome::Abandoned {
        attempts: policy.max_attempts(),
    }
}

/// One fast-path transfer attempt: programs the register file, moves
/// the CRC-framed packet, and validates the trailer at the receive
/// side. Shared by [`ZynqDevice::classify_batch_faulty`] and
/// [`ZynqDevice::dispatch_image`] so the batch and serving paths
/// cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn fast_attempt(
    core: &CnnIpCore,
    driver: &mut DmaDriver,
    dma: &mut AxiDma,
    dma_cycles: &mut u64,
    img: &Tensor,
    words: u64,
    src: u32,
    fault: Option<InjectedFault>,
) -> Option<usize> {
    let in_bytes = (words + CRC_WORDS) as u32 * 4;
    let out_bytes = (1 + CRC_WORDS) as u32 * 4;
    match fault {
        None => {
            // Program the register file exactly as the PS driver does
            // (S2MM return word first, then the MM2S image transfer).
            driver
                .transfer(src, in_bytes, 0x2000_0000, out_bytes)
                .ok()?;
            *dma_cycles += dma.mm2s(words + CRC_WORDS);
            *dma_cycles += dma.s2mm(1 + CRC_WORDS);
            Some(0) // prediction computed by the caller
        }
        Some(f @ (InjectedFault::DropBeat(_) | InjectedFault::CorruptBeat(_))) => {
            // The DMA itself completes; the damage shows up as a CRC
            // trailer mismatch when the framed packet is checked at
            // the core's stream interface.
            let _ = driver.transfer(src, in_bytes, 0x2000_0000, out_bytes);
            let mut framed = frame_packet(img.as_slice());
            apply_beat_fault(&mut framed, f.beat_fault().expect("beat fault"));
            match check_packet(&framed) {
                Ok(payload) => core.try_process_packet(payload).ok().map(|_| 0),
                Err(_) => {
                    driver.note_crc_error();
                    None
                }
            }
        }
        Some(InjectedFault::Stall(ch)) => {
            driver.inject(ch, HwFault::Stall);
            let r = driver.transfer(src, in_bytes, 0x2000_0000, out_bytes);
            driver.recover();
            r.ok().map(|_| 0)
        }
        Some(InjectedFault::Halt(ch, hw)) => {
            driver.inject(ch, hw);
            let r = driver.transfer(src, in_bytes, 0x2000_0000, out_bytes);
            driver.recover();
            r.ok().map(|_| 0)
        }
    }
}

impl ZynqDevice {
    /// Programs `board` with `bitstream` (the "download on the target
    /// device" step).
    pub fn program(board: Board, bitstream: Bitstream) -> Result<ZynqDevice, DeviceError> {
        if bitstream.board != board {
            return Err(DeviceError::WrongBoard {
                bitstream: bitstream.board,
                device: board,
            });
        }
        let memory = WeightMemory::load(bitstream.core.network());
        Ok(ZynqDevice {
            board,
            bitstream,
            memory,
            corrupted: None,
            dispatch_seq: 0,
            seu_injected: 0,
        })
    }

    /// The board this device is.
    pub fn board(&self) -> Board {
        self.board
    }

    /// The loaded bitstream.
    pub fn bitstream(&self) -> &Bitstream {
        &self.bitstream
    }

    /// The core actually computing right now: the pristine bitstream
    /// core while the weight memory is clean, the rebuilt corrupted
    /// core while it is upset. Timing is identical either way — an SEU
    /// changes arithmetic, never the HLS schedule.
    fn active_core(&self) -> &CnnIpCore {
        self.corrupted.as_ref().unwrap_or(&self.bitstream.core)
    }

    /// The on-device weight memory image (live contents + golden
    /// digests).
    pub fn memory(&self) -> &WeightMemory {
        &self.memory
    }

    /// SEUs injected into this device's weight memory so far.
    pub fn seu_injected(&self) -> u64 {
        self.seu_injected
    }

    /// The golden manifest for this device's weight image, keyed by
    /// the bitstream content hash — what `cnn-store` persists and what
    /// an external auditor scrubs against.
    pub fn golden_manifest(&self) -> GoldenManifest {
        self.memory.manifest(self.bitstream.content_hash())
    }

    /// One scrubber pass: recomputes every weight-bank checksum
    /// against the golden digests captured at programming time and
    /// returns the dirty banks. Read-only — repair is
    /// [`Self::reload_weights`], so the caller decides policy.
    pub fn scrub(&self) -> Vec<usize> {
        cnn_trace::counter_add("cnn_scrub_runs_total", &[], 1);
        let dirty = self.memory.dirty_banks();
        if !dirty.is_empty() {
            cnn_trace::counter_add("cnn_scrub_dirty_banks_total", &[], dirty.len() as u64);
        }
        dirty
    }

    /// One golden canary probe: runs `image` through the **active**
    /// core and compares the class bit-exactly against `expected`
    /// (the software reference's answer, computed offline). A failing
    /// canary is the behavioural detector for corruption the checksum
    /// scrubber has not reached yet.
    pub fn canary(&self, image: &Tensor, expected: usize) -> bool {
        let pass = self.active_core().process(image) == expected;
        cnn_trace::counter_add(
            "cnn_canary_probes_total",
            &[("result", if pass { "pass" } else { "fail" })],
            1,
        );
        pass
    }

    /// Reloads every dirty weight bank from the bitstream's pristine
    /// network and drops the corrupted core. Returns banks rewritten.
    pub fn reload_weights(&mut self) -> usize {
        let rewritten = self.memory.reload_all(self.bitstream.core.network());
        self.corrupted = None;
        rewritten
    }

    /// Swaps the device to a new versioned model image: replaces the
    /// bitstream, loads a fresh weight memory from the new network
    /// (architectures may differ across versions, so this is a full
    /// reload, not a bank repair), and drops any corrupted core. The
    /// caller is responsible for having drained in-flight work first —
    /// this is the device half of a rolling reconfiguration, not a
    /// scheduler.
    ///
    /// Refuses a bitstream built for another board, and a
    /// version-skewed pair (different model family) unless the device
    /// is still on the unversioned placeholder. `plan` makes the swap
    /// itself a fault-injection point: when [`FaultPlan::seu_due`]
    /// fires at this device's dispatch-sequence position, one bit of
    /// the *freshly loaded* image is upset mid-swap, so the device
    /// comes up corrupted and only the post-swap canary probes stand
    /// between it and traffic.
    pub fn reconfigure(
        &mut self,
        bitstream: Bitstream,
        plan: &FaultPlan,
    ) -> Result<ReconfigReport, DeviceError> {
        if bitstream.board != self.board {
            return Err(DeviceError::WrongBoard {
                bitstream: bitstream.board,
                device: self.board,
            });
        }
        let current = &self.bitstream.version;
        if current != &crate::bitstream::ModelVersion::unversioned()
            && !current.same_model(&bitstream.version)
        {
            return Err(DeviceError::ModelSkew {
                current: current.clone(),
                offered: bitstream.version.clone(),
            });
        }
        // The swap consumes one dispatch-sequence point, which is the
        // fault plan's cycle axis — a reconfiguration is vulnerable to
        // upsets exactly like a dispatch is.
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        let mut memory = WeightMemory::load(bitstream.core.network());
        let banks_loaded = memory.bank_count();
        let mut swap_upset = None;
        if plan.seu_due(seq) {
            if let Some(up) = memory.upset(&mut plan.seu_stream(seq)) {
                self.seu_injected += 1;
                swap_upset = Some(up.bank);
                cnn_trace::counter_add("cnn_sdc_seu_injected_total", &[], 1);
                if let Some(ctx) = cnn_trace::current_ctx() {
                    cnn_trace::flight_record(
                        ctx.trace_id,
                        cnn_trace::FlightStage::SeuInject,
                        cnn_trace::cycles(),
                        up.bank as u64,
                    );
                }
            }
        }
        self.corrupted = swap_upset.map(|_| {
            bitstream
                .core
                .with_network(memory.restore_network(bitstream.core.network()))
        });
        self.memory = memory;
        self.bitstream = bitstream;
        Ok(ReconfigReport {
            banks_loaded,
            swap_upset,
        })
    }

    /// `n_ok` is the number of images the core actually computed
    /// (clean + recovered); fault penalty cycles never overlap the
    /// DATAFLOW pipeline — the engine is being reset, not streaming.
    fn total_cycles(&self, n_ok: u64, dma_cycles: u64, fault_cycles: u64) -> (u64, f64) {
        let core = &self.bitstream.core;
        let fabric = core.batch_cycles(n_ok);
        // Under DATAFLOW the DMA streams overlap compute; otherwise the
        // transfers serialize with it. Note the HLS schedule already
        // charges the input-read loop, so only the non-overlapped
        // return-word transfers add here.
        let base = if core.dataflow() {
            fabric
        } else {
            fabric + dma_cycles / 8 // light bus contention charge
        };
        let total = base + fault_cycles;
        let secs = total as f64 / cnn_hls::calibration::FABRIC_CLOCK_HZ as f64;
        (total, secs)
    }

    /// Classifies `images` through the simulated PS→DMA→IP loop,
    /// computing predictions in parallel (rayon) and cycles
    /// analytically. Fault-free: every outcome is `Clean`.
    pub fn classify_batch(&self, images: &[Tensor]) -> BatchResult {
        self.classify_batch_faulty(images, &FaultPlan::none(), &RetryPolicy::default())
    }

    /// [`Self::classify_batch`] under an injected [`FaultPlan`], with
    /// the bounded reset-and-retry recovery `policy`.
    pub fn classify_batch_faulty(
        &self,
        images: &[Tensor],
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> BatchResult {
        let _span = cnn_trace::span("fpga", "classify_batch");
        preregister_batch_metrics();
        let core = self.active_core();
        let mut dma = AxiDma::new();
        let mut driver = DmaDriver::new();
        let words = core.input_words();
        let mut dma_cycles = 0u64;
        let mut stats = FaultStats::default();
        let mut outcomes = Vec::with_capacity(images.len());
        for (i, img) in images.iter().enumerate() {
            let src = 0x1000_0000u32.wrapping_add((i as u32).wrapping_mul(words as u32 * 4));
            let dma_before = dma_cycles;
            let outcome = run_image(plan, policy, i, 0, words, &mut stats, |fault| {
                fast_attempt(
                    core,
                    &mut driver,
                    &mut dma,
                    &mut dma_cycles,
                    img,
                    words,
                    src,
                    fault,
                )
            });
            cnn_trace::observe("cnn_image_dma_cycles", dma_cycles - dma_before);
            outcomes.push(outcome);
        }
        // Predictions in parallel, only for images the core received.
        let tagged: Vec<(bool, &Tensor)> = outcomes
            .iter()
            .zip(images)
            .map(|(o, img)| (o.classified(), img))
            .collect();
        let predictions = par_map(
            &tagged,
            |&(ok, img)| if ok { core.process(img) } else { ABANDONED },
        );
        let ok_count = stats.clean + stats.recovered;
        // The core's compute time lands on the cycle clock here: the
        // DATAFLOW pipeline runs as one batch, not per image.
        cnn_trace::advance_cycles(core.batch_cycles(ok_count));
        let (fabric_cycles, seconds) = self.total_cycles(ok_count, dma_cycles, stats.fault_cycles);
        BatchResult {
            predictions,
            fabric_cycles,
            dma_cycles,
            seconds,
            outcomes,
            faults: stats,
        }
    }

    /// Serves one image through the fast PS→DMA→IP loop — the
    /// serving-pool entry point. `attempt_base` offsets the fault
    /// sampler's attempt index so a pool-level re-dispatch of the
    /// same `image_id` (after this device abandoned it, or as a
    /// hedge on another device) draws fresh faults instead of
    /// replaying the ones that just failed.
    ///
    /// Takes `&mut self` because the device's long-lived state can
    /// change under the plan: when [`FaultPlan::seu_due`] fires at
    /// this dispatch point, one bit of the weight memory is upset
    /// *before* the transfer, and every later dispatch computes with
    /// the corrupted parameters. The upset touches no counter the
    /// transport layer owns — [`FaultStats`] stays clean and no CRC
    /// detection fires, which is precisely what makes it silent.
    pub fn dispatch_image(
        &mut self,
        image: &Tensor,
        image_id: usize,
        attempt_base: u32,
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> ImageDispatch {
        let seq = self.dispatch_seq;
        self.dispatch_seq += 1;
        if plan.seu_due(seq) {
            if let Some(up) = self.memory.upset(&mut plan.seu_stream(seq)) {
                self.seu_injected += 1;
                self.corrupted = Some(
                    self.bitstream
                        .core
                        .with_network(self.memory.restore_network(self.bitstream.core.network())),
                );
                cnn_trace::counter_add("cnn_sdc_seu_injected_total", &[], 1);
                if let Some(ctx) = cnn_trace::current_ctx() {
                    cnn_trace::flight_record(
                        ctx.trace_id,
                        cnn_trace::FlightStage::SeuInject,
                        cnn_trace::cycles(),
                        up.bank as u64,
                    );
                }
            }
        }
        let core = self.active_core();
        let words = core.input_words();
        let mut dma = AxiDma::new();
        let mut driver = DmaDriver::new();
        let mut dma_cycles = 0u64;
        let mut stats = FaultStats::default();
        let outcome = run_image(
            plan,
            policy,
            image_id,
            attempt_base,
            words,
            &mut stats,
            |fault| {
                fast_attempt(
                    core,
                    &mut driver,
                    &mut dma,
                    &mut dma_cycles,
                    image,
                    words,
                    0x1000_0000,
                    fault,
                )
            },
        );
        cnn_trace::observe("cnn_image_dma_cycles", dma_cycles);
        let (prediction, compute) = if outcome.classified() {
            (core.process(image), core.batch_cycles(1))
        } else {
            (ABANDONED, 0)
        };
        ImageDispatch {
            prediction,
            outcome,
            cycles: dma_cycles + stats.fault_cycles + compute,
            dma_cycles,
            faults: stats,
        }
    }

    /// Same classification through a two-thread co-simulation: the
    /// calling thread plays the PS/DMA (streaming packets), a fabric
    /// thread plays the IP core (consuming packets until the stream
    /// disconnects, returning one class word per image — NaN for a
    /// packet that fails the integrity check).
    pub fn classify_batch_threaded(&self, images: &[Tensor]) -> BatchResult {
        self.classify_batch_threaded_faulty(images, &FaultPlan::none(), &RetryPolicy::default())
    }

    /// [`Self::classify_batch_threaded`] under an injected
    /// [`FaultPlan`]. Produces the identical [`BatchResult`] to
    /// [`Self::classify_batch_faulty`] for the same inputs.
    pub fn classify_batch_threaded_faulty(
        &self,
        images: &[Tensor],
        plan: &FaultPlan,
        policy: &RetryPolicy,
    ) -> BatchResult {
        let _span = cnn_trace::span("fpga", "classify_batch_threaded");
        preregister_batch_metrics();
        let core = self.active_core().clone();
        let words = core.input_words();

        let in_stream = AxiStream::with_depth((words as usize + CRC_WORDS as usize).max(16));
        let out_stream = AxiStream::with_depth(16);
        let (in_tx, in_rx): (Sender<StreamBeat>, Receiver<StreamBeat>) = in_stream.split();
        let (out_tx, out_rx) = out_stream.split();

        let fabric_core = core.clone();
        let fabric = std::thread::spawn(move || {
            // Serve packets until the PS side hangs up — under faults
            // the packet count is not knowable up front. Every frame
            // is CRC-checked before the payload is trusted; the reply
            // carries its own trailer so the PS side can verify the
            // return path too.
            while let Ok(frame) = AxiStream::recv_packet(&in_rx) {
                let reply = match check_packet(&frame) {
                    Ok(payload) => match fabric_core.try_process_packet(payload) {
                        Ok(class) => class as f32,
                        Err(_) => f32::NAN, // malformed payload → error word
                    },
                    Err(_) => f32::NAN, // CRC mismatch → error word
                };
                if AxiStream::send_packet(&out_tx, &frame_packet(&[reply])).is_err() {
                    break;
                }
            }
        });

        let mut dma = AxiDma::new();
        let mut dma_cycles = 0u64;
        let mut stats = FaultStats::default();
        let mut predictions = Vec::with_capacity(images.len());
        let mut outcomes = Vec::with_capacity(images.len());
        for (i, img) in images.iter().enumerate() {
            let mut prediction = ABANDONED;
            let dma_before = dma_cycles;
            let outcome = run_image(plan, policy, i, 0, words, &mut stats, |fault| {
                match fault {
                    None => {
                        dma_cycles += dma.mm2s(words + CRC_WORDS);
                        AxiStream::send_packet(&in_tx, &frame_packet(img.as_slice())).ok()?;
                        let back = AxiStream::recv_packet(&out_rx).ok()?;
                        dma_cycles += dma.s2mm(back.len() as u64);
                        let word = *check_packet(&back).ok()?.first()?;
                        if word.is_finite() {
                            prediction = word as usize;
                            Some(prediction)
                        } else {
                            None
                        }
                    }
                    Some(f) => match f.beat_fault() {
                        Some(bf) => {
                            // Damaged framed packet goes onto the real
                            // stream; the fabric's CRC check fails and
                            // it replies an error word.
                            AxiStream::send_packet_faulted(
                                &in_tx,
                                &frame_packet(img.as_slice()),
                                Some(bf),
                            )
                            .ok()?;
                            let back = AxiStream::recv_packet(&out_rx).ok()?;
                            let word = *check_packet(&back).ok()?.first()?;
                            if word.is_finite() {
                                prediction = word as usize;
                                Some(prediction)
                            } else {
                                None
                            }
                        }
                        // Stall/halt: the transfer dies before any
                        // beat reaches the stream.
                        None => None,
                    },
                }
            });
            cnn_trace::observe("cnn_image_dma_cycles", dma_cycles - dma_before);
            predictions.push(prediction);
            outcomes.push(outcome);
        }
        drop(in_tx); // hang up: the fabric thread drains and exits
        fabric.join().expect("fabric thread panicked");

        let ok_count = stats.clean + stats.recovered;
        cnn_trace::advance_cycles(core.batch_cycles(ok_count));
        let (fabric_cycles, seconds) = self.total_cycles(ok_count, dma_cycles, stats.fault_cycles);
        BatchResult {
            predictions,
            fabric_cycles,
            dma_cycles,
            seconds,
            outcomes,
            faults: stats,
        }
    }

    /// Prediction error over a labelled set (the Table I metric).
    pub fn prediction_error(&self, images: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        assert!(!images.is_empty(), "empty test set");
        let res = self.classify_batch(images);
        let wrong = res
            .predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p != l)
            .count();
        wrong as f64 / images.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_hls::{DirectiveSet, FpgaPart, HlsProject};
    use cnn_nn::Network;
    use cnn_tensor::init::{seeded_rng, Init};
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn device(directives: DirectiveSet) -> (ZynqDevice, Network) {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        let p = HlsProject::new(&net, directives, FpgaPart::zynq7020()).unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        (ZynqDevice::program(Board::Zedboard, bs).unwrap(), net)
    }

    fn images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                cnn_tensor::init::init_tensor(&mut rng, Shape::new(1, 16, 16), Init::Uniform(1.0))
            })
            .collect()
    }

    #[test]
    fn wrong_board_rejected() {
        let (_, net) = device(DirectiveSet::naive());
        let p = HlsProject::new(&net, DirectiveSet::naive(), FpgaPart::zynq7020()).unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        let err = ZynqDevice::program(Board::Zybo, bs).unwrap_err();
        assert!(matches!(err, DeviceError::WrongBoard { .. }));
    }

    #[test]
    fn device_predictions_match_software() {
        let (dev, net) = device(DirectiveSet::optimized());
        let imgs = images(32, 9);
        let res = dev.classify_batch(&imgs);
        let sw: Vec<usize> = imgs.iter().map(|i| net.predict(i)).collect();
        assert_eq!(
            res.predictions, sw,
            "HW and SW classifications must be identical"
        );
    }

    #[test]
    fn threaded_cosim_matches_fast_path() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(16, 11);
        let fast = dev.classify_batch(&imgs);
        let threaded = dev.classify_batch_threaded(&imgs);
        assert_eq!(fast.predictions, threaded.predictions);
        assert_eq!(fast.fabric_cycles, threaded.fabric_cycles);
        assert_eq!(fast.dma_cycles, threaded.dma_cycles);
        assert_eq!(fast.outcomes, threaded.outcomes);
        assert_eq!(fast.faults, threaded.faults);
    }

    #[test]
    fn threaded_cosim_matches_fast_path_under_faults() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(24, 13);
        let plan = FaultPlan::uniform(2016, 0.4);
        let policy = RetryPolicy::default();
        let fast = dev.classify_batch_faulty(&imgs, &plan, &policy);
        let threaded = dev.classify_batch_threaded_faulty(&imgs, &plan, &policy);
        assert_eq!(
            fast, threaded,
            "fast and threaded paths must agree beat-for-beat"
        );
    }

    #[test]
    fn fault_free_plan_is_byte_identical_to_plain_batch() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(16, 17);
        let plain = dev.classify_batch(&imgs);
        let planned = dev.classify_batch_faulty(&imgs, &FaultPlan::none(), &RetryPolicy::default());
        assert_eq!(plain, planned);
        assert!(plain.outcomes.iter().all(|o| *o == ImageOutcome::Clean));
        assert_eq!(
            plain.faults,
            FaultStats {
                clean: 16,
                ..Default::default()
            }
        );
    }

    #[test]
    fn faulty_batch_accounting_balances() {
        let (dev, net) = device(DirectiveSet::optimized());
        let imgs = images(40, 3);
        for rate in [0.1, 0.5, 1.0] {
            let res = dev.classify_batch_faulty(
                &imgs,
                &FaultPlan::uniform(7, rate),
                &RetryPolicy::default(),
            );
            assert!(
                res.faults.balances(imgs.len()),
                "rate {rate}: {:?}",
                res.faults
            );
            assert_eq!(res.outcomes.len(), imgs.len());
            // Every classified image is still bit-identical to SW;
            // every abandoned slot holds the sentinel.
            for (i, (p, o)) in res.predictions.iter().zip(&res.outcomes).enumerate() {
                if o.classified() {
                    assert_eq!(*p, net.predict(&imgs[i]));
                } else {
                    assert_eq!(*p, ABANDONED);
                }
            }
        }
    }

    #[test]
    fn rate_one_abandons_everything() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(8, 19);
        let res = dev.classify_batch_faulty(
            &imgs,
            &FaultPlan::uniform(2016, 1.0),
            &RetryPolicy::default(),
        );
        assert_eq!(res.faults.abandoned, 8);
        assert!(res.predictions.iter().all(|&p| p == ABANDONED));
        assert_eq!(res.abandoned_indices(), (0..8).collect::<Vec<_>>());
        assert!(res.faults.fault_cycles > 0);
        assert!(res.fault_seconds() > 0.0);
    }

    #[test]
    fn faulty_run_is_reproducible_from_seed() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(20, 23);
        let plan = FaultPlan::uniform(99, 0.3);
        let a = dev.classify_batch_faulty(&imgs, &plan, &RetryPolicy::default());
        let b = dev.classify_batch_faulty(&imgs, &plan, &RetryPolicy::default());
        assert_eq!(a, b);
        // A different seed takes a different fault trajectory
        // (overwhelmingly likely at this rate and batch size).
        let c = dev.classify_batch_faulty(
            &imgs,
            &FaultPlan::uniform(100, 0.3),
            &RetryPolicy::default(),
        );
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn faults_slow_the_batch_down() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(32, 29);
        let clean = dev.classify_batch(&imgs);
        let faulty =
            dev.classify_batch_faulty(&imgs, &FaultPlan::uniform(5, 0.5), &RetryPolicy::default());
        assert!(faulty.faults.fault_cycles > 0);
        assert!(
            faulty.seconds > clean.seconds - 1e-12,
            "retries cannot make the batch faster"
        );
    }

    #[test]
    fn optimized_device_is_faster() {
        let (naive, _) = device(DirectiveSet::naive());
        let (opt, _) = device(DirectiveSet::optimized());
        let imgs = images(64, 5);
        let rn = naive.classify_batch(&imgs);
        let ro = opt.classify_batch(&imgs);
        assert!(
            ro.seconds < rn.seconds / 3.0,
            "expected ≳3x speedup: naive {:.4}s vs opt {:.4}s",
            rn.seconds,
            ro.seconds
        );
    }

    #[test]
    fn prediction_error_counts_correctly() {
        let (dev, net) = device(DirectiveSet::naive());
        let imgs = images(10, 21);
        let labels: Vec<usize> = imgs.iter().map(|i| net.predict(i)).collect();
        assert_eq!(dev.prediction_error(&imgs, &labels), 0.0);
        let wrong: Vec<usize> = labels.iter().map(|l| (l + 1) % 10).collect();
        assert_eq!(dev.prediction_error(&imgs, &wrong), 1.0);
    }

    #[test]
    fn dma_stats_scale_with_batch() {
        let (dev, _) = device(DirectiveSet::optimized());
        let r1 = dev.classify_batch(&images(1, 2));
        let r4 = dev.classify_batch(&images(4, 2));
        assert!(r4.dma_cycles > r1.dma_cycles);
        assert_eq!(r4.dma_cycles, 4 * r1.dma_cycles);
    }

    #[test]
    fn zero_retry_policy_abandons_with_one_attempt() {
        // Regression: an image abandoned on its *first* attempt must
        // report exactly one attempt and one injected fault — the
        // accounting used to be exercised only with retries > 0.
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(1, 31);
        let plan = FaultPlan::uniform(2016, 1.0);
        let policy = RetryPolicy { max_retries: 0 };
        let res = dev.classify_batch_faulty(&imgs, &plan, &policy);
        assert_eq!(res.outcomes, vec![ImageOutcome::Abandoned { attempts: 1 }]);
        assert_eq!(res.predictions, vec![ABANDONED]);
        assert_eq!(res.abandoned_indices(), vec![0]);
        assert_eq!(res.faults.injected, 1, "one attempt, one fault");
        assert_eq!(res.faults.retries, 0, "no retry was ever issued");
        assert_eq!(res.faults.abandoned, 1);
        assert!(res.faults.balances(1));
    }

    #[test]
    fn crc_catches_every_beat_fault() {
        // A plan of only beat faults: every injection must surface as
        // a CRC detection (that is the tentpole guarantee — silent
        // corruption becomes detected-and-retried).
        let (dev, net) = device(DirectiveSet::optimized());
        let imgs = images(32, 37);
        let plan = FaultPlan {
            seed: 41,
            drop_beat: 0.25,
            corrupt_beat: 0.25,
            ..FaultPlan::none()
        };
        let res = dev.classify_batch_faulty(&imgs, &plan, &RetryPolicy::default());
        assert!(res.faults.injected > 0, "plan should fire at this rate");
        assert_eq!(
            res.faults.crc_detected, res.faults.injected,
            "every beat fault must be caught by the trailer check"
        );
        // And no wrong classification slipped through.
        for (i, (p, o)) in res.predictions.iter().zip(&res.outcomes).enumerate() {
            if o.classified() {
                assert_eq!(*p, net.predict(&imgs[i]));
            }
        }
    }

    #[test]
    fn crc_framing_overhead_is_under_two_percent() {
        let (dev, _) = device(DirectiveSet::optimized());
        let imgs = images(16, 43);
        let res = dev.classify_batch(&imgs);
        let words = dev.bitstream().core.input_words();
        // Per image the trailer adds CRC_WORDS to MM2S and CRC_WORDS
        // to S2MM against a payload of `words + 1`.
        let payload_cycles =
            imgs.len() as u64 * (2 * cnn_hls::calibration::DMA_SETUP_CYCLES + words + 1);
        let overhead = res.dma_cycles as f64 / payload_cycles as f64 - 1.0;
        assert!(
            overhead < 0.02,
            "CRC trailer costs {:.3}% of DMA cycles",
            overhead * 100.0
        );
    }

    #[test]
    fn dispatch_image_matches_batch_of_one() {
        let (mut dev, net) = device(DirectiveSet::optimized());
        let imgs = images(1, 47);
        let plan = FaultPlan::uniform(5, 0.4);
        let policy = RetryPolicy::default();
        let batch = dev.classify_batch_faulty(&imgs, &plan, &policy);
        let single = dev.dispatch_image(&imgs[0], 0, 0, &plan, &policy);
        assert_eq!(single.prediction, batch.predictions[0]);
        assert_eq!(single.outcome, batch.outcomes[0]);
        assert_eq!(single.dma_cycles, batch.dma_cycles);
        assert_eq!(single.faults, batch.faults);
        if single.outcome.classified() {
            assert_eq!(single.prediction, net.predict(&imgs[0]));
        }
    }

    #[test]
    fn dispatch_attempt_base_draws_fresh_faults() {
        // With rate 1.0 and a small base the image keeps failing, but
        // distinct attempt bases must explore distinct fault draws —
        // this is what lets a pool-level retry make progress.
        let (mut dev, _) = device(DirectiveSet::optimized());
        let imgs = images(1, 53);
        let plan = FaultPlan::uniform(2016, 1.0);
        let policy = RetryPolicy { max_retries: 0 };
        let a = dev.dispatch_image(&imgs[0], 0, 0, &plan, &policy);
        let b = dev.dispatch_image(&imgs[0], 0, 100, &plan, &policy);
        assert!(!a.outcome.classified() && !b.outcome.classified());
        // Same id + same base replays identically (determinism)...
        let a2 = dev.dispatch_image(&imgs[0], 0, 0, &plan, &policy);
        assert_eq!(a, a2);
        // ...and the device can still serve other work afterwards.
        let clean = dev.dispatch_image(&imgs[0], 0, 0, &FaultPlan::none(), &policy);
        assert_eq!(clean.outcome, ImageOutcome::Clean);
    }

    #[test]
    fn ctx_scoped_dispatch_stamps_one_dma_attempt_per_try() {
        // Drive the shared retry loop directly: a fault-free plan
        // with an attempt closure that fails twice then succeeds, so
        // the test needs no device (and no RNG) at all.
        let ctx = cnn_trace::RequestCtx::root((0xD1A << 32) | 0x11);
        let policy = RetryPolicy { max_retries: 2 };
        let mut stats = FaultStats::default();
        let mut calls = 0u32;
        let outcome = {
            let _scope = cnn_trace::ctx_scope(ctx);
            run_image(&FaultPlan::none(), &policy, 0, 7, 64, &mut stats, |_| {
                calls += 1;
                if calls < 3 {
                    None
                } else {
                    Some(3)
                }
            })
        };
        assert_eq!(outcome, ImageOutcome::Recovered { retries: 2 });
        let recs = cnn_trace::flight().records_for(ctx.trace_id);
        let attempts: Vec<u64> = recs
            .iter()
            .filter(|r| r.stage == cnn_trace::FlightStage::DmaAttempt)
            .map(|r| r.arg)
            .collect();
        // Three attempts (1 + 2 retries), ordinals offset by the
        // pool-style attempt base of 7.
        assert_eq!(attempts, vec![7, 8, 9]);
    }

    #[test]
    fn context_free_attempts_stamp_no_flight_records() {
        let policy = RetryPolicy { max_retries: 1 };
        let mut stats = FaultStats::default();
        let mut calls = 0u32;
        let outcome = run_image(&FaultPlan::none(), &policy, 0, 0, 64, &mut stats, |_| {
            calls += 1;
            if calls < 2 {
                None
            } else {
                Some(1)
            }
        });
        assert_eq!(outcome, ImageOutcome::Recovered { retries: 1 });
        // No installed context means no timeline to attribute the
        // attempts to: a regression that records unconditionally
        // would land them on trace 0.
        assert!(
            cnn_trace::flight()
                .records_for(0)
                .iter()
                .all(|r| r.stage != cnn_trace::FlightStage::DmaAttempt),
            "context-free attempts must stamp nothing"
        );
    }

    /// A deterministic device built without `rand`: layer parameters
    /// come straight from a [`SplitMix64`] stream, so the SDC tests
    /// below replay bit-exactly in any environment.
    fn sdc_device() -> (ZynqDevice, Network) {
        use cnn_nn::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
        use cnn_store::hash::SplitMix64;
        use cnn_tensor::Tensor4;
        let mut mix = SplitMix64::new(0x5DC0);
        let mut val =
            |n: usize| -> Vec<f32> { (0..n).map(|_| (mix.next_f64() - 0.5) as f32).collect() };
        let net = Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(4, 1, 3, 3, val(36)),
                    bias: val(4),
                    activation: Some(Activation::Tanh),
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: val(10 * 196),
                    bias: val(10),
                    inputs: 196,
                    outputs: 10,
                    activation: None,
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap();
        let p = HlsProject::new(&net, DirectiveSet::optimized(), FpgaPart::zynq7020()).unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        (ZynqDevice::program(Board::Zedboard, bs).unwrap(), net)
    }

    fn sdc_images(n: usize, seed: u64) -> Vec<Tensor> {
        use cnn_store::hash::SplitMix64;
        let mut mix = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                Tensor::from_vec(
                    Shape::new(1, 16, 16),
                    (0..256)
                        .map(|_| (mix.next_f64() * 2.0 - 1.0) as f32)
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn seu_dispatches_are_transport_silent_but_skew_predictions() {
        let (mut dev, net) = sdc_device();
        let imgs = sdc_images(24, 0xA11CE);
        let plan = FaultPlan::seu(0xDEAD_BEEF, 1); // upset before every dispatch
        let policy = RetryPolicy::default();
        let mut wrong = 0usize;
        for (i, img) in imgs.iter().enumerate() {
            let d = dev.dispatch_image(img, i, 0, &plan, &policy);
            // The tentpole's "silent" clause: the transport layer sees
            // a perfectly healthy device — zero injected transport
            // faults, zero CRC detections, every outcome Clean.
            assert_eq!(d.outcome, ImageOutcome::Clean);
            assert_eq!(
                d.faults.injected, 0,
                "SEU must not count as a transport fault"
            );
            assert_eq!(
                d.faults.crc_detected, 0,
                "CRC cannot see a weight-memory upset"
            );
            if d.prediction != net.predict(img) {
                wrong += 1;
            }
        }
        assert_eq!(dev.seu_injected(), 24);
        assert!(!dev.memory().is_clean(), "upsets must dirty the image");
        assert!(
            wrong > 0,
            "24 accumulated exponent flips must skew at least one class"
        );
    }

    #[test]
    fn scrub_detects_reload_heals_and_canary_confirms() {
        let (mut dev, net) = sdc_device();
        let imgs = sdc_images(16, 0xCAFE);
        let plan = FaultPlan::seu(77, 1);
        let policy = RetryPolicy::default();
        assert!(dev.scrub().is_empty(), "freshly programmed memory is clean");
        for (i, img) in imgs.iter().enumerate() {
            dev.dispatch_image(img, i, 0, &plan, &policy);
        }
        // Layer 1 of the ladder: the scrubber's checksum audit flags
        // the dirty banks the transport path never saw.
        let dirty = dev.scrub();
        assert!(!dirty.is_empty(), "scrub must flag the upset banks");
        // Layer 2: a behavioural canary disagrees with the software
        // reference on at least one probe while the core is upset.
        let canaries = sdc_images(16, 0xBEE);
        let failed = canaries
            .iter()
            .filter(|c| !dev.canary(c, net.predict(c)))
            .count();
        assert!(
            failed > 0,
            "16 upsets must fail at least one of 16 canaries"
        );
        // Repair: reload from the bitstream's pristine network.
        let rewritten = dev.reload_weights();
        assert_eq!(rewritten, dirty.len());
        assert!(dev.scrub().is_empty());
        assert!(canaries.iter().all(|c| dev.canary(c, net.predict(c))));
        // And post-reload dispatches are bit-identical to software.
        let clean = dev.dispatch_image(&imgs[0], 0, 0, &FaultPlan::none(), &policy);
        assert_eq!(clean.prediction, net.predict(&imgs[0]));
    }

    #[test]
    fn seu_free_plans_never_touch_the_weight_memory() {
        let (mut dev, net) = sdc_device();
        let imgs = sdc_images(8, 0xF00);
        let policy = RetryPolicy::default();
        for (i, img) in imgs.iter().enumerate() {
            let d = dev.dispatch_image(img, i, 0, &FaultPlan::none(), &policy);
            assert_eq!(d.prediction, net.predict(img));
        }
        assert_eq!(dev.seu_injected(), 0);
        assert!(dev.memory().is_clean());
        assert!(dev.scrub().is_empty());
    }

    #[test]
    fn seu_rate_follows_the_plan_and_replays_deterministically() {
        let policy = RetryPolicy::default();
        let imgs = sdc_images(64, 0x7E57);
        let run = |every: u32| -> (u64, Vec<usize>) {
            let (mut dev, _) = sdc_device();
            let plan = FaultPlan::seu(0x5EED, every);
            let preds = imgs
                .iter()
                .enumerate()
                .map(|(i, img)| dev.dispatch_image(img, i, 0, &plan, &policy).prediction)
                .collect();
            (dev.seu_injected(), preds)
        };
        let (hits_8, preds_a) = run(8);
        let (hits_8b, preds_b) = run(8);
        assert_eq!(hits_8, hits_8b, "same plan, same upset count");
        assert_eq!(preds_a, preds_b, "same plan, same trajectory");
        assert!((1..64).contains(&hits_8), "every=8 is sparse but nonzero");
        let (hits_1, _) = run(1);
        assert_eq!(hits_1, 64, "every=1 upsets at each dispatch point");
    }

    /// A deterministic bitstream for the `sdc_device` architecture
    /// whose weights derive from `seed` — two seeds model two
    /// releases of the same model family.
    fn versioned_bitstream(seed: u64, model: &str, version: u32) -> Bitstream {
        use crate::bitstream::ModelVersion;
        use cnn_nn::{Conv2dLayer, Layer, LinearLayer, PoolLayer};
        use cnn_store::hash::SplitMix64;
        use cnn_tensor::Tensor4;
        let mut mix = SplitMix64::new(seed);
        let mut val =
            |n: usize| -> Vec<f32> { (0..n).map(|_| (mix.next_f64() - 0.5) as f32).collect() };
        let net = Network::new(
            Shape::new(1, 16, 16),
            vec![
                Layer::Conv2d(Conv2dLayer {
                    kernels: Tensor4::from_vec(4, 1, 3, 3, val(36)),
                    bias: val(4),
                    activation: Some(Activation::Tanh),
                }),
                Layer::Pool(PoolLayer {
                    kind: PoolKind::Max,
                    kh: 2,
                    kw: 2,
                    step: 2,
                }),
                Layer::Flatten,
                Layer::Linear(LinearLayer {
                    weights: val(10 * 196),
                    bias: val(10),
                    inputs: 196,
                    outputs: 10,
                    activation: None,
                }),
                Layer::LogSoftMax,
            ],
        )
        .unwrap();
        let p = HlsProject::new(&net, DirectiveSet::optimized(), FpgaPart::zynq7020()).unwrap();
        Bitstream::implement(&p, Board::Zedboard)
            .unwrap()
            .with_version(ModelVersion::new(model, version))
    }

    #[test]
    fn reconfigure_swaps_version_and_serves_the_new_model() {
        let v1 = versioned_bitstream(0x5DC0, "usps", 1);
        let v2 = versioned_bitstream(0x5DC1, "usps", 2);
        let new_net = v2.core.network().clone();
        let mut dev = ZynqDevice::program(Board::Zedboard, v1).unwrap();
        let old_hash = dev.bitstream().content_hash();
        let rep = dev.reconfigure(v2, &FaultPlan::none()).unwrap();
        assert!(rep.swap_upset.is_none());
        assert_eq!(rep.banks_loaded, dev.memory().bank_count());
        assert_eq!(dev.bitstream().version.version, 2);
        assert_ne!(dev.bitstream().content_hash(), old_hash);
        assert!(dev.memory().is_clean(), "fresh image starts clean");
        // The device now answers bit-exactly as the *new* software
        // reference.
        let imgs = sdc_images(8, 0xB1E);
        let policy = RetryPolicy::default();
        for (i, img) in imgs.iter().enumerate() {
            let d = dev.dispatch_image(img, i, 0, &FaultPlan::none(), &policy);
            assert_eq!(d.prediction, new_net.predict(img));
        }
    }

    #[test]
    fn reconfigure_refuses_skewed_or_misboarded_pairs() {
        let v1 = versioned_bitstream(0x5DC0, "usps", 1);
        let mut dev = ZynqDevice::program(Board::Zedboard, v1).unwrap();
        let other = versioned_bitstream(0x5DC2, "mnist", 1);
        let err = dev.reconfigure(other, &FaultPlan::none()).unwrap_err();
        assert!(matches!(err, DeviceError::ModelSkew { .. }));
        assert!(err.to_string().contains("usps@v1"));
        // Still serving v1 after the refusal.
        assert_eq!(dev.bitstream().version.version, 1);
        let mut zybo = versioned_bitstream(0x5DC3, "usps", 2);
        zybo.board = Board::Zybo;
        assert!(matches!(
            dev.reconfigure(zybo, &FaultPlan::none()),
            Err(DeviceError::WrongBoard { .. })
        ));
    }

    #[test]
    fn unversioned_device_accepts_any_family() {
        let (mut dev, _) = sdc_device();
        assert_eq!(
            dev.bitstream().version,
            crate::bitstream::ModelVersion::unversioned()
        );
        let v1 = versioned_bitstream(0x5DC4, "usps", 1);
        dev.reconfigure(v1, &FaultPlan::none()).unwrap();
        assert_eq!(dev.bitstream().version.to_string(), "usps@v1");
    }

    #[test]
    fn faults_during_the_swap_corrupt_the_fresh_image() {
        let v1 = versioned_bitstream(0x5DC0, "usps", 1);
        let v2 = versioned_bitstream(0x5DC1, "usps", 2);
        let new_net = v2.core.network().clone();
        let mut dev = ZynqDevice::program(Board::Zedboard, v1).unwrap();
        // `every = 1` fires at every sequence point, including the
        // swap's.
        let plan = FaultPlan::seu(0xBAD, 1);
        let rep = dev.reconfigure(v2, &plan).unwrap();
        let bank = rep.swap_upset.expect("swap must be hit");
        assert_eq!(dev.scrub(), vec![bank], "scrub flags the swap upset");
        assert_eq!(dev.seu_injected(), 1);
        // A canary sweep against the new reference catches the
        // corruption before the device would rejoin a pool...
        let canaries = sdc_images(16, 0xCA4);
        let failed = canaries
            .iter()
            .filter(|c| !dev.canary(c, new_net.predict(c)))
            .count();
        assert!(failed > 0, "an upset exponent must fail some canary");
        // ...and the repair path reloads from the *new* bitstream.
        assert_eq!(dev.reload_weights(), 1);
        assert!(dev.memory().is_clean());
        assert!(canaries.iter().all(|c| dev.canary(c, new_net.predict(c))));
    }

    #[test]
    fn reconfigure_replays_deterministically() {
        let run = || {
            let v1 = versioned_bitstream(0x5DC0, "usps", 1);
            let v2 = versioned_bitstream(0x5DC1, "usps", 2);
            let mut dev = ZynqDevice::program(Board::Zedboard, v1).unwrap();
            let plan = FaultPlan::seu(0x77, 1);
            let rep = dev.reconfigure(v2, &plan).unwrap();
            (rep, dev.memory().live_digest(rep.swap_upset.unwrap()))
        };
        assert_eq!(run(), run(), "same plan, same swap trajectory");
    }

    #[test]
    fn golden_manifest_round_trips_and_tracks_the_bitstream() {
        let (dev, _) = sdc_device();
        let manifest = dev.golden_manifest();
        assert_eq!(manifest.model, dev.bitstream().content_hash());
        assert_eq!(manifest.banks.len(), dev.memory().bank_count());
        let text = manifest.to_text();
        assert_eq!(GoldenManifest::parse(&text).unwrap(), manifest);
    }

    #[test]
    fn empty_batch_is_zero_cycles() {
        let (dev, _) = device(DirectiveSet::optimized());
        let res = dev.classify_batch(&[]);
        assert!(res.predictions.is_empty());
        assert_eq!(res.fabric_cycles, 0);
        assert!(res.faults.balances(0));
    }
}
