//! Cycle-level co-simulation of the DATAFLOW pipeline.
//!
//! The HLS scheduler (`cnn-hls::schedule`) predicts the steady-state
//! interval analytically (`max` over stage latencies). This module
//! *checks* that prediction from below: it simulates the layer blocks
//! as stages of a task pipeline connected by ping-pong buffers,
//! advancing an event clock image by image, and reports when each
//! image enters and leaves every stage.
//!
//! Under DATAFLOW semantics, stage `s` can begin image `i` when
//!
//! * stage `s` has finished image `i−1` (the stage is busy otherwise),
//! * stage `s−1` has finished image `i` (its output buffer is full),
//! * and — ping-pong, capacity 2 — stage `s+1` has finished image
//!   `i−2`, so a free buffer half exists to write into.
//!
//! Without DATAFLOW there is no overlap: image `i` starts only after
//! image `i−1` leaves the last stage.

use cnn_hls::schedule::DesignSchedule;

/// Completion times of one image through all stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageTrace {
    /// Image index.
    pub image: usize,
    /// Cycle at which each stage finished this image.
    pub stage_done: Vec<u64>,
}

impl ImageTrace {
    /// Cycle the image's classification became available.
    pub fn finished(&self) -> u64 {
        *self.stage_done.last().expect("at least one stage")
    }
}

/// Result of a co-simulation run.
#[derive(Clone, Debug)]
pub struct CosimResult {
    /// Per-image traces.
    pub traces: Vec<ImageTrace>,
    /// Total cycles until the last classification.
    pub total_cycles: u64,
    /// Steady-state interval observed between the last two
    /// completions (equals `total_cycles` for a single image).
    pub steady_interval: u64,
}

/// Simulates `n_images` through the scheduled design at cycle level.
pub fn simulate(schedule: &DesignSchedule, n_images: usize) -> CosimResult {
    assert!(n_images > 0, "simulate at least one image");
    let stage_cycles: Vec<u64> = schedule.blocks.iter().map(|b| b.cycles).collect();
    let stages = stage_cycles.len();
    assert!(stages > 0, "design has no stages");
    let io = schedule.io_cycles;

    // done[s][i] = cycle stage s finishes image i.
    let mut done = vec![vec![0u64; n_images]; stages];
    // When each image's input transfer completes (DMA serializes).
    let mut input_ready = vec![0u64; n_images];
    let mut dma_free = 0u64;

    for i in 0..n_images {
        if schedule.dataflow {
            // Next transfer may start once the DMA is free; the first
            // stage consumes it afterwards.
            input_ready[i] = dma_free + io;
            dma_free = input_ready[i];
        } else {
            // Sequential: the whole previous image must fully drain
            // before the next transfer begins.
            let prev_done = if i == 0 { 0 } else { done[stages - 1][i - 1] };
            input_ready[i] = prev_done + io;
        }
        for s in 0..stages {
            let data_ready = if s == 0 {
                input_ready[i]
            } else {
                done[s - 1][i]
            };
            let mut start = data_ready;
            if schedule.dataflow {
                // Stage busy with the previous image.
                if i > 0 {
                    start = start.max(done[s][i - 1]);
                }
                // Ping-pong output buffer: the consumer must have
                // drained image i-2 before we may overwrite its half.
                if i >= 2 && s + 1 < stages {
                    start = start.max(done[s + 1][i - 2]);
                }
            }
            done[s][i] = start + stage_cycles[s];
        }
    }
    let _ = dma_free;

    let traces: Vec<ImageTrace> = (0..n_images)
        .map(|i| ImageTrace {
            image: i,
            stage_done: (0..stages).map(|s| done[s][i]).collect(),
        })
        .collect();
    let total_cycles = traces.last().expect("non-empty").finished();
    let steady_interval = if n_images >= 2 {
        total_cycles - traces[n_images - 2].finished()
    } else {
        total_cycles
    };
    CosimResult {
        traces,
        total_cycles,
        steady_interval,
    }
}

/// Renders a textual occupancy chart (one row per stage, one column
/// per image, showing finish cycles) — a waveform-at-a-squint view.
pub fn render_occupancy(schedule: &DesignSchedule, result: &CosimResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<14} finish cycle per image", "stage");
    for (s, block) in schedule.blocks.iter().enumerate() {
        let finishes: Vec<String> = result
            .traces
            .iter()
            .map(|t| t.stage_done[s].to_string())
            .collect();
        let _ = writeln!(out, "{:<14} {}", block.name, finishes.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_hls::ir::lower;
    use cnn_hls::schedule::schedule;
    use cnn_hls::DirectiveSet;
    use cnn_nn::Network;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_schedule(directives: DirectiveSet) -> DesignSchedule {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        schedule(&lower(&net), &directives)
    }

    #[test]
    fn single_image_latency_matches_schedule() {
        for ds in [DirectiveSet::naive(), DirectiveSet::optimized()] {
            let s = test1_schedule(ds);
            let r = simulate(&s, 1);
            assert_eq!(
                r.total_cycles, s.latency_cycles,
                "cosim disagrees with analytic latency under {ds:?}"
            );
        }
    }

    #[test]
    fn sequential_batch_matches_analytic_formula() {
        let s = test1_schedule(DirectiveSet::naive());
        for n in [2usize, 5, 17] {
            let r = simulate(&s, n);
            assert_eq!(r.total_cycles, s.cycles_for_images(n as u64));
            assert_eq!(r.steady_interval, s.latency_cycles);
        }
    }

    #[test]
    fn dataflow_steady_interval_converges_to_max_stage() {
        // The central claim of the schedule model: under DATAFLOW the
        // pipeline's steady-state interval equals the slowest stage.
        let s = test1_schedule(DirectiveSet::optimized());
        let r = simulate(&s, 50);
        assert_eq!(
            r.steady_interval, s.interval_cycles,
            "cycle-level simulation must converge to the analytic interval"
        );
    }

    #[test]
    fn dataflow_batch_time_close_to_analytic() {
        // latency + (n-1)*interval is exact once the pipeline fills;
        // allow only fill-transient slack.
        let s = test1_schedule(DirectiveSet::optimized());
        let n = 100u64;
        let r = simulate(&s, n as usize);
        let analytic = s.cycles_for_images(n);
        let slack = s.latency_cycles; // one pipeline depth of transient
        assert!(
            r.total_cycles >= analytic && r.total_cycles <= analytic + slack,
            "cosim {} vs analytic {analytic} (+{slack} slack)",
            r.total_cycles
        );
    }

    #[test]
    fn traces_are_monotone_in_both_axes() {
        let s = test1_schedule(DirectiveSet::optimized());
        let r = simulate(&s, 10);
        for t in &r.traces {
            for w in t.stage_done.windows(2) {
                assert!(w[0] < w[1], "stages must finish in order");
            }
        }
        for i in 1..r.traces.len() {
            assert!(
                r.traces[i].finished() > r.traces[i - 1].finished(),
                "images must complete in order"
            );
        }
    }

    #[test]
    fn dataflow_strictly_beats_sequential_on_batches() {
        let naive = test1_schedule(DirectiveSet::naive());
        let opt = test1_schedule(DirectiveSet::optimized());
        let rn = simulate(&naive, 20);
        let ro = simulate(&opt, 20);
        assert!(ro.total_cycles * 3 < rn.total_cycles);
    }

    #[test]
    fn occupancy_chart_renders() {
        let s = test1_schedule(DirectiveSet::optimized());
        let r = simulate(&s, 4);
        let chart = render_occupancy(&s, &r);
        assert!(chart.contains("conv1"));
        assert!(chart.contains("log_softmax"));
        assert_eq!(chart.lines().count(), 1 + s.blocks.len());
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn zero_images_rejected() {
        let s = test1_schedule(DirectiveSet::naive());
        simulate(&s, 0);
    }
}
