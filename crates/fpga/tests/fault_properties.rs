//! Property tests over the fault-injection + recovery subsystem:
//! for *any* seed and fault rate, classification must not panic, the
//! per-image accounting must balance, and the fast and threaded
//! driver loops must agree; with the fault-free plan the result must
//! be byte-identical to the plain batch path.

// The minimal typecheck-only proptest stub expands `proptest!` bodies
// to nothing, leaving the suite's imports and generators unused there.
#![allow(dead_code, unused_imports)]

use cnn_fpga::{Bitstream, Board, FaultPlan, ImageOutcome, RetryPolicy, ZynqDevice, ABANDONED};
use cnn_hls::{DirectiveSet, FpgaPart, HlsProject};
use cnn_nn::Network;
use cnn_tensor::init::{seeded_rng, Init};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::{Shape, Tensor};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Synthesis + implementation are the expensive part; share one
/// device (and its reference network) across all proptest cases.
fn fixture() -> &'static (ZynqDevice, Network, Vec<Tensor>) {
    static FIXTURE: OnceLock<(ZynqDevice, Network, Vec<Tensor>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        let p = HlsProject::new(&net, DirectiveSet::optimized(), FpgaPart::zynq7020()).unwrap();
        let bs = Bitstream::implement(&p, Board::Zedboard).unwrap();
        let dev = ZynqDevice::program(Board::Zedboard, bs).unwrap();
        let mut img_rng = seeded_rng(7);
        let images = (0..12)
            .map(|_| {
                cnn_tensor::init::init_tensor(
                    &mut img_rng,
                    Shape::new(1, 16, 16),
                    Init::Uniform(1.0),
                )
            })
            .collect();
        (dev, net, images)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_plan_never_panics_and_accounting_balances(
        seed in any::<u64>(),
        rate in 0.0f64..=1.0,
        max_retries in 0u32..4,
    ) {
        let (dev, net, images) = fixture();
        let plan = FaultPlan::uniform(seed, rate);
        let policy = RetryPolicy { max_retries };
        let res = dev.classify_batch_faulty(images, &plan, &policy);

        prop_assert!(res.faults.balances(images.len()), "{:?}", res.faults);
        prop_assert_eq!(res.outcomes.len(), images.len());
        prop_assert_eq!(res.predictions.len(), images.len());
        // Classified images are bit-identical to software; abandoned
        // slots hold the sentinel.
        for (i, (p, o)) in res.predictions.iter().zip(&res.outcomes).enumerate() {
            if o.classified() {
                prop_assert_eq!(*p, net.predict(&images[i]));
            } else {
                prop_assert_eq!(*p, ABANDONED);
            }
        }
        // Retry/reset counters are bounded by the policy.
        let budget = policy.max_attempts() as u64 * images.len() as u64;
        prop_assert!(res.faults.injected <= budget);
        prop_assert!(res.faults.retries <= res.faults.injected);
        prop_assert!(res.faults.resets <= res.faults.injected);
    }

    #[test]
    fn threaded_path_agrees_with_fast_path(seed in any::<u64>(), rate in 0.0f64..=1.0) {
        let (dev, _, images) = fixture();
        let plan = FaultPlan::uniform(seed, rate);
        let policy = RetryPolicy::default();
        let fast = dev.classify_batch_faulty(images, &plan, &policy);
        let threaded = dev.classify_batch_threaded_faulty(images, &plan, &policy);
        prop_assert_eq!(fast, threaded);
    }

    #[test]
    fn fault_free_plan_matches_plain_batch(seed in any::<u64>()) {
        let (dev, _, images) = fixture();
        let plan = FaultPlan { seed, ..FaultPlan::none() };
        let planned = dev.classify_batch_faulty(images, &plan, &RetryPolicy::default());
        let plain = dev.classify_batch(images);
        prop_assert_eq!(&planned, &plain);
        prop_assert!(planned.outcomes.iter().all(|o| *o == ImageOutcome::Clean));
        prop_assert_eq!(planned.faults.injected, 0);
    }

    #[test]
    fn same_seed_reproduces_exactly(seed in any::<u64>(), rate in 0.0f64..=1.0) {
        let (dev, _, images) = fixture();
        let plan = FaultPlan::uniform(seed, rate);
        let a = dev.classify_batch_faulty(images, &plan, &RetryPolicy::default());
        let b = dev.classify_batch_faulty(images, &plan, &RetryPolicy::default());
        prop_assert_eq!(a, b);
    }
}
