//! Property tests over the AXI transport models: packetization is
//! lossless under arbitrary payloads and FIFO depths, and DMA cycle
//! accounting is additive.

// The minimal typecheck-only proptest stub expands `proptest!` bodies
// to nothing, leaving the suite's imports and generators unused there.
#![allow(dead_code, unused_imports)]

use cnn_fpga::axi::{AxiDma, AxiStream};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packets_roundtrip_any_payload(
        payloads in proptest::collection::vec(
            proptest::collection::vec(-1e6f32..1e6, 1..64),
            1..8,
        ),
        depth in 1usize..32,
    ) {
        let stream = AxiStream::with_depth(depth);
        let (tx, rx) = stream.split();
        let expect = payloads.clone();
        let sender = std::thread::spawn(move || {
            for p in &payloads {
                AxiStream::send_packet(&tx, p).expect("receiver alive");
            }
        });
        for want in &expect {
            let got = AxiStream::recv_packet(&rx).expect("sender alive");
            prop_assert_eq!(&got, want);
        }
        sender.join().unwrap();
    }

    #[test]
    fn dma_cycles_are_additive(words in proptest::collection::vec(1u64..10_000, 1..20)) {
        let mut dma = AxiDma::new();
        let mut total = 0u64;
        for &w in &words {
            total += dma.mm2s(w);
        }
        let setup = cnn_hls::calibration::DMA_SETUP_CYCLES;
        let expect: u64 = words.iter().map(|&w| setup + w).sum();
        prop_assert_eq!(total, expect);
        prop_assert_eq!(dma.stats().mm2s_words, words.iter().sum::<u64>());
        prop_assert_eq!(dma.stats().mm2s_transfers, words.len() as u64);
    }

    #[test]
    fn bigger_transfers_cost_more(a in 1u64..100_000, b in 1u64..100_000) {
        prop_assume!(a < b);
        let mut dma = AxiDma::new();
        prop_assert!(dma.mm2s(a) < dma.mm2s(b));
    }
}
