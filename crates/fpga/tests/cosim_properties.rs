//! Property tests of the cycle-level co-simulator over *synthetic*
//! schedules — arbitrary stage counts and latencies, not just the
//! paper's networks.

// The minimal typecheck-only proptest stub expands `proptest!` bodies
// to nothing, leaving the suite's imports and generators unused there.
#![allow(dead_code, unused_imports)]

use cnn_fpga::cosim::simulate;
use cnn_hls::schedule::{BlockSchedule, DesignSchedule};
use proptest::prelude::*;

fn make_schedule(stage_cycles: Vec<u64>, io: u64, dataflow: bool) -> DesignSchedule {
    let blocks: Vec<BlockSchedule> = stage_cycles
        .iter()
        .enumerate()
        .map(|(i, &c)| BlockSchedule {
            name: format!("stage{i}"),
            pipelined: false,
            ii: 1,
            cycles: c,
        })
        .collect();
    let compute: u64 = stage_cycles.iter().sum();
    let latency = io + compute;
    let interval = if dataflow {
        stage_cycles.iter().copied().max().unwrap_or(0).max(io)
    } else {
        latency
    };
    DesignSchedule {
        blocks,
        dataflow,
        io_cycles: io,
        latency_cycles: latency,
        interval_cycles: interval,
    }
}

fn arb_stages() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..100_000, 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_image_always_matches_latency(
        stages in arb_stages(), io in 1u64..5_000, dataflow in any::<bool>(),
    ) {
        let s = make_schedule(stages, io, dataflow);
        let r = simulate(&s, 1);
        prop_assert_eq!(r.total_cycles, s.latency_cycles);
    }

    #[test]
    fn sequential_mode_is_exactly_n_latencies(
        stages in arb_stages(), io in 1u64..5_000, n in 1usize..20,
    ) {
        let s = make_schedule(stages, io, false);
        let r = simulate(&s, n);
        prop_assert_eq!(r.total_cycles, s.latency_cycles * n as u64);
    }

    #[test]
    fn dataflow_steady_interval_is_the_bottleneck(
        stages in arb_stages(), io in 1u64..5_000,
    ) {
        let s = make_schedule(stages, io, true);
        // Enough images to be safely past the fill transient.
        let n = (s.blocks.len() + 4) * 3;
        let r = simulate(&s, n);
        prop_assert_eq!(
            r.steady_interval,
            s.interval_cycles,
            "bottleneck {} stages {:?} io {}",
            s.interval_cycles,
            s.blocks.iter().map(|b| b.cycles).collect::<Vec<_>>(),
            io
        );
    }

    #[test]
    fn dataflow_never_slower_than_sequential(
        stages in arb_stages(), io in 1u64..5_000, n in 1usize..20,
    ) {
        let seq = make_schedule(stages.clone(), io, false);
        let df = make_schedule(stages, io, true);
        prop_assert!(simulate(&df, n).total_cycles <= simulate(&seq, n).total_cycles);
    }

    #[test]
    fn completions_strictly_ordered(
        stages in arb_stages(), io in 1u64..5_000, dataflow in any::<bool>(), n in 2usize..12,
    ) {
        let s = make_schedule(stages, io, dataflow);
        let r = simulate(&s, n);
        for w in r.traces.windows(2) {
            prop_assert!(w[0].finished() < w[1].finished());
        }
        // Per-image stage order holds too.
        for t in &r.traces {
            for w in t.stage_done.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn dataflow_total_bounded_by_analytic_plus_fill(
        stages in arb_stages(), io in 1u64..5_000, n in 1usize..40,
    ) {
        let s = make_schedule(stages, io, true);
        let r = simulate(&s, n);
        let analytic = s.cycles_for_images(n as u64);
        prop_assert!(r.total_cycles >= analytic);
        prop_assert!(
            r.total_cycles <= analytic + s.latency_cycles,
            "total {} analytic {analytic} latency {}",
            r.total_cycles,
            s.latency_cycles
        );
    }
}
