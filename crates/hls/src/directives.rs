//! Optimization directives — the two Vivado HLS pragmas the paper's
//! optimized builds apply (Section V-B): `HLS DATAFLOW` for task-level
//! pipelining across layer blocks, and `HLS PIPELINE` on the inner
//! (reduction) loop of the convolutional layers.

use crate::ir::BlockKind;
use serde::{Deserialize, Serialize};

/// A single directive as it appears in `directives.tcl`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directive {
    /// `set_directive_dataflow` on the top function.
    Dataflow,
    /// `set_directive_pipeline` on a named loop, with an optional II.
    Pipeline {
        /// `function/loop` locator.
        location: String,
        /// Requested initiation interval (None lets the tool choose).
        ii: Option<u32>,
    },
    /// `set_directive_unroll` on a named loop.
    Unroll {
        /// `function/loop` locator.
        location: String,
        /// Unroll factor.
        factor: u32,
    },
}

impl Directive {
    /// Renders the directive as a Vivado HLS tcl command.
    pub fn to_tcl(&self, top: &str) -> String {
        match self {
            Directive::Dataflow => format!("set_directive_dataflow \"{top}\""),
            Directive::Pipeline { location, ii } => match ii {
                Some(ii) => {
                    format!("set_directive_pipeline -II {ii} \"{top}/{location}\"")
                }
                None => format!("set_directive_pipeline \"{top}/{location}\""),
            },
            Directive::Unroll { location, factor } => {
                format!("set_directive_unroll -factor {factor} \"{top}/{location}\"")
            }
        }
    }
}

/// Which optimizations are enabled for a build. The two presets
/// correspond to the paper's Test 1 (naive) and Tests 2–4 (optimized).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectiveSet {
    /// Task-level pipelining across layer blocks (`HLS DATAFLOW`).
    pub dataflow: bool,
    /// Pipeline the reduction loop of convolutional blocks.
    pub pipeline_conv: bool,
    /// Pipeline the reduction loop of linear blocks (extension: the
    /// paper only pipelines convolutions).
    pub pipeline_linear: bool,
    /// Pipeline the window loop of pooling blocks (extension).
    pub pipeline_pool: bool,
    /// `HLS UNROLL` factor on the innermost (kernel-width) loop of
    /// pipelined convolutions: 1 = off (the paper's configuration);
    /// higher factors initiate that many reduction elements per II at
    /// a proportional DSP cost (extension).
    #[serde(default = "default_unroll")]
    pub unroll_factor: u32,
}

#[allow(dead_code)] // used via #[serde(default = "...")]; the minimal serde stub drops it
fn default_unroll() -> u32 {
    1
}

impl DirectiveSet {
    /// Test 1's configuration: "none of the possible optimization".
    pub const fn naive() -> DirectiveSet {
        DirectiveSet {
            dataflow: false,
            pipeline_conv: false,
            pipeline_linear: false,
            pipeline_pool: false,
            unroll_factor: 1,
        }
    }

    /// Tests 2–4's configuration: `HLS DATAFLOW` + `HLS PIPELINE` on
    /// the inner loop of the convolutional layers.
    pub const fn optimized() -> DirectiveSet {
        DirectiveSet {
            dataflow: true,
            pipeline_conv: true,
            pipeline_linear: false,
            pipeline_pool: false,
            unroll_factor: 1,
        }
    }

    /// Everything on — the design-space-exploration upper corner.
    pub const fn aggressive() -> DirectiveSet {
        DirectiveSet {
            dataflow: true,
            pipeline_conv: true,
            pipeline_linear: true,
            pipeline_pool: true,
            unroll_factor: 1,
        }
    }

    /// The optimized preset with an additional unroll factor on the
    /// convolution reductions (extension ablation).
    pub const fn optimized_unrolled(factor: u32) -> DirectiveSet {
        DirectiveSet {
            dataflow: true,
            pipeline_conv: true,
            pipeline_linear: false,
            pipeline_pool: false,
            unroll_factor: factor,
        }
    }

    /// Whether blocks of `kind` have their reduction loop pipelined.
    pub fn pipelines(&self, kind: BlockKind) -> bool {
        match kind {
            BlockKind::Conv => self.pipeline_conv,
            BlockKind::Linear => self.pipeline_linear,
            BlockKind::Pool => self.pipeline_pool,
            BlockKind::LogSoftMax => false,
        }
    }

    /// Expands the set into concrete [`Directive`]s for the given
    /// block names (used by the tcl generator).
    pub fn directives(&self, blocks: &[(String, BlockKind)]) -> Vec<Directive> {
        let mut out = Vec::new();
        if self.dataflow {
            out.push(Directive::Dataflow);
        }
        for (name, kind) in blocks {
            if self.pipelines(*kind) {
                out.push(Directive::Pipeline {
                    location: format!("{name}_reduce"),
                    ii: Some(crate::calibration::II_REDUCTION as u32),
                });
                if self.unroll_factor > 1 && *kind == BlockKind::Conv {
                    out.push(Directive::Unroll {
                        location: format!("{name}_reduce"),
                        factor: self.unroll_factor,
                    });
                }
            }
        }
        out
    }

    /// All 16 combinations, for design-space exploration.
    pub fn all_combinations() -> Vec<DirectiveSet> {
        let mut out = Vec::with_capacity(16);
        for bits in 0u8..16 {
            out.push(DirectiveSet {
                dataflow: bits & 1 != 0,
                pipeline_conv: bits & 2 != 0,
                pipeline_linear: bits & 4 != 0,
                pipeline_pool: bits & 8 != 0,
                unroll_factor: 1,
            });
        }
        out
    }

    /// Short label for reports ("naive", "dataflow+conv", ...).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.dataflow {
            parts.push("dataflow");
        }
        if self.pipeline_conv {
            parts.push("pipe-conv");
        }
        if self.pipeline_linear {
            parts.push("pipe-linear");
        }
        if self.pipeline_pool {
            parts.push("pipe-pool");
        }
        let mut label = if parts.is_empty() {
            "naive".to_string()
        } else {
            parts.join("+")
        };
        if self.unroll_factor > 1 {
            label.push_str(&format!("+unroll{}", self.unroll_factor));
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!DirectiveSet::naive().dataflow);
        assert!(DirectiveSet::optimized().dataflow);
        assert!(DirectiveSet::optimized().pipeline_conv);
        assert!(!DirectiveSet::optimized().pipeline_linear);
        assert!(DirectiveSet::aggressive().pipeline_pool);
    }

    #[test]
    fn pipelines_by_kind() {
        let opt = DirectiveSet::optimized();
        assert!(opt.pipelines(BlockKind::Conv));
        assert!(!opt.pipelines(BlockKind::Linear));
        assert!(!opt.pipelines(BlockKind::LogSoftMax));
    }

    #[test]
    fn tcl_rendering() {
        assert_eq!(
            Directive::Dataflow.to_tcl("cnn"),
            "set_directive_dataflow \"cnn\""
        );
        let p = Directive::Pipeline {
            location: "conv1_reduce".into(),
            ii: Some(2),
        };
        assert_eq!(
            p.to_tcl("cnn"),
            "set_directive_pipeline -II 2 \"cnn/conv1_reduce\""
        );
        let p2 = Directive::Pipeline {
            location: "l".into(),
            ii: None,
        };
        assert_eq!(p2.to_tcl("cnn"), "set_directive_pipeline \"cnn/l\"");
    }

    #[test]
    fn directive_expansion_for_optimized() {
        let blocks = vec![
            ("conv1".to_string(), BlockKind::Conv),
            ("pool1".to_string(), BlockKind::Pool),
            ("linear1".to_string(), BlockKind::Linear),
        ];
        let ds = DirectiveSet::optimized().directives(&blocks);
        assert_eq!(ds.len(), 2); // dataflow + conv pipeline
        assert_eq!(ds[0], Directive::Dataflow);
        assert!(
            matches!(&ds[1], Directive::Pipeline { location, .. } if location == "conv1_reduce")
        );
    }

    #[test]
    fn naive_expands_to_nothing() {
        let blocks = vec![("conv1".to_string(), BlockKind::Conv)];
        assert!(DirectiveSet::naive().directives(&blocks).is_empty());
    }

    #[test]
    fn all_combinations_are_distinct_and_complete() {
        let all = DirectiveSet::all_combinations();
        assert_eq!(all.len(), 16);
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
        assert!(all.contains(&DirectiveSet::naive()));
        assert!(all.contains(&DirectiveSet::optimized()));
        assert!(all.contains(&DirectiveSet::aggressive()));
    }

    #[test]
    fn labels() {
        assert_eq!(DirectiveSet::naive().label(), "naive");
        assert_eq!(DirectiveSet::optimized().label(), "dataflow+pipe-conv");
        assert_eq!(
            DirectiveSet::optimized_unrolled(4).label(),
            "dataflow+pipe-conv+unroll4"
        );
    }

    #[test]
    fn unroll_expands_to_a_tcl_directive() {
        let blocks = vec![("conv1".to_string(), BlockKind::Conv)];
        let ds = DirectiveSet::optimized_unrolled(4).directives(&blocks);
        assert!(ds.iter().any(|d| matches!(
            d,
            Directive::Unroll { location, factor: 4 } if location == "conv1_reduce"
        )));
        let tcl = Directive::Unroll {
            location: "conv1_reduce".into(),
            factor: 4,
        }
        .to_tcl("cnn");
        assert_eq!(tcl, "set_directive_unroll -factor 4 \"cnn/conv1_reduce\"");
    }
}
