//! Design-space exploration — Section V-E's methodology as an API:
//! "Vivado HLS, along with a high level specification, allows to
//! explore faster the design space and analyze different solutions
//! […] and finally converge to the most suitable implementation".
//!
//! [`explore`] sweeps every directive combination (optionally across
//! precisions), returning one [`DesignPoint`] per configuration with
//! its schedule and binding; [`pareto_front`] extracts the
//! throughput/DSP-efficient subset; [`recommend`] picks the fastest
//! fitting configuration — the loop the paper's authors ran by hand
//! to settle on DATAFLOW + PIPELINE.

use crate::directives::DirectiveSet;
use crate::part::FpgaPart;
use crate::precision::Precision;
use crate::project::HlsProject;
use cnn_nn::Network;

/// One evaluated configuration.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Directive configuration.
    pub directives: DirectiveSet,
    /// Datapath precision.
    pub precision: Precision,
    /// Steady-state interval (cycles between classifications).
    pub interval_cycles: u64,
    /// Per-image latency.
    pub latency_cycles: u64,
    /// DSP slices used.
    pub dsp: u32,
    /// BRAM36 blocks used.
    pub bram36: u32,
    /// Whether the configuration fits the part.
    pub fits: bool,
}

impl DesignPoint {
    /// Short label for reports.
    pub fn label(&self) -> String {
        format!("{} @{}", self.directives.label(), self.precision.label())
    }
}

/// Evaluates every directive combination for `network` on `part` at
/// the given precisions (pass `&[Precision::Float32]` for the paper's
/// sweep).
pub fn explore(network: &Network, part: FpgaPart, precisions: &[Precision]) -> Vec<DesignPoint> {
    assert!(!precisions.is_empty(), "need at least one precision");
    let mut points = Vec::with_capacity(16 * precisions.len());
    for &precision in precisions {
        for directives in DirectiveSet::all_combinations() {
            // Evaluate even non-fitting points (the explorer must see
            // why a corner fails).
            let project = match HlsProject::with_precision(network, directives, part, precision) {
                Ok(p) => p,
                Err(_) => {
                    // Rebuild unchecked to read the overflow numbers.
                    let p = HlsProject::new_unchecked(network, directives, part);
                    points.push(DesignPoint {
                        directives,
                        precision,
                        interval_cycles: p.schedule().interval_cycles,
                        latency_cycles: p.schedule().latency_cycles,
                        dsp: p.resources().dsp,
                        bram36: p.resources().bram36,
                        fits: false,
                    });
                    continue;
                }
            };
            points.push(DesignPoint {
                directives,
                precision,
                interval_cycles: project.schedule().interval_cycles,
                latency_cycles: project.schedule().latency_cycles,
                dsp: project.resources().dsp,
                bram36: project.resources().bram36,
                fits: project.resources().fits(),
            });
        }
    }
    points.sort_by_key(|p| (p.interval_cycles, p.dsp));
    points
}

/// Sweeps unroll factors on top of the optimized preset — the second
/// DSE axis once the directive space is settled.
pub fn explore_unroll(network: &Network, part: FpgaPart, factors: &[u32]) -> Vec<DesignPoint> {
    assert!(!factors.is_empty(), "need at least one factor");
    let mut points = Vec::with_capacity(factors.len());
    for &factor in factors {
        let directives = DirectiveSet::optimized_unrolled(factor.max(1));
        let p = HlsProject::new_unchecked(network, directives, part);
        points.push(DesignPoint {
            directives,
            precision: Precision::Float32,
            interval_cycles: p.schedule().interval_cycles,
            latency_cycles: p.schedule().latency_cycles,
            dsp: p.resources().dsp,
            bram36: p.resources().bram36,
            fits: p.resources().fits(),
        });
    }
    points
}

/// Indices of the Pareto-efficient points in `(interval, dsp)` space
/// (lower is better on both axes). Input order is preserved.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let p = &points[i];
            !points.iter().any(|q| {
                (q.interval_cycles < p.interval_cycles && q.dsp <= p.dsp)
                    || (q.interval_cycles <= p.interval_cycles && q.dsp < p.dsp)
            })
        })
        .collect()
}

/// The fastest configuration that fits the part, if any.
pub fn recommend(points: &[DesignPoint]) -> Option<&DesignPoint> {
    points
        .iter()
        .filter(|p| p.fits)
        .min_by_key(|p| (p.interval_cycles, p.dsp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_covers_all_combinations() {
        let points = explore(&test1_net(), FpgaPart::zynq7020(), &[Precision::Float32]);
        assert_eq!(points.len(), 16);
        // All fit the Zedboard for this small network.
        assert!(points.iter().all(|p| p.fits));
        // Sorted by interval.
        for w in points.windows(2) {
            assert!(w[0].interval_cycles <= w[1].interval_cycles);
        }
    }

    #[test]
    fn papers_choice_is_on_the_pareto_front() {
        let points = explore(&test1_net(), FpgaPart::zynq7020(), &[Precision::Float32]);
        let front = pareto_front(&points);
        assert!(
            front
                .iter()
                .any(|&i| points[i].directives == DirectiveSet::optimized()),
            "dataflow+pipe-conv must be Pareto-efficient"
        );
        assert!(!front.is_empty());
    }

    #[test]
    fn recommend_picks_fastest_fitting() {
        let points = explore(&test1_net(), FpgaPart::zynq7020(), &[Precision::Float32]);
        let best = recommend(&points).expect("something fits");
        assert_eq!(best.interval_cycles, points[0].interval_cycles);
        assert!(best.fits);
    }

    #[test]
    fn multi_precision_sweep_doubles_points_and_fixed_wins() {
        let points = explore(
            &test1_net(),
            FpgaPart::zynq7020(),
            &[Precision::Float32, Precision::q8_8()],
        );
        assert_eq!(points.len(), 32);
        let best = recommend(&points).unwrap();
        assert_eq!(
            best.precision,
            Precision::q8_8(),
            "fixed point should win the sweep"
        );
    }

    #[test]
    fn pareto_front_dominance_holds() {
        let points = explore(&test1_net(), FpgaPart::zynq7020(), &[Precision::Float32]);
        let front = pareto_front(&points);
        for &i in &front {
            for (j, q) in points.iter().enumerate() {
                if j == i {
                    continue;
                }
                let p = &points[i];
                let dominated = q.interval_cycles <= p.interval_cycles
                    && q.dsp <= p.dsp
                    && (q.interval_cycles < p.interval_cycles || q.dsp < p.dsp);
                assert!(!dominated, "front point {i} dominated by {j}");
            }
        }
    }

    #[test]
    fn unroll_sweep_trades_dsp_for_interval() {
        let points = explore_unroll(&test1_net(), FpgaPart::zynq7020(), &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        // More unroll -> fewer interval cycles, more DSPs.
        assert!(points[1].interval_cycles < points[0].interval_cycles);
        assert!(points[2].interval_cycles < points[1].interval_cycles);
        assert!(points[1].dsp > points[0].dsp);
        assert!(points[2].dsp > points[1].dsp);
    }

    #[test]
    fn tiny_part_yields_unfitting_points() {
        // Shrink to a part too small for the exp/log cores.
        let tiny = FpgaPart {
            name: "tiny",
            ff: 4000,
            lut: 2000,
            lutram: 500,
            bram36: 4,
            dsp: 20,
        };
        let points = explore(&test1_net(), tiny, &[Precision::Float32]);
        assert!(points.iter().all(|p| !p.fits));
        assert!(recommend(&points).is_none());
    }
}
