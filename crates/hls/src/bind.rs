//! The binder: maps the scheduled design onto FPGA resources —
//! DSP slices (operator instances), BRAM18K blocks (weight ROMs and
//! inter-layer buffers), LUTRAM (small arrays, FIFOs) and LUT/FF
//! estimates (datapath glue and controllers).
//!
//! ## Model
//!
//! * **Operators** instantiate per block: each occurrence in the body
//!   mix and the epilogue mix is one hardware instance (Vivado HLS
//!   does not share floating-point cores across functions). A
//!   pipelined reduction replicates its body operators
//!   [`cal::PIPELINE_MAC_LANES`] times (the partial-sum lanes that
//!   achieve II = 2) — this is the paper's +5 DSP step between
//!   Test 1 and Test 2.
//! * **Arrays** above [`cal::LUTRAM_THRESHOLD_BITS`] bind to BRAM18K
//!   with per-array rounding; arrays adjacent to a *pipelined* block
//!   are cyclically partitioned along their leading dimension, which
//!   multiplies the rounding loss (the Test 4 BRAM blow-up). DATAFLOW
//!   double-buffers every inter-layer buffer (ping-pong).
//! * **Controllers**: unpipelined blocks carry a one-hot FSM whose
//!   flip-flop cost grows with schedule states × nest depth; pipelined
//!   blocks replace it with a short pipeline controller but pay a
//!   one-time and per-block LUT cost in forwarding logic. Without
//!   DATAFLOW, a centralized buffer crossbar adds FF per block. These
//!   two terms reproduce Table II's signature inversion: FF *drops*
//!   and LUT *jumps* when the design is optimized.

use crate::calibration as cal;
use crate::directives::DirectiveSet;
use crate::ir::{ArrayKind, DesignIr, LayerBlock};
use crate::operators::FpOp;
use crate::part::FpgaPart;
use crate::precision::Precision;
use crate::report::ResourceUsage;

/// BRAM18K blocks for one array of `elems` elements of
/// `bits_per_elem` bits, split into `parts` cyclic partitions (each
/// partition rounds up separately).
fn bram18_for_array(elems: u64, parts: u64, bits_per_elem: u64) -> u64 {
    let parts = parts.max(1);
    let per = elems.div_ceil(parts);
    let bits = per * bits_per_elem;
    if bits == 0 {
        return 0;
    }
    parts * bits.div_ceil(cal::BRAM18_BITS)
}

/// Whether an array is small enough for LUTRAM.
fn is_lutram(elems: u64, bits_per_elem: u64) -> bool {
    elems * bits_per_elem <= cal::LUTRAM_THRESHOLD_BITS
}

/// Operator-instance resources of one block.
fn block_operator_usage(
    block: &LayerBlock,
    pipelined: bool,
    precision: Precision,
    unroll: u64,
) -> (u64, u64, u64) {
    let lanes = if pipelined {
        cal::PIPELINE_MAC_LANES * unroll
    } else {
        1
    };
    let mut dsp = 0u64;
    let mut lut = 0u64;
    let mut ff = 0u64;
    for op in FpOp::ALL {
        let instances = block.body.count(op) * lanes + block.post.count(op);
        let c = precision.op_cost(op);
        // Multiplies can share a DSP48 when the precision packs more
        // than one product per slice (int8: two 8×8 per 25×18).
        let dsp_instances = if op == FpOp::Mul {
            instances.div_ceil(precision.muls_per_dsp())
        } else {
            instances
        };
        dsp += dsp_instances * c.dsp as u64;
        lut += instances * c.lut as u64;
        ff += instances * c.ff as u64;
    }
    (dsp, lut, ff)
}

/// Controller (FSM) flip-flops and LUTs of one block.
fn block_controller_usage(block: &LayerBlock, pipelined: bool) -> (u64, u64) {
    if pipelined {
        // Short pipeline controller: fill-depth states, flat.
        let states = block.body.chained_latency() + cal::PIPELINE_EXTRA_DEPTH + 2;
        (
            states * cal::FF_PER_FSM_STATE as u64,
            states * cal::LUT_PER_FSM_STATE as u64,
        )
    } else {
        let depth = block.loops.len().max(1) as u64;
        let body_states = block.body.chained_latency() + cal::LOOP_ITER_OVERHEAD;
        let post_states = if block.post.total() > 0 {
            block.post.chained_latency() + 1
        } else {
            0
        };
        let ff = (body_states * depth + post_states) * cal::FF_PER_FSM_STATE as u64;
        let lut = (body_states * depth + post_states) * cal::LUT_PER_FSM_STATE as u64;
        (ff, lut)
    }
}

/// Binds the design to resources on `part` with an f32 datapath.
pub fn bind(ir: &DesignIr, directives: &DirectiveSet, part: FpgaPart) -> ResourceUsage {
    bind_with(ir, directives, part, Precision::Float32)
}

/// Binds the design under an explicit datapath precision.
pub fn bind_with(
    ir: &DesignIr,
    directives: &DirectiveSet,
    part: FpgaPart,
    precision: Precision,
) -> ResourceUsage {
    let bits = precision.bits_per_element() as u64;
    let mut dsp = cal::BASE_DSP as u64;
    let mut lut = cal::BASE_LUT as u64;
    let mut ff = cal::BASE_FF as u64;
    let mut lutram_bits = 0u64;
    let mut bram18 = cal::BASE_BRAM18 as u64;

    let any_pipelined = ir.blocks.iter().any(|b| directives.pipelines(b.kind));
    if any_pipelined {
        lut += cal::PIPELINE_GLOBAL_LUT as u64;
    }
    if !directives.dataflow {
        ff += cal::XBAR_FF_PER_BLOCK as u64 * ir.blocks.len() as u64;
    }
    lutram_bits += cal::BASE_LUTRAM as u64 * cal::LUTRAM_BITS_PER_LUT as u64;

    // --- input buffer (written by the stream, read by block 0) ---
    let first_pipelined = ir
        .blocks
        .first()
        .map(|b| directives.pipelines(b.kind))
        .unwrap_or(false);
    let in_parts = if first_pipelined {
        // Partitioned by input channels (the pipelined reduction's
        // channel loop needs parallel reads).
        ir.blocks
            .first()
            .and_then(|b| b.loops.get(b.loops.len().saturating_sub(3)))
            .map(|l| l.trip)
            .unwrap_or(1)
    } else {
        1
    };
    let dataflow_factor = if directives.dataflow {
        cal::DATAFLOW_BUFFER_FACTOR
    } else {
        1
    };
    if is_lutram(ir.input_elems, bits) {
        lutram_bits += ir.input_elems * bits * dataflow_factor;
    } else {
        bram18 += bram18_for_array(ir.input_elems, in_parts, bits) * dataflow_factor;
    }

    for (i, block) in ir.blocks.iter().enumerate() {
        let pipelined = directives.pipelines(block.kind);

        // Operators: HLS UNROLL replicates the conv reduction datapath.
        let unroll = if block.kind == crate::ir::BlockKind::Conv {
            directives.unroll_factor.max(1) as u64
        } else {
            1
        };
        let (d, l, f) = block_operator_usage(block, pipelined, precision, unroll);
        dsp += d;
        lut += l;
        ff += f;

        // Controller.
        let (cf, cl) = block_controller_usage(block, pipelined);
        ff += cf;
        lut += cl;
        if pipelined {
            lut += cal::PIPELINE_BLOCK_LUT as u64;
            let (_, inner) = block.split_iters();
            lutram_bits += cal::LUTRAM_PER_PIPELINED_LANE as u64
                * cal::LUTRAM_BITS_PER_LUT as u64
                * inner.min(16);
        }

        // Weight arrays.
        for arr in &block.weights {
            debug_assert_eq!(arr.kind, ArrayKind::Weights);
            let parts = if pipelined { arr.leading } else { 1 };
            if is_lutram(arr.elems, bits) {
                lutram_bits += arr.elems * bits;
            } else {
                bram18 += bram18_for_array(arr.elems, parts, bits);
            }
        }

        // Output buffer: ping-pong doubled under DATAFLOW; partitioned
        // along channels when the *consumer* is a pipelined conv whose
        // reduction walks the channel dimension (it needs parallel
        // reads). The final block's scalar result needs no buffer.
        let is_last = i + 1 == ir.blocks.len();
        if !is_last {
            let consumer = &ir.blocks[i + 1];
            let parts = if directives.pipelines(consumer.kind)
                && consumer.kind == crate::ir::BlockKind::Conv
            {
                block.output_leading
            } else {
                1
            };
            if is_lutram(block.output_elems, bits) {
                lutram_bits += block.output_elems * bits * dataflow_factor;
            } else {
                bram18 += bram18_for_array(block.output_elems, parts, bits) * dataflow_factor;
            }
        }
    }

    let lutram = lutram_bits.div_ceil(cal::LUTRAM_BITS_PER_LUT as u64);
    ResourceUsage {
        part,
        ff: ff as u32,
        lut: lut as u32,
        lutram: lutram as u32,
        bram36: (bram18.div_ceil(2)) as u32,
        dsp: dsp as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use cnn_nn::Network;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_ir() -> DesignIr {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        lower(&net)
    }

    fn test4_ir() -> DesignIr {
        let mut rng = seeded_rng(2);
        let net = Network::builder(Shape::new(3, 32, 32))
            .conv(12, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(36, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(36, Some(Activation::Tanh), &mut rng)
            .linear(10, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        lower(&net)
    }

    #[test]
    fn bram18_rounding() {
        // 576 floats = 18432 bits = exactly one BRAM18.
        assert_eq!(bram18_for_array(576, 1, 32), 1);
        assert_eq!(bram18_for_array(577, 1, 32), 2);
        // Partitioning multiplies rounding loss: 577 elems in 4 parts
        // of 145 → 4 blocks.
        assert_eq!(bram18_for_array(577, 4, 32), 4);
        assert_eq!(bram18_for_array(0, 1, 32), 0);
        // 16-bit elements halve the footprint.
        assert_eq!(bram18_for_array(1152, 1, 16), 1);
    }

    #[test]
    fn dsp_test1_naive_in_paper_band() {
        // Paper Table II Test 1: 41.82% of 220 ≈ 92 DSP. Band ±20%.
        let u = bind(&test1_ir(), &DirectiveSet::naive(), FpgaPart::zynq7020());
        let pct = u.dsp_pct();
        assert!(
            (33.0..=50.0).contains(&pct),
            "naive DSP {pct:.1}% outside the Table II band (41.82% ±8pp)"
        );
    }

    #[test]
    fn dsp_increases_with_pipelining() {
        // Table II: 41.82% → 44.09% (one extra MAC lane per conv).
        let n = bind(&test1_ir(), &DirectiveSet::naive(), FpgaPart::zynq7020());
        let o = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert_eq!(
            o.dsp - n.dsp,
            5,
            "pipelined conv should add fmul(3)+fadd(2)"
        );
    }

    #[test]
    fn ff_drops_with_optimization() {
        // Table II's inversion: FF 15.86% naive → 8.86% optimized.
        let n = bind(&test1_ir(), &DirectiveSet::naive(), FpgaPart::zynq7020());
        let o = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert!(
            o.ff < n.ff,
            "optimized FF {} should be below naive {}",
            o.ff,
            n.ff
        );
    }

    #[test]
    fn lut_jumps_with_optimization() {
        // Table II: LUT 2.56% naive → 17.18% optimized.
        let n = bind(&test1_ir(), &DirectiveSet::naive(), FpgaPart::zynq7020());
        let o = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert!(
            o.lut as f64 > 1.8 * n.lut as f64,
            "optimized LUT {} should far exceed naive {}",
            o.lut,
            n.lut
        );
    }

    #[test]
    fn test4_bram_dominates() {
        // Table II Test 4: BRAM 76.07% — by far the largest relative
        // jump, driven by the weight ROMs of the CIFAR network.
        let u = bind(
            &test4_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        let pct = u.bram_pct();
        assert!(
            (55.0..=95.0).contains(&pct),
            "Test-4 BRAM {pct:.1}% outside the Table II band (76.07%)"
        );
        let t1 = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert!(u.bram36 > 5 * t1.bram36, "Test 4 must dwarf Test 2's BRAM");
    }

    #[test]
    fn test4_fits_zedboard_but_not_zybo() {
        let zed = bind(
            &test4_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert!(zed.fits(), "Test 4 must fit the Zedboard: {zed:?}");
        let zybo = bind(
            &test4_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7010(),
        );
        assert!(!zybo.fits(), "Test 4 must overflow the Zybo: {zybo:?}");
    }

    #[test]
    fn test1_fits_both_boards() {
        let zed = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert!(zed.fits());
        let zybo = bind(&test1_ir(), &DirectiveSet::naive(), FpgaPart::zynq7010());
        // The small USPS network is the Zybo's intended use case.
        assert!(zybo.bram_pct() < 100.0);
    }

    #[test]
    fn dsp_is_the_top_resource_relative_to_capacity_on_small_nets() {
        // Table II Tests 1–3: DSP utilization is the highest column.
        for ds in [DirectiveSet::naive(), DirectiveSet::optimized()] {
            let u = bind(&test1_ir(), &ds, FpgaPart::zynq7020());
            let max_other = u
                .ff_pct()
                .max(u.lut_pct())
                .max(u.lutram_pct())
                .max(u.bram_pct());
            assert!(
                u.dsp_pct() > max_other,
                "DSP {:.1}% must dominate (others max {:.1}%) under {ds:?}",
                u.dsp_pct(),
                max_other
            );
        }
    }

    #[test]
    fn resource_usage_monotone_in_network_size() {
        let t1 = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        let t4 = bind(
            &test4_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert!(t4.dsp >= t1.dsp);
        assert!(t4.bram36 > t1.bram36);
        assert!(t4.lut > t1.lut);
    }

    #[test]
    fn unroll_multiplies_conv_dsp_lanes() {
        let base = bind(
            &test1_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        let u4 = bind(
            &test1_ir(),
            &DirectiveSet::optimized_unrolled(4),
            FpgaPart::zynq7020(),
        );
        // conv body = 1 fmul + 1 fadd = 5 DSP per lane; lanes go from
        // 2 to 8 -> +30 DSP.
        assert_eq!(u4.dsp - base.dsp, 30, "{} vs {}", u4.dsp, base.dsp);
    }

    #[test]
    fn binding_is_deterministic() {
        let a = bind(
            &test4_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        let b = bind(
            &test4_ir(),
            &DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        );
        assert_eq!(a, b);
    }
}
