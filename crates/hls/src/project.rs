//! An HLS project: one network + directive set + target part,
//! synthesized into a schedule, a binding and generated artifacts.

use crate::bind::bind_with;
use crate::codegen;
use crate::directives::DirectiveSet;
use crate::ir::{lower, DesignIr};
use crate::part::FpgaPart;
use crate::precision::Precision;
use crate::report::{HlsReport, ResourceUsage};
use crate::schedule::{schedule_with, DesignSchedule};
use cnn_nn::Network;
use std::fmt;

/// Errors from project construction.
#[derive(Debug, Clone, PartialEq)]
pub enum HlsError {
    /// The bound design exceeds the part's capacity (names of the
    /// overflowing resources).
    DoesNotFit(Vec<&'static str>),
    /// The network has no layers to synthesize.
    EmptyDesign,
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::DoesNotFit(rs) => write!(f, "design exceeds device capacity: {rs:?}"),
            HlsError::EmptyDesign => write!(f, "network lowered to zero blocks"),
        }
    }
}

impl std::error::Error for HlsError {}

/// A fully-synthesized HLS project (the output of "Vivado HLS").
#[derive(Clone, Debug)]
pub struct HlsProject {
    network: Network,
    ir: DesignIr,
    directives: DirectiveSet,
    part: FpgaPart,
    precision: Precision,
    schedule: DesignSchedule,
    resources: ResourceUsage,
}

impl HlsProject {
    /// Lowers, schedules and binds `network` for `part` under
    /// `directives`. Fails if the result does not fit the device —
    /// the same failure Vivado's implementation step would report.
    pub fn new(
        network: &Network,
        directives: DirectiveSet,
        part: FpgaPart,
    ) -> Result<HlsProject, HlsError> {
        Self::with_precision(network, directives, part, Precision::Float32)
    }

    /// Synthesizes with an explicit datapath precision (the
    /// fixed-point ablation the paper's Section V discussion points
    /// at).
    pub fn with_precision(
        network: &Network,
        directives: DirectiveSet,
        part: FpgaPart,
        precision: Precision,
    ) -> Result<HlsProject, HlsError> {
        let ir = lower(network);
        if ir.blocks.is_empty() {
            return Err(HlsError::EmptyDesign);
        }
        let schedule = schedule_with(&ir, &directives, precision);
        let resources = bind_with(&ir, &directives, part, precision);
        if !resources.fits() {
            return Err(HlsError::DoesNotFit(resources.overflows()));
        }
        Ok(HlsProject {
            network: network.clone(),
            ir,
            directives,
            part,
            precision,
            schedule,
            resources,
        })
    }

    /// Like [`new`](Self::new) but keeps over-capacity designs
    /// (useful for exploration reports that show *why* a target fails).
    pub fn new_unchecked(
        network: &Network,
        directives: DirectiveSet,
        part: FpgaPart,
    ) -> HlsProject {
        let precision = Precision::Float32;
        let ir = lower(network);
        let schedule = schedule_with(&ir, &directives, precision);
        let resources = bind_with(&ir, &directives, part, precision);
        HlsProject {
            network: network.clone(),
            ir,
            directives,
            part,
            precision,
            schedule,
            resources,
        }
    }

    /// The source network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The lowered IR.
    pub fn ir(&self) -> &DesignIr {
        &self.ir
    }

    /// The directive configuration.
    pub fn directives(&self) -> DirectiveSet {
        self.directives
    }

    /// The target part.
    pub fn part(&self) -> FpgaPart {
        self.part
    }

    /// The datapath precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The computed schedule.
    pub fn schedule(&self) -> &DesignSchedule {
        &self.schedule
    }

    /// The resource binding.
    pub fn resources(&self) -> ResourceUsage {
        self.resources
    }

    /// The `csynth`-style report.
    pub fn report(&self) -> HlsReport {
        HlsReport {
            top: "cnn".into(),
            directives: format!("{} @{}", self.directives.label(), self.precision.label()),
            latency_cycles: self.schedule.latency_cycles,
            interval_cycles: self.schedule.interval_cycles,
            clock_hz: crate::calibration::FABRIC_CLOCK_HZ,
            resources: self.resources,
        }
    }

    /// Generates the single-file synthesizable C++ (wrapper 1 of the
    /// paper's back end).
    pub fn cpp_source(&self) -> String {
        codegen::cpp::generate(&self.network, &self.ir, &self.directives)
    }

    /// Generates the three tcl scripts (wrapper 2): returns
    /// `(cnn_vivado_hls.tcl, directives.tcl, cnn_vivado.tcl)`.
    pub fn tcl_scripts(&self) -> codegen::tcl::TclScripts {
        codegen::tcl::generate(&self.ir, &self.directives, self.part)
    }

    /// Generates the C-simulation testbench (`cnn_tb.cpp`) for a set
    /// of stimulus images; the expected classes are the network's own
    /// (bit-exact software) predictions.
    pub fn testbench(&self, images: &[cnn_tensor::Tensor]) -> String {
        let expected: Vec<usize> = images.iter().map(|i| self.network.predict(i)).collect();
        codegen::tb::generate(images, &expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    fn test4_net() -> Network {
        let mut rng = seeded_rng(2);
        Network::builder(Shape::new(3, 32, 32))
            .conv(12, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(36, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(36, Some(Activation::Tanh), &mut rng)
            .linear(10, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn project_builds_for_all_paper_tests() {
        for ds in [DirectiveSet::naive(), DirectiveSet::optimized()] {
            assert!(HlsProject::new(&test1_net(), ds, FpgaPart::zynq7020()).is_ok());
        }
        assert!(HlsProject::new(
            &test4_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7020()
        )
        .is_ok());
    }

    #[test]
    fn cifar_design_rejected_on_zybo() {
        let err = HlsProject::new(
            &test4_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7010(),
        )
        .unwrap_err();
        match err {
            HlsError::DoesNotFit(resources) => {
                assert!(
                    resources.contains(&"BRAM"),
                    "expected BRAM overflow: {resources:?}"
                )
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn unchecked_keeps_overflowing_design() {
        let p = HlsProject::new_unchecked(
            &test4_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7010(),
        );
        assert!(!p.resources().fits());
        assert!(!p.report().render().is_empty());
    }

    #[test]
    fn report_reflects_directives() {
        let p = HlsProject::new(
            &test1_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        )
        .unwrap();
        let r = p.report();
        assert_eq!(r.directives, "dataflow+pipe-conv @f32");
        assert!(r.interval_cycles <= r.latency_cycles);
    }

    #[test]
    fn artifacts_are_generated() {
        let p = HlsProject::new(
            &test1_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        )
        .unwrap();
        let cpp = p.cpp_source();
        assert!(cpp.contains("int cnn("));
        let tcl = p.tcl_scripts();
        assert!(tcl.vivado_hls.contains("csynth_design"));
        assert!(tcl.vivado.contains("create_bd_design"));
    }

    #[test]
    fn cifar_design_trivially_fits_virtex7() {
        // The paper's future-work target has 12x the DSPs and 7x the
        // BRAM of the Zynq-7020; the CIFAR network barely dents it.
        let p =
            HlsProject::new(&test4_net(), DirectiveSet::optimized(), FpgaPart::virtex7()).unwrap();
        assert!(p.resources().bram_pct() < 15.0);
        assert!(p.resources().dsp_pct() < 10.0);
    }

    #[test]
    fn fixed_point_project_is_smaller_and_faster() {
        use crate::precision::Precision;
        let f32p = HlsProject::new(
            &test1_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
        )
        .unwrap();
        let q16p = HlsProject::with_precision(
            &test1_net(),
            DirectiveSet::optimized(),
            FpgaPart::zynq7020(),
            Precision::q8_8(),
        )
        .unwrap();
        assert!(q16p.schedule().interval_cycles < f32p.schedule().interval_cycles);
        assert!(q16p.resources().dsp < f32p.resources().dsp);
        assert!(q16p.resources().bram36 <= f32p.resources().bram36);
        assert!(q16p.report().directives.contains("@q8.8"));
    }

    #[test]
    fn error_display() {
        assert!(HlsError::DoesNotFit(vec!["BRAM"])
            .to_string()
            .contains("BRAM"));
        assert!(HlsError::EmptyDesign.to_string().contains("zero blocks"));
    }
}
