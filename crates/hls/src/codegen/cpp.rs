//! C++ code generation — the paper's first wrapper: "a single file
//! containing all the parameters of the network, included the
//! hard-coded weights, and the function that will be implemented in
//! hardware", in the Vivado-HLS-synthesizable C++ subset, following
//! the dataflow pattern of Section IV-B (intermediate buffers between
//! layers, AXI4-Stream I/O on the boundary, LogSoftMax appended, and
//! an `int` return carrying the predicted class).

use crate::directives::DirectiveSet;
use crate::ir::{BlockKind, DesignIr, LayerBlock};
use cnn_nn::{Layer, Network};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use std::fmt::Write;

/// Formats an f32 as a C literal that round-trips exactly.
fn f32_lit(v: f32) -> String {
    if v == v.trunc() && v.abs() < 1e7 {
        format!("{v:.1}f")
    } else {
        // Shortest round-trip representation, suffixed.
        format!("{v}f")
    }
}

/// Emits a flat float array initializer, wrapped at 8 values per line.
fn emit_array(out: &mut String, name: &str, data: &[f32]) {
    let _ = writeln!(out, "static const float {name}[{}] = {{", data.len());
    for chunk in data.chunks(8) {
        let vals: Vec<String> = chunk.iter().map(|&v| f32_lit(v)).collect();
        let _ = writeln!(out, "    {},", vals.join(", "));
    }
    let _ = writeln!(out, "}};");
}

fn activation_expr(act: Activation, x: &str) -> String {
    match act {
        Activation::Tanh => format!("cnn_tanh({x})"),
        Activation::Relu => format!("({x} > 0.0f ? {x} : 0.0f)"),
        Activation::Sigmoid => format!("(1.0f / (1.0f + cnn_exp(-({x}))))"),
    }
}

/// Emits the helper math kernels (the HLS math library surface).
fn emit_helpers(out: &mut String) {
    out.push_str(
        "\n// --- math helpers (synthesizable subset; no libm calls) ---\n\
         static float cnn_exp(float x) {\n\
         #pragma HLS INLINE\n\
             // range-reduced degree-6 polynomial exponential\n\
             if (x > 88.0f) return 1e38f;\n\
             if (x < -87.0f) return 0.0f;\n\
             const float LN2 = 0.69314718056f;\n\
             float k = (float)(int)(x / LN2 + (x >= 0.0f ? 0.5f : -0.5f));\n\
             float r = x - k * LN2;\n\
             float p = 1.0f + r * (1.0f + r * (0.5f + r * (0.166666667f\n\
                     + r * (0.0416666667f + r * (0.00833333333f + r * 0.00138888889f)))));\n\
             int ik = (int)k;\n\
             float s = 1.0f;\n\
             for (int i = 0; i < (ik > 0 ? ik : -ik); i++) {\n\
                 s *= (ik > 0) ? 2.0f : 0.5f;\n\
             }\n\
             return p * s;\n\
         }\n\
         \n\
         static float cnn_log(float x) {\n\
         #pragma HLS INLINE\n\
             // atanh-series logarithm: ln(x) = 2*atanh((x-1)/(x+1))\n\
             float y = (x - 1.0f) / (x + 1.0f);\n\
             float y2 = y * y;\n\
             return 2.0f * y * (1.0f + y2 * (0.333333333f + y2 * (0.2f + y2 * 0.142857143f)));\n\
         }\n\
         \n\
         static float cnn_tanh(float x) {\n\
         #pragma HLS INLINE\n\
             float e2 = cnn_exp(2.0f * x);\n\
             return (e2 - 1.0f) / (e2 + 1.0f);\n\
         }\n\n",
    );
}

fn emit_conv_block(
    out: &mut String,
    block: &LayerBlock,
    layer_idx: usize,
    net: &Network,
    inname: &str,
    outname: &str,
    directives: &DirectiveSet,
) {
    let Layer::Conv2d(c) = &net.layers()[layer_idx] else {
        unreachable!("conv block must map to a conv layer")
    };
    let in_shape = if layer_idx == 0 {
        net.input_shape()
    } else {
        net.shape_after(layer_idx - 1)
    };
    let out_shape = net.shape_after(layer_idx);
    let (k, ch, kh, kw) = (
        c.kernels.kernels(),
        c.kernels.channels(),
        c.kernels.kh(),
        c.kernels.kw(),
    );
    let name = &block.name;
    let _ = writeln!(
        out,
        "    // {name}: {k} kernels {kh}x{kw} over {in_shape} -> {out_shape}"
    );
    let _ = writeln!(out, "    {name}_k: for (int k = 0; k < {k}; k++) {{");
    let _ = writeln!(
        out,
        "    {name}_oy: for (int oy = 0; oy < {}; oy++) {{",
        out_shape.h
    );
    let _ = writeln!(
        out,
        "    {name}_ox: for (int ox = 0; ox < {}; ox++) {{",
        out_shape.w
    );
    let _ = writeln!(out, "        float acc = {name}_b[k];");
    let _ = writeln!(out, "    {name}_reduce: for (int c = 0; c < {ch}; c++)");
    let _ = writeln!(out, "        for (int m = 0; m < {kh}; m++)");
    let _ = writeln!(out, "        for (int n = 0; n < {kw}; n++) {{");
    if directives.pipelines(BlockKind::Conv) {
        let _ = writeln!(
            out,
            "#pragma HLS PIPELINE II={}",
            crate::calibration::II_REDUCTION
        );
        if directives.unroll_factor > 1 {
            let _ = writeln!(
                out,
                "#pragma HLS UNROLL factor={}",
                directives.unroll_factor
            );
        }
    }
    let _ = writeln!(
        out,
        "            acc += {name}_w[((k * {ch} + c) * {kh} + m) * {kw} + n]\n\
         \x20                * {inname}[(c * {ih} + oy + m) * {iw} + ox + n];",
        ih = in_shape.h,
        iw = in_shape.w,
    );
    let _ = writeln!(out, "        }}");
    let expr = match c.activation {
        Some(act) => activation_expr(act, "acc"),
        None => "acc".to_string(),
    };
    let _ = writeln!(
        out,
        "        {outname}[(k * {oh} + oy) * {ow} + ox] = {expr};",
        oh = out_shape.h,
        ow = out_shape.w,
    );
    let _ = writeln!(out, "    }} }} }}\n");
}

fn emit_pool_block(
    out: &mut String,
    block: &LayerBlock,
    layer_idx: usize,
    net: &Network,
    inname: &str,
    outname: &str,
    directives: &DirectiveSet,
) {
    let Layer::Pool(p) = &net.layers()[layer_idx] else {
        unreachable!("pool block must map to a pool layer")
    };
    let in_shape = net.shape_after(layer_idx - 1);
    let out_shape = net.shape_after(layer_idx);
    let name = &block.name;
    let op = match p.kind {
        PoolKind::Max => "max",
        PoolKind::Mean => "mean",
    };
    let _ = writeln!(
        out,
        "    // {name}: {op}-pool {}x{} stride {}",
        p.kh, p.kw, p.step
    );
    let _ = writeln!(
        out,
        "    {name}_c: for (int c = 0; c < {}; c++) {{",
        out_shape.c
    );
    let _ = writeln!(
        out,
        "    {name}_oy: for (int oy = 0; oy < {}; oy++) {{",
        out_shape.h
    );
    let _ = writeln!(
        out,
        "    {name}_ox: for (int ox = 0; ox < {}; ox++) {{",
        out_shape.w
    );
    match p.kind {
        PoolKind::Max => {
            let _ = writeln!(out, "        float best = -3.0e38f;");
        }
        PoolKind::Mean => {
            let _ = writeln!(out, "        float acc = 0.0f;");
        }
    }
    let _ = writeln!(out, "    {name}_reduce: for (int m = 0; m < {}; m++)", p.kh);
    let _ = writeln!(out, "        for (int n = 0; n < {}; n++) {{", p.kw);
    if directives.pipelines(BlockKind::Pool) {
        let _ = writeln!(out, "#pragma HLS PIPELINE II=1");
    }
    let idx = format!(
        "(c * {ih} + oy * {st} + m) * {iw} + ox * {st} + n",
        ih = in_shape.h,
        iw = in_shape.w,
        st = p.step
    );
    match p.kind {
        PoolKind::Max => {
            let _ = writeln!(
                out,
                "            float v = {inname}[{idx}];\n\
                 \x20           if (v > best) best = v;"
            );
        }
        PoolKind::Mean => {
            let _ = writeln!(out, "            acc += {inname}[{idx}];");
        }
    }
    let _ = writeln!(out, "        }}");
    let store = match p.kind {
        PoolKind::Max => "best".to_string(),
        PoolKind::Mean => format!("acc * {}", f32_lit(1.0 / (p.kh * p.kw) as f32)),
    };
    let _ = writeln!(
        out,
        "        {outname}[(c * {oh} + oy) * {ow} + ox] = {store};",
        oh = out_shape.h,
        ow = out_shape.w,
    );
    let _ = writeln!(out, "    }} }} }}\n");
}

fn emit_linear_block(
    out: &mut String,
    block: &LayerBlock,
    layer_idx: usize,
    net: &Network,
    inname: &str,
    outname: &str,
    directives: &DirectiveSet,
) {
    let Layer::Linear(l) = &net.layers()[layer_idx] else {
        unreachable!("linear block must map to a linear layer")
    };
    let name = &block.name;
    let _ = writeln!(out, "    // {name}: {} -> {} neurons", l.inputs, l.outputs);
    let _ = writeln!(
        out,
        "    {name}_j: for (int j = 0; j < {}; j++) {{",
        l.outputs
    );
    let _ = writeln!(out, "        float acc = {name}_b[j];");
    let _ = writeln!(
        out,
        "    {name}_reduce: for (int i = 0; i < {}; i++) {{",
        l.inputs
    );
    if directives.pipelines(BlockKind::Linear) {
        let _ = writeln!(
            out,
            "#pragma HLS PIPELINE II={}",
            crate::calibration::II_REDUCTION
        );
    }
    let _ = writeln!(
        out,
        "            acc += {name}_w[j * {} + i] * {inname}[i];",
        l.inputs
    );
    let _ = writeln!(out, "        }}");
    let expr = match l.activation {
        Some(act) => activation_expr(act, "acc"),
        None => "acc".to_string(),
    };
    let _ = writeln!(out, "        {outname}[j] = {expr};");
    let _ = writeln!(out, "    }}\n");
}

fn emit_log_softmax_block(out: &mut String, classes: u64, inname: &str) {
    let _ = writeln!(
        out,
        "    // log_softmax + argmax (appended by the generator)\n\
         \x20   float lsm_max = {inname}[0];\n\
         \x20   lsm_m: for (int k = 1; k < {classes}; k++)\n\
         \x20       if ({inname}[k] > lsm_max) lsm_max = {inname}[k];\n\
         \x20   float lsm_sum = 0.0f;\n\
         \x20   lsm_e: for (int k = 0; k < {classes}; k++)\n\
         \x20       lsm_sum += cnn_exp({inname}[k] - lsm_max);\n\
         \x20   float lsm_lse = cnn_log(lsm_sum);\n\
         \x20   int best = 0;\n\
         \x20   float best_v = -3.0e38f;\n\
         \x20   lsm_o: for (int k = 0; k < {classes}; k++) {{\n\
         \x20       float lp = {inname}[k] - lsm_max - lsm_lse;\n\
         \x20       if (lp > best_v) {{ best_v = lp; best = k; }}\n\
         \x20   }}\n\
         \x20   return best;"
    );
}

/// Collects the weight arrays of the network in block order.
fn emit_weights(out: &mut String, net: &Network, ir: &DesignIr) {
    let mut block_iter = ir.blocks.iter();
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(c) => {
                let b = block_iter.next().expect("block for conv");
                emit_array(out, &format!("{}_w", b.name), c.kernels.as_slice());
                emit_array(out, &format!("{}_b", b.name), &c.bias);
            }
            Layer::Pool(_) => {
                block_iter.next();
            }
            Layer::Linear(l) => {
                let b = block_iter.next().expect("block for linear");
                emit_array(out, &format!("{}_w", b.name), &l.weights);
                emit_array(out, &format!("{}_b", b.name), &l.bias);
            }
            Layer::LogSoftMax => {
                block_iter.next();
            }
            Layer::Flatten => {}
        }
    }
}

/// Generates the complete single-file C++ source.
pub fn generate(net: &Network, ir: &DesignIr, directives: &DirectiveSet) -> String {
    let mut out = String::with_capacity(1 << 16);
    out.push_str(
        "// ===================================================================\n\
         // CNN hardware function - generated by cnn2fpga\n\
         // Synthesizable C++ subset for Vivado HLS (paper Section IV-A):\n\
         // dataflow pattern with intermediate buffers, AXI4-Stream I/O,\n\
         // hard-coded trained weights, LogSoftMax tail, int class output.\n\
         // ===================================================================\n\n",
    );

    emit_weights(&mut out, net, ir);
    emit_helpers(&mut out);

    // Top function with stream interface.
    let in_elems = ir.input_elems;
    let _ = writeln!(
        out,
        "int cnn(volatile float *in_stream) {{\n\
         #pragma HLS INTERFACE axis port=in_stream\n\
         #pragma HLS INTERFACE s_axilite port=return"
    );
    if directives.dataflow {
        let _ = writeln!(out, "#pragma HLS DATAFLOW");
    }
    let _ = writeln!(out, "\n    float buf_in[{in_elems}];");
    for (i, b) in ir.blocks.iter().enumerate() {
        if i + 1 < ir.blocks.len() {
            let _ = writeln!(out, "    float {}_out[{}];", b.name, b.output_elems);
        }
    }
    let _ = writeln!(
        out,
        "\n    read_in: for (int i = 0; i < {in_elems}; i++) {{\n\
         #pragma HLS PIPELINE II=1\n\
         \x20       buf_in[i] = in_stream[i];\n\
         \x20   }}\n"
    );

    // Walk layers and blocks in step.
    let mut block_idx = 0usize;
    let mut inname = "buf_in".to_string();
    for (layer_idx, layer) in net.layers().iter().enumerate() {
        if matches!(layer, Layer::Flatten) {
            continue; // flattening is free: buffers are already flat
        }
        let block = &ir.blocks[block_idx];
        let is_last = block_idx + 1 == ir.blocks.len();
        let outname = format!("{}_out", block.name);
        match layer {
            Layer::Conv2d(_) => emit_conv_block(
                &mut out, block, layer_idx, net, &inname, &outname, directives,
            ),
            Layer::Pool(_) => emit_pool_block(
                &mut out, block, layer_idx, net, &inname, &outname, directives,
            ),
            Layer::Linear(_) => emit_linear_block(
                &mut out, block, layer_idx, net, &inname, &outname, directives,
            ),
            Layer::LogSoftMax => emit_log_softmax_block(&mut out, ir.classes, &inname),
            Layer::Flatten => unreachable!(),
        }
        if !is_last {
            inname = outname;
        }
        block_idx += 1;
    }

    // Networks without a LogSoftMax tail still need a return.
    if !matches!(net.layers().last(), Some(Layer::LogSoftMax)) {
        let last = ir.blocks.last().expect("non-empty");
        let _ = writeln!(
            out,
            "    int best = 0;\n\
             \x20   float best_v = -3.0e38f;\n\
             \x20   out_argmax: for (int k = 0; k < {n}; k++) {{\n\
             \x20       if ({name}_out[k] > best_v) {{ best_v = {name}_out[k]; best = k; }}\n\
             \x20   }}\n\
             \x20   return best;",
            n = last.output_elems,
            name = last.name,
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    fn gen(directives: DirectiveSet) -> String {
        let net = test1_net();
        let ir = lower(&net);
        generate(&net, &ir, &directives)
    }

    #[test]
    fn source_has_top_function_and_interface_pragmas() {
        let src = gen(DirectiveSet::naive());
        assert!(src.contains("int cnn(volatile float *in_stream)"));
        assert!(src.contains("#pragma HLS INTERFACE axis port=in_stream"));
        assert!(src.contains("#pragma HLS INTERFACE s_axilite port=return"));
    }

    #[test]
    fn weights_are_hard_coded() {
        let src = gen(DirectiveSet::naive());
        assert!(src.contains("static const float conv1_w[150]"));
        assert!(src.contains("static const float conv1_b[6]"));
        assert!(src.contains("static const float linear1_w[2160]"));
        assert!(src.contains("static const float linear1_b[10]"));
    }

    #[test]
    fn naive_has_no_optimization_pragmas() {
        let src = gen(DirectiveSet::naive());
        assert!(!src.contains("#pragma HLS DATAFLOW"));
        // the input reader is always pipelined; layer loops are not
        let after_reader = src.split("read_in").nth(1).unwrap();
        assert!(!after_reader.contains("#pragma HLS PIPELINE II=2"));
    }

    #[test]
    fn optimized_has_dataflow_and_conv_pipeline() {
        let src = gen(DirectiveSet::optimized());
        assert!(src.contains("#pragma HLS DATAFLOW"));
        assert!(src.contains("#pragma HLS PIPELINE II=2"));
    }

    #[test]
    fn unrolled_build_emits_unroll_pragma() {
        let src = gen(DirectiveSet::optimized_unrolled(5));
        assert!(src.contains("#pragma HLS UNROLL factor=5"));
    }

    #[test]
    fn loop_labels_match_ir_block_names() {
        let src = gen(DirectiveSet::naive());
        for label in ["conv1_reduce", "pool1_reduce", "linear1_reduce", "lsm_o"] {
            assert!(src.contains(label), "missing loop label {label}");
        }
    }

    #[test]
    fn logsoftmax_and_return() {
        let src = gen(DirectiveSet::naive());
        assert!(src.contains("cnn_exp("));
        assert!(src.contains("cnn_log("));
        assert!(src.contains("return best;"));
    }

    #[test]
    fn buffers_declared_between_layers() {
        let src = gen(DirectiveSet::naive());
        assert!(src.contains("float buf_in[256];"));
        assert!(src.contains("float conv1_out[864];"));
        assert!(src.contains("float pool1_out[216];"));
        assert!(src.contains("float linear1_out[10];"));
    }

    #[test]
    fn network_without_lsm_gets_argmax_epilogue() {
        let mut rng = seeded_rng(5);
        let net = Network::builder(Shape::new(1, 8, 8))
            .conv(2, 3, 3, &mut rng)
            .flatten()
            .linear(4, None, &mut rng)
            .build()
            .unwrap();
        let ir = lower(&net);
        let src = generate(&net, &ir, &DirectiveSet::naive());
        assert!(src.contains("out_argmax"));
        assert!(src.contains("return best;"));
    }

    #[test]
    fn float_literals_roundtrip() {
        assert_eq!(f32_lit(1.0), "1.0f");
        assert_eq!(f32_lit(-2.0), "-2.0f");
        #[allow(clippy::excessive_precision)]
        let v = 0.123456789f32;
        let lit = f32_lit(v);
        let parsed: f32 = lit.trim_end_matches('f').parse().unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn weight_values_appear_in_source() {
        let net = test1_net();
        let ir = lower(&net);
        let src = generate(&net, &ir, &DirectiveSet::naive());
        // Spot-check: the first conv weight literal is present.
        if let cnn_nn::Layer::Conv2d(c) = &net.layers()[0] {
            let first = c.kernels.as_slice()[0];
            assert!(
                src.contains(&f32_lit(first)),
                "missing weight literal {first}"
            );
        } else {
            panic!("layer 0 should be conv");
        }
    }

    #[test]
    fn mean_pool_generates_scale() {
        let mut rng = seeded_rng(6);
        let net = Network::builder(Shape::new(1, 8, 8))
            .conv(2, 3, 3, &mut rng)
            .pool(PoolKind::Mean, 2, 2)
            .build()
            .unwrap();
        let ir = lower(&net);
        let src = generate(&net, &ir, &DirectiveSet::naive());
        assert!(src.contains("acc * 0.25f"), "mean pool should scale by 1/4");
    }
}
