//! Artifact generation — the two "Python wrappers" of the paper's
//! back end, reimplemented: [`cpp`] emits the single synthesizable C++
//! source with hard-coded weights; [`tcl`] emits the three tcl scripts
//! for Vivado HLS and Vivado Design Suite; [`tb`] emits the C
//! simulation testbench a `csim_design` run drives.

pub mod cpp;
pub mod tb;
pub mod tcl;
