//! Floating-point operator library: the latency and resource cost of
//! each single-precision operator the generated datapath instantiates.
//!
//! Costs follow the 7-series floating-point operator characterization
//! (DSP48E1-based cores at a 10 ns clock): multiplication maps to 3 DSP
//! slices, addition to 2 in the "full-usage" configuration, comparison
//! is LUT-only, and the transcendental cores (`exp`, `log`) are larger
//! multi-DSP pipelines. Division is the LUT-heavy non-DSP core.

use serde::{Deserialize, Serialize};

/// One floating-point operator kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FpOp {
    /// Single-precision multiply.
    Mul,
    /// Single-precision add/subtract.
    Add,
    /// Comparison (max-pooling, argmax).
    Cmp,
    /// Exponential core (tanh, sigmoid, softmax).
    Exp,
    /// Natural-logarithm core (LogSoftMax).
    Log,
    /// Division core (tanh, sigmoid normalization).
    Div,
}

/// Cost record for one operator instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Pipeline latency in fabric cycles at 100 MHz.
    pub latency: u32,
    /// DSP48E1 slices.
    pub dsp: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
}

impl FpOp {
    /// Cost of one hardware instance of this operator.
    pub const fn cost(self) -> OpCost {
        match self {
            // DSP48E1 "full usage" fmul: 3 DSP, ~4-cycle latency.
            FpOp::Mul => OpCost {
                latency: 3,
                dsp: 3,
                lut: 135,
                ff: 166,
            },
            // fadd full-DSP configuration: 2 DSP, ~7 cycles.
            FpOp::Add => OpCost {
                latency: 7,
                dsp: 2,
                lut: 214,
                ff: 324,
            },
            // Comparator: LUT only, combinational + register.
            FpOp::Cmp => OpCost {
                latency: 1,
                dsp: 0,
                lut: 66,
                ff: 34,
            },
            // expf core: multi-DSP polynomial pipeline in the
            // full-usage configuration (calibrated to Table II's DSP
            // column together with `Log`).
            FpOp::Exp => OpCost {
                latency: 17,
                dsp: 17,
                lut: 210,
                ff: 572,
            },
            // logf core, full-usage configuration.
            FpOp::Log => OpCost {
                latency: 19,
                dsp: 15,
                lut: 360,
                ff: 970,
            },
            // fdiv: iterative LUT-based core, no DSP.
            FpOp::Div => OpCost {
                latency: 28,
                dsp: 0,
                lut: 420,
                ff: 1446,
            },
        }
    }

    /// All operator kinds (iteration helper).
    pub const ALL: [FpOp; 6] = [
        FpOp::Mul,
        FpOp::Add,
        FpOp::Cmp,
        FpOp::Exp,
        FpOp::Log,
        FpOp::Div,
    ];
}

/// A multiset of operators (the body of a loop nest, or the set of
/// instances a block binds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpMix {
    /// Multiplications per iteration.
    pub mul: u64,
    /// Additions per iteration.
    pub add: u64,
    /// Comparisons per iteration.
    pub cmp: u64,
    /// Exponentials per iteration.
    pub exp: u64,
    /// Logarithms per iteration.
    pub log: u64,
    /// Divisions per iteration.
    pub div: u64,
}

impl OpMix {
    /// An empty mix.
    pub const fn none() -> OpMix {
        OpMix {
            mul: 0,
            add: 0,
            cmp: 0,
            exp: 0,
            log: 0,
            div: 0,
        }
    }

    /// One multiply–accumulate.
    pub const fn mac() -> OpMix {
        OpMix {
            mul: 1,
            add: 1,
            cmp: 0,
            exp: 0,
            log: 0,
            div: 0,
        }
    }

    /// Count for a given op kind.
    pub fn count(&self, op: FpOp) -> u64 {
        match op {
            FpOp::Mul => self.mul,
            FpOp::Add => self.add,
            FpOp::Cmp => self.cmp,
            FpOp::Exp => self.exp,
            FpOp::Log => self.log,
            FpOp::Div => self.div,
        }
    }

    /// Total operator count.
    pub fn total(&self) -> u64 {
        FpOp::ALL.iter().map(|&op| self.count(op)).sum()
    }

    /// Critical-path latency of the body assuming the operators chain
    /// sequentially (the unpipelined datapath the naive schedule uses).
    pub fn chained_latency(&self) -> u64 {
        FpOp::ALL
            .iter()
            .map(|&op| self.count(op) * op.cost().latency as u64)
            .sum()
    }

    /// Element-wise sum of two mixes.
    pub fn plus(&self, other: &OpMix) -> OpMix {
        OpMix {
            mul: self.mul + other.mul,
            add: self.add + other.add,
            cmp: self.cmp + other.cmp,
            exp: self.exp + other.exp,
            log: self.log + other.log,
            div: self.div + other.div,
        }
    }

    /// Scales every count by `n` (e.g. per-iteration mix × trip count).
    pub fn times(&self, n: u64) -> OpMix {
        OpMix {
            mul: self.mul * n,
            add: self.add * n,
            cmp: self.cmp * n,
            exp: self.exp * n,
            log: self.log * n,
            div: self.div * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_add_costs_are_dsp_based() {
        assert_eq!(FpOp::Mul.cost().dsp, 3);
        assert_eq!(FpOp::Add.cost().dsp, 2);
        assert_eq!(FpOp::Cmp.cost().dsp, 0);
        assert_eq!(FpOp::Div.cost().dsp, 0);
    }

    #[test]
    fn transcendentals_are_slow_and_large() {
        assert!(FpOp::Exp.cost().latency > FpOp::Add.cost().latency);
        assert!(FpOp::Log.cost().lut > FpOp::Add.cost().lut);
        assert!(FpOp::Div.cost().latency > FpOp::Mul.cost().latency);
    }

    #[test]
    fn mac_mix_latency() {
        // fmul(3) + fadd(7) = 10 chained cycles per MAC.
        assert_eq!(OpMix::mac().chained_latency(), 10);
        assert_eq!(OpMix::mac().total(), 2);
    }

    #[test]
    fn mix_arithmetic() {
        let a = OpMix {
            mul: 1,
            add: 2,
            cmp: 3,
            exp: 0,
            log: 0,
            div: 0,
        };
        let b = OpMix {
            mul: 4,
            add: 0,
            cmp: 1,
            exp: 2,
            log: 0,
            div: 1,
        };
        let s = a.plus(&b);
        assert_eq!(s.mul, 5);
        assert_eq!(s.cmp, 4);
        assert_eq!(s.exp, 2);
        let t = a.times(3);
        assert_eq!(t.add, 6);
        assert_eq!(t.total(), 18);
    }

    #[test]
    fn count_matches_fields() {
        let m = OpMix {
            mul: 1,
            add: 2,
            cmp: 3,
            exp: 4,
            log: 5,
            div: 6,
        };
        assert_eq!(m.count(FpOp::Mul), 1);
        assert_eq!(m.count(FpOp::Log), 5);
        assert_eq!(m.total(), 21);
    }
}
