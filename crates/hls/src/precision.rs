//! Arithmetic precision of the generated datapath — the ablation the
//! paper motivates in Section V: "software and hardware
//! implementations employ 32-bit floating point weights. From the FPGA
//! prospective, this reasonably implies a higher usage of resources".
//! This module quantifies the alternative the paper declined:
//! fixed-point arithmetic à la Sankaradas et al. \[8\] ("low data
//! precision is used").

use crate::operators::{FpOp, OpCost};
use serde::{Deserialize, Serialize};

/// Datapath precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Precision {
    /// IEEE-754 single precision — the paper's choice.
    Float32,
    /// Signed fixed point `Qm.n` with `total_bits = m + n` (plus sign).
    Fixed {
        /// Total word width in bits (16 → Q8.8, 8 → Q4.4, ...).
        total_bits: u32,
        /// Fractional bits.
        frac_bits: u32,
    },
    /// True int8: calibrated symmetric scales, i8 weights/activations,
    /// i32 accumulators (the `cnn-nn` quantized inference engine).
    /// Unlike `Fixed`, scales are per-tensor rather than a global
    /// `Qm.n` grid, and two 8×8 multiplies pack into one DSP48.
    Int8,
}

impl Precision {
    /// The paper's configuration.
    pub const fn float32() -> Precision {
        Precision::Float32
    }

    /// Q8.8: 16-bit fixed point.
    pub const fn q8_8() -> Precision {
        Precision::Fixed {
            total_bits: 16,
            frac_bits: 8,
        }
    }

    /// Q4.4: 8-bit fixed point.
    pub const fn q4_4() -> Precision {
        Precision::Fixed {
            total_bits: 8,
            frac_bits: 4,
        }
    }

    /// Calibrated int8.
    pub const fn int8() -> Precision {
        Precision::Int8
    }

    /// Storage bits per weight/activation element.
    pub fn bits_per_element(self) -> u32 {
        match self {
            Precision::Float32 => 32,
            Precision::Fixed { total_bits, .. } => total_bits,
            Precision::Int8 => 8,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            Precision::Float32 => "f32".to_string(),
            Precision::Fixed {
                total_bits,
                frac_bits,
            } => {
                format!("q{}.{}", total_bits - frac_bits, frac_bits)
            }
            Precision::Int8 => "int8".to_string(),
        }
    }

    /// How many multiplies one DSP48 slice serves per cycle: the
    /// 25×18 multiplier fits two independent 8×8 products (weight
    /// pair packed into the 25-bit port), so int8 doubles MAC
    /// density — the same trick the software engine's `vpmaddwd`
    /// kernels exploit lane-wise.
    pub fn muls_per_dsp(self) -> u64 {
        match self {
            Precision::Int8 => 2,
            _ => 1,
        }
    }

    /// Operator cost under this precision. Floating point uses the
    /// 7-series FP cores; fixed point maps multiplies onto a single
    /// DSP (two for widths beyond 18×25), additions onto carry-chain
    /// LUT logic, and the transcendentals onto small lookup tables.
    pub fn op_cost(self, op: FpOp) -> OpCost {
        match self {
            Precision::Float32 => op.cost(),
            Precision::Fixed { total_bits, .. } => {
                let wide = total_bits > 18;
                match op {
                    FpOp::Mul => OpCost {
                        latency: 2,
                        dsp: if wide { 2 } else { 1 },
                        lut: 24,
                        ff: 2 * total_bits,
                    },
                    FpOp::Add => OpCost {
                        latency: 1,
                        dsp: 0,
                        lut: total_bits,
                        ff: total_bits,
                    },
                    FpOp::Cmp => OpCost {
                        latency: 1,
                        dsp: 0,
                        lut: total_bits / 2,
                        ff: 8,
                    },
                    // table-driven exp/log: one lookup + interpolation MAC
                    FpOp::Exp => OpCost {
                        latency: 3,
                        dsp: 1,
                        lut: 96,
                        ff: 64,
                    },
                    FpOp::Log => OpCost {
                        latency: 3,
                        dsp: 1,
                        lut: 96,
                        ff: 64,
                    },
                    FpOp::Div => OpCost {
                        latency: 6,
                        dsp: 1,
                        lut: 128,
                        ff: 96,
                    },
                }
            }
            // Int8 has its own rows — it must NOT fall through to a
            // 16-bit fixed config: the multiplier is a narrow 8×8
            // product (single-cycle, DSP-packable via
            // [`Self::muls_per_dsp`]), the adder is the 32-bit
            // accumulator carry chain, and the transcendentals
            // collapse into a 255-entry i8→i8 table lookup with no
            // DSP at all.
            Precision::Int8 => match op {
                FpOp::Mul => OpCost {
                    latency: 1,
                    dsp: 1,
                    lut: 8,
                    ff: 16,
                },
                // i32 widening accumulate: one 32-bit carry chain.
                FpOp::Add => OpCost {
                    latency: 1,
                    dsp: 0,
                    lut: 32,
                    ff: 32,
                },
                FpOp::Cmp => OpCost {
                    latency: 1,
                    dsp: 0,
                    lut: 4,
                    ff: 8,
                },
                // 255-entry code→code LUT (tanh/relu/sigmoid alike).
                FpOp::Exp | FpOp::Log => OpCost {
                    latency: 1,
                    dsp: 0,
                    lut: 64,
                    ff: 8,
                },
                FpOp::Div => OpCost {
                    latency: 4,
                    dsp: 0,
                    lut: 72,
                    ff: 48,
                },
            },
        }
    }

    /// Initiation-interval floor of an accumulation recurrence:
    /// floating-point addition is multi-cycle (II = 2 after the
    /// partial-sum rewriting); integer accumulation closes in one
    /// cycle (II = 1).
    pub fn reduction_ii(self) -> u64 {
        match self {
            Precision::Float32 => crate::calibration::II_REDUCTION,
            Precision::Fixed { .. } | Precision::Int8 => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_element() {
        assert_eq!(Precision::float32().bits_per_element(), 32);
        assert_eq!(Precision::q8_8().bits_per_element(), 16);
        assert_eq!(Precision::q4_4().bits_per_element(), 8);
        assert_eq!(Precision::int8().bits_per_element(), 8);
    }

    #[test]
    fn labels() {
        assert_eq!(Precision::float32().label(), "f32");
        assert_eq!(Precision::q8_8().label(), "q8.8");
        assert_eq!(Precision::q4_4().label(), "q4.4");
        assert_eq!(Precision::int8().label(), "int8");
    }

    // One test per precision pinning its own characteristic rows, so
    // no variant can silently fall through to another's cost table.
    #[test]
    fn float32_rows_are_the_operator_library() {
        let p = Precision::float32();
        assert_eq!(p.bits_per_element(), 32);
        assert_eq!(p.reduction_ii(), 2);
        assert_eq!(p.muls_per_dsp(), 1);
        assert_eq!(p.op_cost(FpOp::Mul), FpOp::Mul.cost());
    }

    #[test]
    fn q8_8_rows_are_the_16_bit_fixed_row() {
        let p = Precision::q8_8();
        assert_eq!(p.bits_per_element(), 16);
        assert_eq!(p.reduction_ii(), 1);
        assert_eq!(p.muls_per_dsp(), 1);
        let mul = p.op_cost(FpOp::Mul);
        assert_eq!((mul.latency, mul.dsp), (2, 1));
        assert_eq!(p.op_cost(FpOp::Add).lut, 16);
    }

    #[test]
    fn int8_rows_are_int8_specific() {
        let p = Precision::int8();
        assert_eq!(p.bits_per_element(), 8);
        assert_eq!(p.reduction_ii(), 1);
        assert_eq!(p.muls_per_dsp(), 2);
        // Not the 16-bit fixed fall-through: single-cycle multiply,
        // LUT-only transcendentals.
        let mul = p.op_cost(FpOp::Mul);
        assert_eq!((mul.latency, mul.dsp), (1, 1));
        assert!(mul.lut < Precision::q8_8().op_cost(FpOp::Mul).lut);
        assert_eq!(p.op_cost(FpOp::Exp).dsp, 0);
        assert_eq!(p.op_cost(FpOp::Log).dsp, 0);
        assert_eq!(p.op_cost(FpOp::Exp).latency, 1);
        // The i32 accumulator carry chain is wider than the q4.4 adder.
        assert!(p.op_cost(FpOp::Add).lut > Precision::q4_4().op_cost(FpOp::Add).lut);
    }

    #[test]
    fn q4_4_and_int8_share_width_but_not_costs() {
        // Same storage footprint, different engines: q4.4 is a fixed
        // grid on a 2-cycle DSP multiply; int8 is calibrated scales on
        // a single-cycle packed multiply.
        let q = Precision::q4_4();
        let i = Precision::int8();
        assert_eq!(q.bits_per_element(), i.bits_per_element());
        assert_ne!(q.label(), i.label());
        assert_ne!(q.op_cost(FpOp::Mul), i.op_cost(FpOp::Mul));
        assert_eq!(q.muls_per_dsp(), 1);
        assert_eq!(i.muls_per_dsp(), 2);
    }

    #[test]
    fn float_costs_match_operator_library() {
        for op in FpOp::ALL {
            assert_eq!(Precision::float32().op_cost(op), op.cost());
        }
    }

    #[test]
    fn fixed_point_is_cheaper_everywhere() {
        for op in FpOp::ALL {
            let f = Precision::float32().op_cost(op);
            let q = Precision::q8_8().op_cost(op);
            assert!(q.latency <= f.latency, "{op:?} latency");
            assert!(q.dsp <= f.dsp.max(1), "{op:?} dsp");
        }
    }

    #[test]
    fn wide_fixed_multiplies_need_two_dsps() {
        let q24 = Precision::Fixed {
            total_bits: 24,
            frac_bits: 12,
        };
        assert_eq!(q24.op_cost(FpOp::Mul).dsp, 2);
        assert_eq!(Precision::q8_8().op_cost(FpOp::Mul).dsp, 1);
    }

    #[test]
    fn reduction_ii_tightens_for_fixed_point() {
        assert_eq!(Precision::float32().reduction_ii(), 2);
        assert_eq!(Precision::q8_8().reduction_ii(), 1);
    }
}
