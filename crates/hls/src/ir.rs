//! Loop-nest IR: the form in which a CNN is scheduled and bound.
//!
//! Each network layer lowers to one [`LayerBlock`] — a perfect loop
//! nest (trip counts straight from Eqs. (2)–(5)) whose innermost body
//! is a floating-point operator mix, plus a per-output epilogue
//! (bias add, activation). The generated C++ is the literal textual
//! rendering of this IR; the scheduler costs it; the binder maps its
//! arrays and operators to device resources.

use crate::operators::OpMix;
use cnn_nn::{Layer, Network};
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use serde::{Deserialize, Serialize};

/// A single counted loop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopDim {
    /// Induction-variable name as it appears in the generated C++.
    pub name: String,
    /// Trip count.
    pub trip: u64,
}

/// What kind of layer a block implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BlockKind {
    /// Convolution (Eq. 1).
    Conv,
    /// Max/mean pooling (Eqs. 4–5).
    Pool,
    /// Linear perceptron (Eq. 6).
    Linear,
    /// LogSoftMax + argmax tail (Eq. 7).
    LogSoftMax,
}

/// What an on-chip array stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArrayKind {
    /// Hard-coded trained weights (ROM-like).
    Weights,
    /// Inter-layer activation buffer (the dataflow channels of
    /// Section IV-B: "data pass through intermediate buffers").
    Buffer,
}

/// An on-chip array the block reads or writes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayRef {
    /// C identifier in the generated source.
    pub name: String,
    /// Number of `float` elements.
    pub elems: u64,
    /// Storage class.
    pub kind: ArrayKind,
    /// Leading-dimension extent (kernels for conv weights, output
    /// neurons for linear weights); cyclic array partitioning splits
    /// along this dimension when the consuming loop is pipelined.
    pub leading: u64,
}

/// One layer lowered to a loop nest.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerBlock {
    /// Block label (`conv1`, `pool1`, `linear1`, ...).
    pub name: String,
    /// Layer family.
    pub kind: BlockKind,
    /// Loop nest, outermost first.
    pub loops: Vec<LoopDim>,
    /// How many innermost loops form the reduction (the part `HLS
    /// PIPELINE` flattens when applied to "the inner loop of the
    /// convolutional layer").
    pub reduction_depth: usize,
    /// Operator mix of one innermost iteration.
    pub body: OpMix,
    /// On-chip memory reads per innermost iteration (port pressure).
    pub body_reads: u32,
    /// Per-output epilogue mix (bias add, activation, normalization).
    pub post: OpMix,
    /// How many outputs the epilogue runs over.
    pub post_iters: u64,
    /// Weight arrays this block owns.
    pub weights: Vec<ArrayRef>,
    /// Elements written to the block's output buffer.
    pub output_elems: u64,
    /// Leading dimension of the output buffer (channel count), used by
    /// the binder's partitioning model.
    pub output_leading: u64,
}

impl LayerBlock {
    /// Product of all trip counts (total innermost iterations).
    pub fn total_iters(&self) -> u64 {
        self.loops.iter().map(|l| l.trip).product()
    }

    /// Iterations of the loops *above* the reduction (outer) and the
    /// flattened reduction itself (inner).
    pub fn split_iters(&self) -> (u64, u64) {
        let split = self.loops.len() - self.reduction_depth.min(self.loops.len());
        let outer: u64 = self.loops[..split].iter().map(|l| l.trip).product();
        let inner: u64 = self.loops[split..].iter().map(|l| l.trip).product();
        (outer, inner)
    }

    /// Total operator work of the block (body × iterations + epilogue).
    pub fn total_ops(&self) -> OpMix {
        self.body
            .times(self.total_iters())
            .plus(&self.post.times(self.post_iters))
    }

    /// Total weight elements.
    pub fn weight_elems(&self) -> u64 {
        self.weights.iter().map(|a| a.elems).sum()
    }
}

/// Activation operator mix per element.
fn activation_mix(act: Activation) -> OpMix {
    match act {
        // tanh(x) = (e^x − e^−x) / (e^x + e^−x): 2 exp, 2 add, 1 div.
        Activation::Tanh => OpMix {
            mul: 0,
            add: 2,
            cmp: 0,
            exp: 2,
            log: 0,
            div: 1,
        },
        // max(0, x): one comparison.
        Activation::Relu => OpMix {
            mul: 0,
            add: 0,
            cmp: 1,
            exp: 0,
            log: 0,
            div: 0,
        },
        // 1 / (1 + e^−x): 1 exp, 1 add, 1 div.
        Activation::Sigmoid => OpMix {
            mul: 0,
            add: 1,
            cmp: 0,
            exp: 1,
            log: 0,
            div: 1,
        },
    }
}

/// The whole design in IR form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DesignIr {
    /// Blocks in dataflow order.
    pub blocks: Vec<LayerBlock>,
    /// Words streamed in per image (AXI4-Stream input).
    pub input_elems: u64,
    /// Number of classes (the returned `int` encodes one of these).
    pub classes: u64,
}

impl DesignIr {
    /// Total weight elements across blocks.
    pub fn total_weight_elems(&self) -> u64 {
        self.blocks.iter().map(LayerBlock::weight_elems).sum()
    }

    /// Buffer elements between consecutive blocks (inputs of each
    /// block after the first, plus the final output scores).
    pub fn buffer_elems(&self) -> Vec<u64> {
        self.blocks.iter().map(|b| b.output_elems).collect()
    }
}

impl DesignIr {
    /// Exports the dataflow graph as Graphviz DOT: one node per block
    /// (annotated with its loop nest and weight footprint), edges along
    /// the inter-layer buffers.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "digraph cnn_ir {
  rankdir=LR;
  node [shape=record];
",
        );
        let _ = writeln!(
            out,
            "  in_stream [shape=oval, label=\"AXI4-Stream in\\n{} words\"];",
            self.input_elems
        );
        for b in &self.blocks {
            let loops: Vec<String> = b
                .loops
                .iter()
                .map(|l| format!("{}:{}", l.name, l.trip))
                .collect();
            let _ = writeln!(
                out,
                "  {name} [label=\"{{{name} ({kind:?})|loops {loops}|{w} weights}}\"];",
                name = b.name,
                kind = b.kind,
                loops = loops.join(" "),
                w = b.weight_elems(),
            );
        }
        let mut prev = "in_stream".to_string();
        for b in &self.blocks {
            let _ = writeln!(out, "  {prev} -> {};", b.name);
            prev = b.name.clone();
        }
        let _ = writeln!(out, "  out [shape=oval, label=\"class index\"];");
        let _ = writeln!(out, "  {prev} -> out;");
        out.push_str(
            "}
",
        );
        out
    }
}

/// Lowers a validated network to IR. `Flatten` layers vanish (they are
/// a reinterpretation, not hardware).
pub fn lower(net: &Network) -> DesignIr {
    let mut blocks = Vec::new();
    let mut counters = [0usize; 4]; // conv, pool, linear, lsm

    let mut cur_shape = net.input_shape();
    for (i, layer) in net.layers().iter().enumerate() {
        let out_shape = net.shape_after(i);
        match layer {
            Layer::Conv2d(c) => {
                counters[0] += 1;
                let name = format!("conv{}", counters[0]);
                let k = c.kernels.kernels() as u64;
                let (kh, kw) = (c.kernels.kh() as u64, c.kernels.kw() as u64);
                let chans = c.kernels.channels() as u64;
                let mut post = OpMix {
                    add: 1,
                    ..OpMix::none()
                }; // bias
                if let Some(act) = c.activation {
                    post = post.plus(&activation_mix(act));
                }
                blocks.push(LayerBlock {
                    loops: vec![
                        LoopDim {
                            name: "k".into(),
                            trip: k,
                        },
                        LoopDim {
                            name: "oy".into(),
                            trip: out_shape.h as u64,
                        },
                        LoopDim {
                            name: "ox".into(),
                            trip: out_shape.w as u64,
                        },
                        LoopDim {
                            name: "c".into(),
                            trip: chans,
                        },
                        LoopDim {
                            name: "m".into(),
                            trip: kh,
                        },
                        LoopDim {
                            name: "n".into(),
                            trip: kw,
                        },
                    ],
                    reduction_depth: 3,
                    body: OpMix::mac(),
                    body_reads: 2,
                    post,
                    post_iters: out_shape.len() as u64,
                    weights: vec![
                        ArrayRef {
                            name: format!("{name}_w"),
                            elems: (k * chans * kh * kw),
                            kind: ArrayKind::Weights,
                            leading: k,
                        },
                        ArrayRef {
                            name: format!("{name}_b"),
                            elems: k,
                            kind: ArrayKind::Weights,
                            leading: k,
                        },
                    ],
                    output_elems: out_shape.len() as u64,
                    output_leading: k,
                    name,
                    kind: BlockKind::Conv,
                });
            }
            Layer::Pool(p) => {
                counters[1] += 1;
                let name = format!("pool{}", counters[1]);
                let body = match p.kind {
                    PoolKind::Max => OpMix {
                        cmp: 1,
                        ..OpMix::none()
                    },
                    PoolKind::Mean => OpMix {
                        add: 1,
                        ..OpMix::none()
                    },
                };
                let post = match p.kind {
                    PoolKind::Max => OpMix::none(),
                    // mean scales by 1/area once per output
                    PoolKind::Mean => OpMix {
                        mul: 1,
                        ..OpMix::none()
                    },
                };
                blocks.push(LayerBlock {
                    loops: vec![
                        LoopDim {
                            name: "c".into(),
                            trip: out_shape.c as u64,
                        },
                        LoopDim {
                            name: "oy".into(),
                            trip: out_shape.h as u64,
                        },
                        LoopDim {
                            name: "ox".into(),
                            trip: out_shape.w as u64,
                        },
                        LoopDim {
                            name: "m".into(),
                            trip: p.kh as u64,
                        },
                        LoopDim {
                            name: "n".into(),
                            trip: p.kw as u64,
                        },
                    ],
                    reduction_depth: 2,
                    body,
                    body_reads: 1,
                    post,
                    post_iters: out_shape.len() as u64,
                    weights: vec![],
                    output_elems: out_shape.len() as u64,
                    output_leading: out_shape.c as u64,
                    name,
                    kind: BlockKind::Pool,
                });
            }
            Layer::Flatten => { /* free */ }
            Layer::Linear(l) => {
                counters[2] += 1;
                let name = format!("linear{}", counters[2]);
                let mut post = OpMix {
                    add: 1,
                    ..OpMix::none()
                };
                if let Some(act) = l.activation {
                    post = post.plus(&activation_mix(act));
                }
                blocks.push(LayerBlock {
                    loops: vec![
                        LoopDim {
                            name: "j".into(),
                            trip: l.outputs as u64,
                        },
                        LoopDim {
                            name: "i".into(),
                            trip: l.inputs as u64,
                        },
                    ],
                    reduction_depth: 1,
                    body: OpMix::mac(),
                    body_reads: 2,
                    post,
                    post_iters: l.outputs as u64,
                    weights: vec![
                        ArrayRef {
                            name: format!("{name}_w"),
                            elems: (l.inputs * l.outputs) as u64,
                            kind: ArrayKind::Weights,
                            leading: l.outputs as u64,
                        },
                        ArrayRef {
                            name: format!("{name}_b"),
                            elems: l.outputs as u64,
                            kind: ArrayKind::Weights,
                            leading: l.outputs as u64,
                        },
                    ],
                    output_elems: l.outputs as u64,
                    output_leading: l.outputs as u64,
                    name,
                    kind: BlockKind::Linear,
                });
            }
            Layer::LogSoftMax => {
                counters[3] += 1;
                let k = out_shape.len() as u64;
                blocks.push(LayerBlock {
                    name: "log_softmax".into(),
                    kind: BlockKind::LogSoftMax,
                    loops: vec![LoopDim {
                        name: "k".into(),
                        trip: k,
                    }],
                    reduction_depth: 1,
                    // accumulate sum of exp
                    body: OpMix {
                        exp: 1,
                        add: 1,
                        ..OpMix::none()
                    },
                    body_reads: 1,
                    // per class: subtract log-sum (add) + argmax compare; plus
                    // the single log amortized into the epilogue mix.
                    post: OpMix {
                        add: 1,
                        cmp: 1,
                        log: 1,
                        ..OpMix::none()
                    },
                    post_iters: k,
                    weights: vec![],
                    output_elems: k,
                    output_leading: 1,
                });
            }
        }
        cur_shape = out_shape;
    }
    let _ = cur_shape;

    DesignIr {
        input_elems: net.input_shape().len() as u64,
        classes: net.classes() as u64,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    fn test4_net() -> Network {
        let mut rng = seeded_rng(2);
        Network::builder(Shape::new(3, 32, 32))
            .conv(12, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(36, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(36, Some(Activation::Tanh), &mut rng)
            .linear(10, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn test1_lowers_to_four_blocks() {
        let ir = lower(&test1_net());
        let kinds: Vec<BlockKind> = ir.blocks.iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Conv,
                BlockKind::Pool,
                BlockKind::Linear,
                BlockKind::LogSoftMax
            ]
        );
        assert_eq!(ir.input_elems, 256);
        assert_eq!(ir.classes, 10);
    }

    #[test]
    fn conv_block_iteration_count_is_mac_count() {
        let ir = lower(&test1_net());
        let conv = &ir.blocks[0];
        // 6 * 12 * 12 * 1 * 5 * 5 = 21600 MACs (matches conv2d_macs)
        assert_eq!(conv.total_iters(), 21_600);
        assert_eq!(conv.body, OpMix::mac());
        assert_eq!(conv.output_elems, 6 * 12 * 12);
        assert_eq!(conv.weight_elems(), 150 + 6);
    }

    #[test]
    fn conv_split_separates_reduction() {
        let ir = lower(&test1_net());
        let (outer, inner) = ir.blocks[0].split_iters();
        assert_eq!(outer, 6 * 12 * 12);
        assert_eq!(inner, 25); // 1 ch x 5 x 5
    }

    #[test]
    fn linear_block_shapes() {
        let ir = lower(&test1_net());
        let lin = &ir.blocks[2];
        assert_eq!(lin.total_iters(), 216 * 10);
        assert_eq!(lin.weight_elems(), 2160 + 10);
        let (outer, inner) = lin.split_iters();
        assert_eq!(outer, 10);
        assert_eq!(inner, 216);
        // tanh epilogue present: 2 exp per output
        assert_eq!(lin.post.exp, 2);
    }

    #[test]
    fn pool_block_uses_comparisons() {
        let ir = lower(&test1_net());
        let pool = &ir.blocks[1];
        assert_eq!(pool.body.cmp, 1);
        assert_eq!(pool.body.mul, 0);
        assert_eq!(pool.total_iters(), 6 * 6 * 6 * 4);
    }

    #[test]
    fn flatten_emits_no_block() {
        let ir = lower(&test1_net());
        assert!(ir.blocks.iter().all(|b| b.name != "flatten"));
        assert_eq!(ir.blocks.len(), 4);
    }

    #[test]
    fn test4_block_names_are_numbered() {
        let ir = lower(&test4_net());
        let names: Vec<&str> = ir.blocks.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "conv1",
                "pool1",
                "conv2",
                "pool2",
                "linear1",
                "linear2",
                "log_softmax"
            ]
        );
    }

    #[test]
    fn test4_total_weights_match_network_params() {
        let net = test4_net();
        let ir = lower(&net);
        assert_eq!(ir.total_weight_elems(), net.param_count() as u64);
    }

    #[test]
    fn test4_conv2_macs() {
        let ir = lower(&test4_net());
        let conv2 = ir.blocks.iter().find(|b| b.name == "conv2").unwrap();
        // 36 * 10 * 10 * 12 * 5 * 5 = 1,080,000
        assert_eq!(conv2.total_iters(), 1_080_000);
    }

    #[test]
    fn total_ops_includes_epilogue() {
        let ir = lower(&test1_net());
        let lin = &ir.blocks[2];
        let ops = lin.total_ops();
        assert_eq!(ops.mul, 2160);
        // 2160 reduction adds + 10 bias adds + 10*2 tanh adds
        assert_eq!(ops.add, 2160 + 10 + 20);
        assert_eq!(ops.exp, 20);
        assert_eq!(ops.div, 10);
    }

    #[test]
    fn mean_pool_lowers_with_adds() {
        let mut rng = seeded_rng(3);
        let net = Network::builder(Shape::new(1, 8, 8))
            .conv(2, 3, 3, &mut rng)
            .pool(PoolKind::Mean, 2, 2)
            .build()
            .unwrap();
        let ir = lower(&net);
        let pool = &ir.blocks[1];
        assert_eq!(pool.body.add, 1);
        assert_eq!(pool.body.cmp, 0);
        assert_eq!(pool.post.mul, 1);
    }

    #[test]
    fn buffer_elems_follow_blocks() {
        let ir = lower(&test1_net());
        assert_eq!(ir.buffer_elems(), vec![864, 216, 10, 10]);
    }

    #[test]
    fn dot_export_contains_all_blocks_in_order() {
        let ir = lower(&test1_net());
        let dot = ir.to_dot();
        assert!(dot.starts_with("digraph"));
        for b in &ir.blocks {
            assert!(dot.contains(&b.name), "missing {}", b.name);
        }
        assert!(dot.contains("in_stream -> conv1;"));
        assert!(dot.contains("conv1 -> pool1;"));
        assert!(dot.contains("log_softmax -> out;"));
        assert!(dot.contains("156 weights"));
    }

    #[test]
    fn ir_serde_roundtrip() {
        let ir = lower(&test1_net());
        let json = serde_json::to_string(&ir).unwrap();
        let back: DesignIr = serde_json::from_str(&json).unwrap();
        assert_eq!(ir, back);
    }
}
