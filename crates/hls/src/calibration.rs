//! Model calibration constants, collected in one place.
//!
//! The scheduler and binder are analytic models of what Vivado HLS
//! 2015.2 reports for this class of design on a Zynq-7020 at 100 MHz.
//! Their free parameters are fixed here, with the rationale for each.
//! Nothing else in the crate hard-codes a tuning constant.

/// Fabric clock frequency the paper synthesizes at (Section II cites
/// 100 MHz-class designs; the block design uses the default FCLK).
pub const FABRIC_CLOCK_HZ: u64 = 100_000_000;

/// Cycles of control overhead per loop iteration in an unpipelined
/// schedule (index increment, bound compare, state transition).
pub const LOOP_ITER_OVERHEAD: u64 = 1;

/// Cycles to enter/exit one block (function-call protocol, FSM
/// prologue/epilogue).
pub const BLOCK_OVERHEAD: u64 = 12;

/// Extra pipeline fill depth beyond the body's chained latency when a
/// loop is pipelined (operand fetch + write-back stages).
pub const PIPELINE_EXTRA_DEPTH: u64 = 4;

/// Initiation interval floor imposed by a floating-point accumulation
/// recurrence after Vivado's partial-sum rewriting. A raw dependence
/// on the 7-cycle adder would force II = 7; the tool's 4-way partial
/// sums bring the achieved II to 2 at this clock, which is also what
/// reproduces the paper's optimized latencies (Tests 2–4).
pub const II_REDUCTION: u64 = 2;

/// Dual-port BRAM: reads available per cycle per array.
pub const BRAM_PORTS: u32 = 2;

/// AXI4-Stream/DMA: words transferred per fabric cycle in the steady
/// state (32-bit stream, one beat per cycle).
pub const STREAM_WORDS_PER_CYCLE: u64 = 1;

/// Fixed DMA setup cycles per transfer (descriptor fetch, handshake).
pub const DMA_SETUP_CYCLES: u64 = 220;

/// Partial-sum lanes the pipelined reduction instantiates (the
/// rewriting that achieves [`II_REDUCTION`] duplicates the MAC
/// operators this many times). Matches the paper's +5-DSP step from
/// Test 1 to Test 2 — exactly one extra fmul (3) + fadd (2).
pub const PIPELINE_MAC_LANES: u64 = 2;

// ---------------------------------------------------------------------------
// Resource-model constants (bind.rs)
// ---------------------------------------------------------------------------

/// Base control overhead of the IP core: AXI-Stream adapters, the
/// top-level FSM, int/float converters. FF/LUT from the interface
/// wrappers the framework generates around the DMA (Section IV-B).
pub const BASE_FF: u32 = 1_800;
/// See [`BASE_FF`].
pub const BASE_LUT: u32 = 500;
/// DSPs in the fixed tail: the int conversion and address arithmetic
/// of the streaming interface.
pub const BASE_DSP: u32 = 2;

/// FSM state cost in flip-flops per schedule state in an unpipelined
/// block (one-hot state register plus per-level iteration counters;
/// scaled by loop-nest depth in the binder). This is why the *naive*
/// design uses more FFs than the pipelined one — the paper's Table II
/// shows FF dropping from 15.86% to 8.86% after optimization.
pub const FF_PER_FSM_STATE: u32 = 26;

/// Flip-flops of centralized buffer-crossbar registering per block when
/// DATAFLOW is off (one shared memory interconnect serves every block).
pub const XBAR_FF_PER_BLOCK: u32 = 600;

/// One-time LUT cost of enabling pipelining anywhere in the design:
/// the II-matched floating-point operator configurations trade DSP
/// register stages for LUT-based alignment/bypass networks. This is
/// the Table II LUT jump from 2.56% (naive) to 17.18% (pipelined).
pub const PIPELINE_GLOBAL_LUT: u32 = 6_200;

/// Additional LUT steering/forwarding per pipelined block.
pub const PIPELINE_BLOCK_LUT: u32 = 400;

/// LUTs per FSM state in an unpipelined block (next-state logic).
pub const LUT_PER_FSM_STATE: u32 = 1;

/// LUTRAM bits available per memory-LUT.
pub const LUTRAM_BITS_PER_LUT: u32 = 64;

/// Fixed memory-LUT overhead: stream FIFOs and interface skid buffers.
pub const BASE_LUTRAM: u32 = 350;

/// Fixed BRAM18 overhead: AXI-DMA data FIFOs on both stream directions.
pub const BASE_BRAM18: u32 = 4;

/// Arrays at or below this bit count bind to LUTRAM instead of BRAM
/// (Vivado's small-array threshold).
pub const LUTRAM_THRESHOLD_BITS: u64 = 1024;

/// Pipelining partitions the innermost weight dimension into
/// registers/LUTRAM shadow copies to feed the II=2 datapath; this is
/// the LUTRAM each pipelined block adds per reduction lane.
pub const LUTRAM_PER_PIPELINED_LANE: u32 = 18;

/// Bits per BRAM18K primitive.
pub const BRAM18_BITS: u64 = 18 * 1024;

/// When DATAFLOW is on, inter-block buffers are ping-pong pairs
/// (double-buffered), doubling their BRAM footprint.
pub const DATAFLOW_BUFFER_FACTOR: u64 = 2;

// ---------------------------------------------------------------------------
// Transport fault-recovery constants (cnn-fpga::dma_regs / ::fault)
// ---------------------------------------------------------------------------

/// Fabric cycles the PS-side driver polls a DMASR before declaring a
/// stalled channel dead (the bounded completion wait; at 100 MHz this
/// is a 100 µs timeout, generous next to the ~2.5 µs Test-1 packet).
pub const DMA_TIMEOUT_CYCLES: u64 = 10_000;

/// Cycles to soft-reset both DMA channels and re-arm run/IRQ-enable
/// after a fault (the Xilinx recovery sequence: DMACR.Reset, wait for
/// self-clear, reprogram control registers).
pub const DMA_RESET_CYCLES: u64 = 500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_100mhz() {
        assert_eq!(FABRIC_CLOCK_HZ, 100_000_000);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn reduction_ii_between_1_and_adder_latency() {
        assert!(II_REDUCTION >= 1);
        assert!(II_REDUCTION <= crate::operators::FpOp::Add.cost().latency as u64);
    }

    #[test]
    fn bram18_is_18kbit() {
        assert_eq!(BRAM18_BITS, 18_432);
    }
}
