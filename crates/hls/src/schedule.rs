//! The scheduler: per-block and per-design latency in fabric cycles.
//!
//! ## Model
//!
//! * **Unpipelined** loop nest: every innermost iteration pays the
//!   body's chained operator latency plus one cycle of loop control;
//!   the per-output epilogue likewise; a block pays a fixed
//!   entry/exit overhead.
//! * **`HLS PIPELINE`** on the reduction: the loops at and below the
//!   reduction boundary flatten into a pipeline that initiates a new
//!   iteration every II cycles, where II is the larger of the
//!   accumulation-recurrence floor
//!   ([`calibration::II_REDUCTION`](crate::calibration::II_REDUCTION)) and
//!   the memory-port constraint (`ceil(reads / ports)`). Each visit of
//!   the pipelined region pays the fill depth once. The epilogue of a
//!   pipelined block is itself pipelined at II = 1.
//! * **`HLS DATAFLOW`**: blocks become stages of a task pipeline; the
//!   per-image *latency* is still the sum of stages, but the
//!   steady-state *interval* (one classification completes every
//!   `interval` cycles) is the maximum stage, which is what governs
//!   the paper's 1000/10000-image batch runtimes.
//! * **I/O**: each image pays a DMA setup plus one cycle per streamed
//!   word ([`calibration::DMA_SETUP_CYCLES`](crate::calibration::DMA_SETUP_CYCLES),
//!   one word/cycle).

use crate::calibration as cal;
use crate::directives::DirectiveSet;
use crate::ir::{DesignIr, LayerBlock};
use crate::operators::{FpOp, OpMix};
use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Chained latency of an operator mix under a given precision.
fn mix_latency(mix: &OpMix, precision: Precision) -> u64 {
    FpOp::ALL
        .iter()
        .map(|&op| mix.count(op) * precision.op_cost(op).latency as u64)
        .sum()
}

/// Schedule of one block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSchedule {
    /// Block name (matches the IR).
    pub name: String,
    /// Whether the reduction was pipelined.
    pub pipelined: bool,
    /// Achieved initiation interval (1 when not pipelined — unused).
    pub ii: u64,
    /// Block latency in cycles per image.
    pub cycles: u64,
}

/// Schedule of the whole design.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSchedule {
    /// Per-block schedules, in dataflow order.
    pub blocks: Vec<BlockSchedule>,
    /// Whether task-level pipelining (DATAFLOW) is active.
    pub dataflow: bool,
    /// Cycles to stream one image in and the class index out.
    pub io_cycles: u64,
    /// Per-image latency (input arrival → class index).
    pub latency_cycles: u64,
    /// Steady-state cycles between completed classifications.
    pub interval_cycles: u64,
}

impl DesignSchedule {
    /// Total cycles to classify `n` images back-to-back.
    pub fn cycles_for_images(&self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        if self.dataflow {
            self.latency_cycles + (n - 1) * self.interval_cycles
        } else {
            n * self.latency_cycles
        }
    }

    /// Wall-clock seconds for `n` images at the fabric clock.
    pub fn seconds_for_images(&self, n: u64) -> f64 {
        self.cycles_for_images(n) as f64 / cal::FABRIC_CLOCK_HZ as f64
    }
}

/// Achieved initiation interval for a pipelined block at f32.
pub fn achieved_ii(block: &LayerBlock) -> u64 {
    achieved_ii_with(block, Precision::Float32)
}

/// Achieved initiation interval under a given precision.
pub fn achieved_ii_with(block: &LayerBlock, precision: Precision) -> u64 {
    let dependence_ii = if block.body.add > 0 {
        precision.reduction_ii()
    } else {
        1
    };
    let port_ii = block.body_reads.div_ceil(cal::BRAM_PORTS) as u64;
    dependence_ii.max(port_ii).max(1)
}

/// Schedules one block under the given directive set (f32 datapath).
pub fn schedule_block(block: &LayerBlock, directives: &DirectiveSet) -> BlockSchedule {
    schedule_block_with(block, directives, Precision::Float32)
}

/// Schedules one block under a directive set and datapath precision.
pub fn schedule_block_with(
    block: &LayerBlock,
    directives: &DirectiveSet,
    precision: Precision,
) -> BlockSchedule {
    let pipelined = directives.pipelines(block.kind);
    let body_latency = mix_latency(&block.body, precision);
    let post_latency = mix_latency(&block.post, precision);
    let cycles = if pipelined {
        let (outer, inner) = block.split_iters();
        let ii = achieved_ii_with(block, precision);
        let depth = body_latency + cal::PIPELINE_EXTRA_DEPTH;
        // HLS UNROLL on the reduction: `factor` elements issue per
        // initiation, shortening the flattened trip count (conv only).
        let factor = if block.kind == crate::ir::BlockKind::Conv {
            directives.unroll_factor.max(1) as u64
        } else {
            1
        };
        let inner = inner.div_ceil(factor);
        let main = outer * (depth + ii * inner.saturating_sub(1));
        // Epilogue pipelines at II = 1 alongside.
        let post = if block.post_iters > 0 && block.post.total() > 0 {
            post_latency + cal::PIPELINE_EXTRA_DEPTH + block.post_iters.saturating_sub(1)
        } else {
            0
        };
        main + post + cal::BLOCK_OVERHEAD
    } else {
        let body = block.total_iters() * (body_latency + cal::LOOP_ITER_OVERHEAD);
        let post = if block.post.total() > 0 {
            block.post_iters * (post_latency + cal::LOOP_ITER_OVERHEAD)
        } else {
            0
        };
        body + post + cal::BLOCK_OVERHEAD
    };
    BlockSchedule {
        name: block.name.clone(),
        pipelined,
        ii: if pipelined {
            achieved_ii_with(block, precision)
        } else {
            1
        },
        cycles,
    }
}

/// Schedules the whole design (f32 datapath).
pub fn schedule(ir: &DesignIr, directives: &DirectiveSet) -> DesignSchedule {
    schedule_with(ir, directives, Precision::Float32)
}

/// Schedules the whole design under a datapath precision.
pub fn schedule_with(
    ir: &DesignIr,
    directives: &DirectiveSet,
    precision: Precision,
) -> DesignSchedule {
    let blocks: Vec<BlockSchedule> = ir
        .blocks
        .iter()
        .map(|b| schedule_block_with(b, directives, precision))
        .collect();
    let io_cycles = cal::DMA_SETUP_CYCLES + ir.input_elems / cal::STREAM_WORDS_PER_CYCLE + 1;
    let compute: u64 = blocks.iter().map(|b| b.cycles).sum();
    let latency_cycles = io_cycles + compute;
    let interval_cycles = if directives.dataflow {
        blocks
            .iter()
            .map(|b| b.cycles)
            .max()
            .unwrap_or(0)
            .max(io_cycles)
    } else {
        latency_cycles
    };
    DesignSchedule {
        blocks,
        dataflow: directives.dataflow,
        io_cycles,
        latency_cycles,
        interval_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use cnn_nn::Network;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_ir() -> DesignIr {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        lower(&net)
    }

    fn test4_ir() -> DesignIr {
        let mut rng = seeded_rng(2);
        let net = Network::builder(Shape::new(3, 32, 32))
            .conv(12, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .conv(36, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(36, Some(Activation::Tanh), &mut rng)
            .linear(10, None, &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        lower(&net)
    }

    #[test]
    fn naive_schedule_is_sum_of_blocks() {
        let ir = test1_ir();
        let s = schedule(&ir, &DirectiveSet::naive());
        assert!(!s.dataflow);
        assert_eq!(s.interval_cycles, s.latency_cycles);
        let sum: u64 = s.blocks.iter().map(|b| b.cycles).sum();
        assert_eq!(s.latency_cycles, s.io_cycles + sum);
    }

    #[test]
    fn naive_test1_latency_in_paper_band() {
        // Paper Test 1: 2.8 s for 1000 images → 2.8 ms/image at 100 MHz
        // = 280k cycles. Our model should land within ±25%.
        let ir = test1_ir();
        let s = schedule(&ir, &DirectiveSet::naive());
        let secs = s.seconds_for_images(1000);
        assert!(
            (2.1..=3.5).contains(&secs),
            "naive Test-1 runtime {secs:.2}s outside the paper band (2.8s ±25%)"
        );
    }

    #[test]
    fn optimized_test1_latency_in_paper_band() {
        // Paper Test 2: 0.53 s for 1000 images.
        let ir = test1_ir();
        let s = schedule(&ir, &DirectiveSet::optimized());
        let secs = s.seconds_for_images(1000);
        assert!(
            (0.40..=0.70).contains(&secs),
            "optimized Test-2 runtime {secs:.2}s outside the paper band (0.53s ±25%)"
        );
    }

    #[test]
    fn optimized_test4_latency_in_paper_band() {
        // Paper Test 4: 223 s for 10000 images.
        let ir = test4_ir();
        let s = schedule(&ir, &DirectiveSet::optimized());
        let secs = s.seconds_for_images(10_000);
        assert!(
            (170.0..=280.0).contains(&secs),
            "optimized Test-4 runtime {secs:.1}s outside the paper band (223s ±25%)"
        );
    }

    #[test]
    fn pipelining_reduces_conv_latency_substantially() {
        let ir = test1_ir();
        let naive = schedule(&ir, &DirectiveSet::naive());
        let opt = schedule(&ir, &DirectiveSet::optimized());
        let conv_naive = naive.blocks.iter().find(|b| b.name == "conv1").unwrap();
        let conv_opt = opt.blocks.iter().find(|b| b.name == "conv1").unwrap();
        assert!(conv_opt.pipelined && !conv_naive.pipelined);
        assert!(
            conv_naive.cycles > 3 * conv_opt.cycles,
            "pipelining gain too small: {} vs {}",
            conv_naive.cycles,
            conv_opt.cycles
        );
    }

    #[test]
    fn dataflow_interval_is_max_stage() {
        let ir = test1_ir();
        let s = schedule(&ir, &DirectiveSet::optimized());
        let max_stage = s.blocks.iter().map(|b| b.cycles).max().unwrap();
        assert_eq!(s.interval_cycles, max_stage.max(s.io_cycles));
        assert!(s.interval_cycles < s.latency_cycles);
    }

    #[test]
    fn cycles_for_images_formulas() {
        let ir = test1_ir();
        let naive = schedule(&ir, &DirectiveSet::naive());
        assert_eq!(naive.cycles_for_images(0), 0);
        assert_eq!(naive.cycles_for_images(5), 5 * naive.latency_cycles);
        let opt = schedule(&ir, &DirectiveSet::optimized());
        assert_eq!(
            opt.cycles_for_images(5),
            opt.latency_cycles + 4 * opt.interval_cycles
        );
    }

    #[test]
    fn achieved_ii_respects_ports_and_recurrence() {
        let ir = test1_ir();
        let conv = &ir.blocks[0];
        // conv: 2 reads / 2 ports = 1; recurrence floor 2 → II = 2.
        assert_eq!(achieved_ii(conv), 2);
        let pool = &ir.blocks[1];
        // pool: pure comparisons, one read → II = 1.
        assert_eq!(achieved_ii(pool), 1);
    }

    #[test]
    fn io_cycles_scale_with_input() {
        let i1 = test1_ir(); // 256 words
        let i4 = test4_ir(); // 3072 words
        let s1 = schedule(&i1, &DirectiveSet::naive());
        let s4 = schedule(&i4, &DirectiveSet::naive());
        assert!(s4.io_cycles > s1.io_cycles);
        assert_eq!(s4.io_cycles - s1.io_cycles, (3072 - 256));
    }

    #[test]
    fn speedup_naive_to_optimized_matches_paper_shape() {
        // Paper: Test 2 vs Test 1 hardware = 2.8 / 0.53 ≈ 5.3×.
        let ir = test1_ir();
        let naive = schedule(&ir, &DirectiveSet::naive());
        let opt = schedule(&ir, &DirectiveSet::optimized());
        let speedup = naive.cycles_for_images(1000) as f64 / opt.cycles_for_images(1000) as f64;
        assert!(
            (3.5..=8.0).contains(&speedup),
            "naive→optimized speedup {speedup:.2} outside 5.3× ± band"
        );
    }

    #[test]
    fn aggressive_is_at_least_as_fast_as_optimized() {
        let ir = test4_ir();
        let opt = schedule(&ir, &DirectiveSet::optimized());
        let agg = schedule(&ir, &DirectiveSet::aggressive());
        assert!(agg.cycles_for_images(100) <= opt.cycles_for_images(100));
    }

    #[test]
    fn unroll_shortens_conv_interval_proportionally() {
        let ir = test1_ir();
        let base = schedule(&ir, &DirectiveSet::optimized());
        let u4 = schedule(&ir, &DirectiveSet::optimized_unrolled(4));
        let conv_base = base.blocks.iter().find(|b| b.name == "conv1").unwrap();
        let conv_u4 = u4.blocks.iter().find(|b| b.name == "conv1").unwrap();
        // Pipeline fill depth caps the gain below the ideal 4x on a
        // 25-element reduction; >2x is the model's expectation.
        assert!(
            conv_u4.cycles * 2 < conv_base.cycles,
            "unroll 4 should cut the conv latency >2x: {} vs {}",
            conv_u4.cycles,
            conv_base.cycles
        );
        // Non-conv stages are untouched.
        let lin_base = base.blocks.iter().find(|b| b.name == "linear1").unwrap();
        let lin_u4 = u4.blocks.iter().find(|b| b.name == "linear1").unwrap();
        assert_eq!(lin_base.cycles, lin_u4.cycles);
    }

    #[test]
    fn schedule_is_deterministic() {
        let ir = test4_ir();
        assert_eq!(
            schedule(&ir, &DirectiveSet::optimized()),
            schedule(&ir, &DirectiveSet::optimized())
        );
    }
}
