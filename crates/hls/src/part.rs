//! Target FPGA parts: the two Zynq-7000 devices the paper's framework
//! supports (Zedboard's XC7Z020 and Zybo's XC7Z010).

use serde::Serialize;

/// Resource capacities of a Zynq-7000 programmable-logic part.
///
/// Capacities match Table II's headers for the Zedboard
/// (FF 106400, LUT 53200, memory-LUT 17400, BRAM 140, DSP 220).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct FpgaPart {
    /// Marketing/part name, e.g. `xc7z020clg484-1`.
    pub name: &'static str,
    /// Flip-flops.
    pub ff: u32,
    /// Look-up tables.
    pub lut: u32,
    /// LUTs usable as distributed memory (LUTRAM).
    pub lutram: u32,
    /// 36 Kbit block RAMs.
    pub bram36: u32,
    /// DSP48E1 slices.
    pub dsp: u32,
}

impl FpgaPart {
    /// Zedboard's part (Zynq-7020), the paper's evaluation platform.
    pub const fn zynq7020() -> FpgaPart {
        FpgaPart {
            name: "xc7z020clg484-1",
            ff: 106_400,
            lut: 53_200,
            lutram: 17_400,
            bram36: 140,
            dsp: 220,
        }
    }

    /// Zybo's part (Zynq-7010), the framework's other supported board.
    pub const fn zynq7010() -> FpgaPart {
        FpgaPart {
            name: "xc7z010clg400-1",
            ff: 35_200,
            lut: 17_600,
            lutram: 6_000,
            bram36: 60,
            dsp: 80,
        }
    }

    /// Virtex-7 (XC7VX485T, the VC707 evaluation part) — the paper's
    /// named future-work target ("we plan to extend it also to other
    /// boards like Xilinx Virtex-7"). No hardwired ARM: designs for it
    /// are synthesized standalone.
    pub const fn virtex7() -> FpgaPart {
        FpgaPart {
            name: "xc7vx485tffg1761-2",
            ff: 607_200,
            lut: 303_600,
            lutram: 130_800,
            bram36: 1_030,
            dsp: 2_800,
        }
    }

    /// Looks a part up by board name as the GUI's board selector does.
    pub fn for_board(board: &str) -> Option<FpgaPart> {
        match board.to_ascii_lowercase().as_str() {
            "zedboard" => Some(Self::zynq7020()),
            "zybo" => Some(Self::zynq7010()),
            "vc707" | "virtex7" => Some(Self::virtex7()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zedboard_capacities_match_table2_headers() {
        let p = FpgaPart::zynq7020();
        assert_eq!(p.ff, 106_400);
        assert_eq!(p.lut, 53_200);
        assert_eq!(p.lutram, 17_400);
        assert_eq!(p.bram36, 140);
        assert_eq!(p.dsp, 220);
    }

    #[test]
    fn zybo_is_strictly_smaller() {
        let zed = FpgaPart::zynq7020();
        let zybo = FpgaPart::zynq7010();
        assert!(zybo.ff < zed.ff);
        assert!(zybo.lut < zed.lut);
        assert!(zybo.bram36 < zed.bram36);
        assert!(zybo.dsp < zed.dsp);
    }

    #[test]
    fn board_lookup() {
        assert_eq!(FpgaPart::for_board("Zedboard"), Some(FpgaPart::zynq7020()));
        assert_eq!(FpgaPart::for_board("zybo"), Some(FpgaPart::zynq7010()));
        assert_eq!(FpgaPart::for_board("vc707"), Some(FpgaPart::virtex7()));
        assert_eq!(FpgaPart::for_board("kintex"), None);
    }

    #[test]
    fn virtex7_dwarfs_the_zynq_parts() {
        let v7 = FpgaPart::virtex7();
        let zed = FpgaPart::zynq7020();
        assert!(v7.dsp > 10 * zed.dsp);
        assert!(v7.bram36 > 7 * zed.bram36);
    }
}
