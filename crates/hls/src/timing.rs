//! Timing closure — the dimension the paper fixes by fiat (a 10 ns
//! clock) and Vivado checks for real: what clock can each design
//! actually close at, and what throughput would the Zynq's discrete
//! FCLK options buy?
//!
//! ## Model
//!
//! Every instantiated operator is a pipelined 7-series core with a
//! documented maximum frequency; registers between operators mean the
//! *pipelined* datapath closes at the slowest core's Fmax. The naive
//! (unpipelined) datapath chains operators combinationally inside a
//! schedule state, dividing the achievable clock by the chain depth's
//! longest unregistered segment — modelled here as the body's worst
//! single-operator delay times a routing factor.

use crate::directives::DirectiveSet;
use crate::ir::DesignIr;
use crate::operators::FpOp;
use crate::precision::Precision;
use serde::Serialize;

/// Maximum frequency (MHz) of one pipelined operator core on a
/// Zynq-7000 speed-grade-1 part.
pub fn core_fmax_mhz(op: FpOp, precision: Precision) -> f64 {
    match precision {
        Precision::Float32 => match op {
            FpOp::Mul => 317.0,
            FpOp::Add => 344.0,
            FpOp::Cmp => 410.0,
            FpOp::Exp => 255.0,
            FpOp::Log => 245.0,
            FpOp::Div => 230.0,
        },
        // Fixed-point datapaths close much higher (DSP48 native).
        Precision::Fixed { total_bits, .. } => {
            let wide_penalty = if total_bits > 18 { 0.85 } else { 1.0 };
            (match op {
                FpOp::Mul => 460.0,
                FpOp::Add => 520.0,
                FpOp::Cmp => 520.0,
                FpOp::Exp => 380.0,
                FpOp::Log => 380.0,
                FpOp::Div => 320.0,
            }) * wide_penalty
        }
        // Int8 is the narrowest datapath of all: single-cycle 8×8
        // multiplies and table-driven transcendentals close at the
        // DSP48/BRAM native ceiling.
        Precision::Int8 => match op {
            FpOp::Mul => 464.0,
            FpOp::Add => 520.0,
            FpOp::Cmp => 540.0,
            FpOp::Exp => 450.0,
            FpOp::Log => 450.0,
            FpOp::Div => 340.0,
        },
    }
}

/// Routing/fanout derate applied on top of core Fmax for a full design.
const ROUTING_DERATE: f64 = 0.85;

/// The discrete FCLK frequencies the Zynq PS can generate for the
/// fabric from its IO PLL (MHz).
pub const ZYNQ_FCLK_OPTIONS_MHZ: [f64; 5] = [50.0, 100.0, 142.86, 166.67, 200.0];

/// Timing analysis of one build.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct TimingReport {
    /// Estimated maximum closable frequency, MHz.
    pub fmax_mhz: f64,
    /// The fastest supported FCLK at or below Fmax, MHz.
    pub best_fclk_mhz: f64,
    /// Throughput gain over the paper's 100 MHz baseline when clocked
    /// at `best_fclk_mhz` (cycles are frequency-independent).
    pub speedup_vs_100mhz: f64,
    /// Whether the design closes at the paper's 100 MHz.
    pub closes_at_100mhz: bool,
}

/// Which operators a design instantiates (any count > 0 anywhere).
fn used_ops(ir: &DesignIr) -> Vec<FpOp> {
    FpOp::ALL
        .iter()
        .copied()
        .filter(|&op| {
            ir.blocks
                .iter()
                .any(|b| b.body.count(op) + b.post.count(op) > 0)
        })
        .collect()
}

/// Estimates the design's Fmax under a directive set and precision.
pub fn fmax_mhz(ir: &DesignIr, directives: &DirectiveSet, precision: Precision) -> f64 {
    let ops = used_ops(ir);
    assert!(!ops.is_empty(), "design uses no operators");
    let slowest_core = ops
        .iter()
        .map(|&op| core_fmax_mhz(op, precision))
        .fold(f64::INFINITY, f64::min);

    let any_pipelined = ir.blocks.iter().any(|b| directives.pipelines(b.kind));
    let derated = slowest_core * ROUTING_DERATE;
    if any_pipelined {
        // Registered datapath: slowest core limits.
        derated
    } else {
        // Naive schedule: Vivado still registers between FSM states,
        // but the wider multiplexed datapath costs extra slack.
        derated * 0.9
    }
}

/// Fastest supported FCLK at or below `fmax`.
pub fn best_fclk_mhz(fmax: f64) -> f64 {
    ZYNQ_FCLK_OPTIONS_MHZ
        .iter()
        .copied()
        .filter(|&f| f <= fmax)
        .fold(ZYNQ_FCLK_OPTIONS_MHZ[0], f64::max)
}

/// Full timing report for a design.
pub fn analyze(ir: &DesignIr, directives: &DirectiveSet, precision: Precision) -> TimingReport {
    let fmax = fmax_mhz(ir, directives, precision);
    let best = best_fclk_mhz(fmax);
    TimingReport {
        fmax_mhz: fmax,
        best_fclk_mhz: best,
        speedup_vs_100mhz: best / 100.0,
        closes_at_100mhz: fmax >= 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use cnn_nn::Network;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_ir() -> DesignIr {
        let mut rng = seeded_rng(1);
        let net = Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap();
        lower(&net)
    }

    #[test]
    fn paper_designs_close_at_100mhz() {
        // The paper's 10 ns clock must be feasible in the model, or
        // the whole reproduction story would be inconsistent.
        let ir = test1_ir();
        for ds in [DirectiveSet::naive(), DirectiveSet::optimized()] {
            let r = analyze(&ir, &ds, Precision::Float32);
            assert!(r.closes_at_100mhz, "{r:?}");
            assert!(r.fmax_mhz > 100.0);
        }
    }

    #[test]
    fn transcendentals_limit_float_fmax() {
        let ir = test1_ir();
        let fmax = fmax_mhz(&ir, &DirectiveSet::optimized(), Precision::Float32);
        // The slowest used core is fdiv (230 MHz) from the tanh.
        let expect = 230.0 * ROUTING_DERATE;
        assert!((fmax - expect).abs() < 1e-9, "{fmax} vs {expect}");
    }

    #[test]
    fn fixed_point_closes_faster() {
        let ir = test1_ir();
        let f = fmax_mhz(&ir, &DirectiveSet::optimized(), Precision::Float32);
        let q = fmax_mhz(&ir, &DirectiveSet::optimized(), Precision::q8_8());
        assert!(q > 1.3 * f, "fixed {q} vs float {f}");
    }

    #[test]
    fn best_fclk_snaps_down_to_supported_options() {
        assert_eq!(best_fclk_mhz(199.0), 166.67);
        assert_eq!(best_fclk_mhz(200.0), 200.0);
        assert_eq!(best_fclk_mhz(143.0), 142.86);
        assert_eq!(best_fclk_mhz(60.0), 50.0);
        // Below every option: clamps to the lowest.
        assert_eq!(best_fclk_mhz(10.0), 50.0);
    }

    #[test]
    fn headroom_above_the_papers_clock() {
        // The paper left frequency on the table: the optimized float
        // design closes comfortably above 100 MHz, and the report
        // quantifies the free speedup.
        let ir = test1_ir();
        let r = analyze(&ir, &DirectiveSet::optimized(), Precision::Float32);
        assert!(r.best_fclk_mhz >= 142.86, "{r:?}");
        assert!(r.speedup_vs_100mhz > 1.4);
    }

    #[test]
    fn naive_closes_no_faster_than_pipelined() {
        let ir = test1_ir();
        let n = fmax_mhz(&ir, &DirectiveSet::naive(), Precision::Float32);
        let p = fmax_mhz(&ir, &DirectiveSet::optimized(), Precision::Float32);
        assert!(n <= p);
    }
}
