#![warn(missing_docs)]

//! # cnn-hls
//!
//! The high-level-synthesis substrate of the reproduction: everything
//! the paper delegates to **Vivado HLS** is implemented here.
//!
//! Given a trained [`cnn_nn::Network`], this crate:
//!
//! 1. lowers each layer to a **loop-nest IR** ([`ir`]) — trip counts
//!    straight from Eqs. (2)–(5), bodies expressed as floating-point
//!    operator mixes,
//! 2. applies **directives** ([`directives`]) — `HLS DATAFLOW` and
//!    `HLS PIPELINE`, exactly the two the paper's optimized builds use,
//! 3. **schedules** the design ([`schedule`]) — computing per-layer and
//!    per-image latency in fabric clock cycles at the target frequency,
//! 4. **binds** operators and arrays to FPGA resources ([`bind`]) —
//!    DSP slices, BRAM18K blocks, LUT/LUTRAM/FF estimates against a
//!    concrete Zynq-7000 part ([`part::FpgaPart`]),
//! 5. emits the **artifacts** the paper's framework returns to the user
//!    ([`codegen`]): a single synthesizable C++ file with hard-coded
//!    weights, and the three tcl scripts (`cnn_vivado_hls.tcl`,
//!    `directives.tcl`, `cnn_vivado.tcl`).
//!
//! The scheduler and binder are *models*, not gate-level truth: their
//! constants (documented in [`calibration`]) are calibrated against the
//! 7-series floating-point operator characterization and the paper's
//! Tables I–II, and the claim they support is the paper's qualitative
//! one — who wins, by what rough factor, and where the resource
//! bottlenecks appear.
//!
//! ```
//! use cnn_hls::prelude::*;
//! use cnn_nn::Network;
//! use cnn_tensor::Shape;
//! use cnn_tensor::ops::pool::PoolKind;
//! use cnn_tensor::ops::activation::Activation;
//!
//! let mut rng = cnn_tensor::init::seeded_rng(1);
//! let net = Network::builder(Shape::new(1, 16, 16))
//!     .conv(6, 5, 5, &mut rng)
//!     .pool(PoolKind::Max, 2, 2)
//!     .flatten()
//!     .linear(10, Some(Activation::Tanh), &mut rng)
//!     .log_softmax()
//!     .build()
//!     .unwrap();
//!
//! let naive = HlsProject::new(&net, DirectiveSet::naive(), FpgaPart::zynq7020()).unwrap();
//! let opt = HlsProject::new(&net, DirectiveSet::optimized(), FpgaPart::zynq7020()).unwrap();
//! let (rn, ro) = (naive.report(), opt.report());
//! assert!(ro.interval_cycles < rn.interval_cycles, "pipelining must help");
//! ```

pub mod bind;
pub mod calibration;
pub mod codegen;
pub mod directives;
pub mod dse;
pub mod ir;
pub mod operators;
pub mod part;
pub mod precision;
pub mod project;
pub mod report;
pub mod roofline;
pub mod schedule;
pub mod timing;

/// Convenient single-import surface.
pub mod prelude {
    pub use crate::directives::{Directive, DirectiveSet};
    pub use crate::part::FpgaPart;
    pub use crate::precision::Precision;
    pub use crate::project::{HlsError, HlsProject};
    pub use crate::report::{HlsReport, ResourceUsage};
}

pub use prelude::*;
