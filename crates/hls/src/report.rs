//! Synthesis reports — the equivalent of Vivado HLS's
//! `csynth.rpt`: latency, initiation interval and resource usage,
//! with Table II-style utilization percentages.

use crate::part::FpgaPart;
use serde::Serialize;
use std::fmt;

/// Absolute resource usage against a specific part.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ResourceUsage {
    /// The device the design was bound for.
    pub part: FpgaPart,
    /// Flip-flops used.
    pub ff: u32,
    /// LUTs used.
    pub lut: u32,
    /// Memory LUTs used.
    pub lutram: u32,
    /// BRAM36 blocks used.
    pub bram36: u32,
    /// DSP48 slices used.
    pub dsp: u32,
}

impl ResourceUsage {
    /// FF utilization percent.
    pub fn ff_pct(&self) -> f64 {
        100.0 * self.ff as f64 / self.part.ff as f64
    }
    /// LUT utilization percent.
    pub fn lut_pct(&self) -> f64 {
        100.0 * self.lut as f64 / self.part.lut as f64
    }
    /// Memory-LUT utilization percent.
    pub fn lutram_pct(&self) -> f64 {
        100.0 * self.lutram as f64 / self.part.lutram as f64
    }
    /// BRAM utilization percent.
    pub fn bram_pct(&self) -> f64 {
        100.0 * self.bram36 as f64 / self.part.bram36 as f64
    }
    /// DSP utilization percent.
    pub fn dsp_pct(&self) -> f64 {
        100.0 * self.dsp as f64 / self.part.dsp as f64
    }

    /// Whether the design fits the part (every resource ≤ capacity) —
    /// the check Vivado's implementation step enforces.
    pub fn fits(&self) -> bool {
        self.ff <= self.part.ff
            && self.lut <= self.part.lut
            && self.lutram <= self.part.lutram
            && self.bram36 <= self.part.bram36
            && self.dsp <= self.part.dsp
    }

    /// Names of over-capacity resources (empty when [`fits`](Self::fits)).
    pub fn overflows(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.ff > self.part.ff {
            v.push("FF");
        }
        if self.lut > self.part.lut {
            v.push("LUT");
        }
        if self.lutram > self.part.lutram {
            v.push("LUTRAM");
        }
        if self.bram36 > self.part.bram36 {
            v.push("BRAM");
        }
        if self.dsp > self.part.dsp {
            v.push("DSP");
        }
        v
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FF {:.2}% | LUT {:.2}% | LUTRAM {:.2}% | BRAM {:.2}% | DSP {:.2}%",
            self.ff_pct(),
            self.lut_pct(),
            self.lutram_pct(),
            self.bram_pct(),
            self.dsp_pct()
        )
    }
}

/// The synthesis report of one build.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct HlsReport {
    /// Top-level function name.
    pub top: String,
    /// Directive configuration label.
    pub directives: String,
    /// Per-image latency (cycles).
    pub latency_cycles: u64,
    /// Steady-state initiation interval between images (cycles).
    pub interval_cycles: u64,
    /// Fabric clock in Hz.
    pub clock_hz: u64,
    /// Resource binding result.
    pub resources: ResourceUsage,
}

impl HlsReport {
    /// Per-image latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.latency_cycles as f64 / self.clock_hz as f64
    }

    /// Classifications per second in the steady state.
    pub fn throughput_fps(&self) -> f64 {
        self.clock_hz as f64 / self.interval_cycles as f64
    }

    /// Renders the report in `csynth.rpt` style.
    pub fn render(&self) -> String {
        format!(
            "== HLS report: {top} [{dir}] ==\n\
             clock        : {mhz:.0} MHz\n\
             latency      : {lat} cycles ({lat_s:.3} ms/image)\n\
             interval     : {int} cycles ({fps:.1} images/s)\n\
             resources    : {res}\n\
             fits device  : {fits} ({part})\n",
            top = self.top,
            dir = self.directives,
            mhz = self.clock_hz as f64 / 1e6,
            lat = self.latency_cycles,
            lat_s = self.latency_seconds() * 1e3,
            int = self.interval_cycles,
            fps = self.throughput_fps(),
            res = self.resources,
            fits = self.resources.fits(),
            part = self.resources.part.name,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(dsp: u32) -> ResourceUsage {
        ResourceUsage {
            part: FpgaPart::zynq7020(),
            ff: 10_000,
            lut: 9_000,
            lutram: 500,
            bram36: 10,
            dsp,
        }
    }

    #[test]
    fn percentages() {
        let u = usage(110);
        assert!((u.dsp_pct() - 50.0).abs() < 1e-9);
        assert!((u.bram_pct() - 100.0 * 10.0 / 140.0).abs() < 1e-9);
    }

    #[test]
    fn fits_and_overflows() {
        let ok = usage(110);
        assert!(ok.fits());
        assert!(ok.overflows().is_empty());
        let bad = usage(500);
        assert!(!bad.fits());
        assert_eq!(bad.overflows(), vec!["DSP"]);
    }

    #[test]
    fn report_math() {
        let r = HlsReport {
            top: "cnn".into(),
            directives: "naive".into(),
            latency_cycles: 200_000,
            interval_cycles: 50_000,
            clock_hz: 100_000_000,
            resources: usage(90),
        };
        assert!((r.latency_seconds() - 2e-3).abs() < 1e-12);
        assert!((r.throughput_fps() - 2000.0).abs() < 1e-9);
        let text = r.render();
        assert!(text.contains("100 MHz"));
        assert!(text.contains("cnn"));
        assert!(text.contains("fits device  : true"));
    }

    #[test]
    fn display_formats_all_five_resources() {
        let s = usage(1).to_string();
        for key in ["FF", "LUT", "LUTRAM", "BRAM", "DSP"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
