//! Roofline analysis — the model the paper's related work (Zhang et
//! al. \[9\], via Williams et al. \[20\]) uses to bound FPGA CNN
//! accelerators: attainable performance is the minimum of the
//! *computational roof* (how many FLOPS the DSP fabric can sustain)
//! and the *bandwidth roof* (arithmetic intensity × stream bandwidth).
//!
//! For the paper's designs the weights live on-chip, so the streamed
//! bytes per image are just the input pixels plus the returned class —
//! giving very high arithmetic intensity: these designs are compute-
//! bound, and the analysis quantifies how far the naive and optimized
//! schedules sit below the roof.

use crate::calibration as cal;
use crate::ir::DesignIr;
use crate::operators::FpOp;
use crate::part::FpgaPart;
use crate::schedule::DesignSchedule;
use serde::Serialize;

/// Roofline coordinates for one design point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RooflinePoint {
    /// Floating-point operations per classified image.
    pub flops_per_image: u64,
    /// Bytes streamed per image (input pixels + class word).
    pub bytes_per_image: u64,
    /// Arithmetic intensity (FLOP / byte).
    pub intensity: f64,
    /// Computational roof of the part at the fabric clock, GFLOP/s.
    pub compute_roof_gflops: f64,
    /// Bandwidth roof at this intensity, GFLOP/s.
    pub bandwidth_roof_gflops: f64,
    /// Attainable performance (min of the roofs), GFLOP/s.
    pub attainable_gflops: f64,
    /// Performance the schedule actually achieves, GFLOP/s.
    pub achieved_gflops: f64,
}

impl RooflinePoint {
    /// Whether the bandwidth roof is the binding constraint.
    pub fn memory_bound(&self) -> bool {
        self.bandwidth_roof_gflops < self.compute_roof_gflops
    }

    /// Fraction of the attainable roof the schedule reaches.
    pub fn efficiency(&self) -> f64 {
        self.achieved_gflops / self.attainable_gflops
    }
}

/// Total floating-point operations per image of a lowered design.
pub fn flops_per_image(ir: &DesignIr) -> u64 {
    ir.blocks
        .iter()
        .map(|b| {
            let ops = b.total_ops();
            FpOp::ALL.iter().map(|&op| ops.count(op)).sum::<u64>()
        })
        .sum()
}

/// Computes the roofline point of a scheduled design on `part`.
pub fn analyze(ir: &DesignIr, schedule: &DesignSchedule, part: FpgaPart) -> RooflinePoint {
    let flops = flops_per_image(ir);
    // Streamed traffic: input words in, one class word out.
    let bytes = (ir.input_elems + 1) * 4;
    let intensity = flops as f64 / bytes as f64;

    // Computational roof: every MAC needs fmul (3 DSP) + fadd (2 DSP);
    // one MAC = 2 FLOPs per cycle when fully pipelined.
    let macs_possible = part.dsp as f64 / (FpOp::Mul.cost().dsp + FpOp::Add.cost().dsp) as f64;
    let clock = cal::FABRIC_CLOCK_HZ as f64;
    let compute_roof = macs_possible * 2.0 * clock / 1e9;

    // Bandwidth roof: the AXI stream moves one 4-byte word per cycle.
    let stream_bw = 4.0 * cal::STREAM_WORDS_PER_CYCLE as f64 * clock; // bytes/s
    let bandwidth_roof = intensity * stream_bw / 1e9;

    let attainable = compute_roof.min(bandwidth_roof);
    let achieved = flops as f64 / (schedule.interval_cycles as f64 / clock) / 1e9;

    RooflinePoint {
        flops_per_image: flops,
        bytes_per_image: bytes,
        intensity,
        compute_roof_gflops: compute_roof,
        bandwidth_roof_gflops: bandwidth_roof,
        attainable_gflops: attainable,
        achieved_gflops: achieved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directives::DirectiveSet;
    use crate::ir::lower;
    use crate::schedule::schedule;
    use cnn_nn::Network;
    use cnn_tensor::init::seeded_rng;
    use cnn_tensor::ops::activation::Activation;
    use cnn_tensor::ops::pool::PoolKind;
    use cnn_tensor::Shape;

    fn test1_net() -> Network {
        let mut rng = seeded_rng(1);
        Network::builder(Shape::new(1, 16, 16))
            .conv(6, 5, 5, &mut rng)
            .pool(PoolKind::Max, 2, 2)
            .flatten()
            .linear(10, Some(Activation::Tanh), &mut rng)
            .log_softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn flop_count_matches_hand_arithmetic() {
        let ir = lower(&test1_net());
        let flops = flops_per_image(&ir);
        // conv 21600 MACs (x2) + pool 864 cmps + linear 2160 MACs (x2)
        // + epilogues; must be comfortably above 2*23760.
        assert!(flops > 2 * 23_760, "{flops}");
        assert!(flops < 3 * 23_760, "{flops}");
    }

    #[test]
    fn paper_designs_are_compute_bound() {
        // On-chip weights give huge arithmetic intensity: the paper's
        // designs sit under the computational roof, not the memory one.
        let ir = lower(&test1_net());
        let s = schedule(&ir, &DirectiveSet::optimized());
        let p = analyze(&ir, &s, FpgaPart::zynq7020());
        assert!(!p.memory_bound(), "{p:?}");
        assert!(p.intensity > 10.0);
    }

    #[test]
    fn achieved_below_attainable() {
        let ir = lower(&test1_net());
        for ds in [DirectiveSet::naive(), DirectiveSet::optimized()] {
            let s = schedule(&ir, &ds);
            let p = analyze(&ir, &s, FpgaPart::zynq7020());
            assert!(
                p.achieved_gflops <= p.attainable_gflops,
                "schedule exceeds the roof under {ds:?}: {p:?}"
            );
            assert!(p.efficiency() > 0.0 && p.efficiency() <= 1.0);
        }
    }

    #[test]
    fn optimization_raises_achieved_performance() {
        let ir = lower(&test1_net());
        let naive = analyze(
            &ir,
            &schedule(&ir, &DirectiveSet::naive()),
            FpgaPart::zynq7020(),
        );
        let opt = analyze(
            &ir,
            &schedule(&ir, &DirectiveSet::optimized()),
            FpgaPart::zynq7020(),
        );
        assert!(opt.achieved_gflops > 3.0 * naive.achieved_gflops);
        // Roofs are design-size properties, unchanged by directives.
        assert_eq!(naive.compute_roof_gflops, opt.compute_roof_gflops);
        assert_eq!(naive.intensity, opt.intensity);
    }

    #[test]
    fn compute_roof_scales_with_part() {
        let ir = lower(&test1_net());
        let s = schedule(&ir, &DirectiveSet::optimized());
        let zed = analyze(&ir, &s, FpgaPart::zynq7020());
        let v7 = analyze(&ir, &s, FpgaPart::virtex7());
        assert!(v7.compute_roof_gflops > 10.0 * zed.compute_roof_gflops);
    }
}
