//! Property tests over the scheduler and binder: monotonicity and
//! consistency invariants that must hold for *any* network the
//! framework accepts, not just the paper's four.

// The minimal typecheck-only proptest stub expands `proptest!` bodies
// to nothing, leaving the suite's imports and generators unused there.
#![allow(dead_code, unused_imports)]

use cnn_hls::directives::DirectiveSet;
use cnn_hls::ir::lower;
use cnn_hls::part::FpgaPart;
use cnn_hls::precision::Precision;
use cnn_hls::project::HlsProject;
use cnn_hls::schedule::{schedule, schedule_with};
use cnn_nn::Network;
use cnn_tensor::init::seeded_rng;
use cnn_tensor::ops::activation::Activation;
use cnn_tensor::ops::pool::PoolKind;
use cnn_tensor::Shape;
use proptest::prelude::*;

/// Builds a random small-but-valid network from structural knobs.
fn make_net(
    chans: usize,
    side: usize,
    k1: usize,
    kernel: usize,
    pool: bool,
    neurons: usize,
    tanh: bool,
) -> Option<Network> {
    let mut rng = seeded_rng(1);
    let mut b = Network::builder(Shape::new(chans, side, side)).conv(k1, kernel, kernel, &mut rng);
    if pool {
        b = b.pool(PoolKind::Max, 2, 2);
    }
    let act = if tanh { Some(Activation::Tanh) } else { None };
    b.flatten()
        .linear(neurons, act, &mut rng)
        .log_softmax()
        .build()
        .ok()
}

fn arb_net() -> impl Strategy<Value = Network> {
    (
        1usize..=3,
        8usize..=20,
        1usize..=8,
        2usize..=5,
        any::<bool>(),
        2usize..=12,
        any::<bool>(),
    )
        .prop_filter_map("valid net", |(c, s, k, kk, p, n, t)| {
            make_net(c, s, k, kk, p, n, t)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interval_never_exceeds_latency(net in arb_net()) {
        let ir = lower(&net);
        for ds in DirectiveSet::all_combinations() {
            let s = schedule(&ir, &ds);
            prop_assert!(s.interval_cycles <= s.latency_cycles);
            prop_assert!(s.latency_cycles >= s.io_cycles);
        }
    }

    #[test]
    fn dataflow_only_helps_throughput(net in arb_net()) {
        let ir = lower(&net);
        let mut with = DirectiveSet::naive();
        with.dataflow = true;
        let s_no = schedule(&ir, &DirectiveSet::naive());
        let s_df = schedule(&ir, &with);
        // Same block schedules; dataflow can only lower the interval.
        prop_assert_eq!(s_no.latency_cycles, s_df.latency_cycles);
        prop_assert!(s_df.interval_cycles <= s_no.interval_cycles);
    }

    #[test]
    fn batch_cycles_scale_monotonically(net in arb_net()) {
        let ir = lower(&net);
        let s = schedule(&ir, &DirectiveSet::optimized());
        let mut prev = 0;
        for n in [1u64, 2, 10, 100] {
            let c = s.cycles_for_images(n);
            prop_assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn fixed_point_never_slower_or_larger_in_bram(net in arb_net()) {
        let ir = lower(&net);
        for ds in [DirectiveSet::naive(), DirectiveSet::optimized()] {
            let f32s = schedule_with(&ir, &ds, Precision::Float32);
            let q16 = schedule_with(&ir, &ds, Precision::q8_8());
            prop_assert!(q16.latency_cycles <= f32s.latency_cycles,
                "q8.8 latency {} > f32 {}", q16.latency_cycles, f32s.latency_cycles);
            let bf = cnn_hls::bind::bind_with(&ir, &ds, FpgaPart::zynq7020(), Precision::Float32);
            let bq = cnn_hls::bind::bind_with(&ir, &ds, FpgaPart::zynq7020(), Precision::q8_8());
            prop_assert!(bq.bram36 <= bf.bram36);
            prop_assert!(bq.dsp <= bf.dsp);
        }
    }

    #[test]
    fn report_is_internally_consistent(net in arb_net()) {
        let p = HlsProject::new_unchecked(&net, DirectiveSet::optimized(), FpgaPart::zynq7020());
        let r = p.report();
        prop_assert!(r.latency_seconds() > 0.0);
        prop_assert!(r.throughput_fps() > 0.0);
        let recomputed = r.clock_hz as f64 / r.interval_cycles as f64;
        prop_assert!((r.throughput_fps() - recomputed).abs() < 1e-9);
        // Rendering never panics and mentions the part.
        prop_assert!(r.render().contains(p.part().name));
    }

    #[test]
    fn codegen_scales_with_parameters(net in arb_net()) {
        let p = HlsProject::new_unchecked(&net, DirectiveSet::naive(), FpgaPart::zynq7020());
        let src = p.cpp_source();
        // Each parameter appears as (at least part of) one literal; the
        // source must grow at least linearly with parameter count.
        prop_assert!(src.len() > net.param_count());
        prop_assert!(src.contains("int cnn("));
    }
}
