//! Roofline analysis of the four paper designs (extension): the model
//! the paper's related work (Zhang et al. \[9\]) uses, applied to our
//! builds — showing all four designs are compute-bound (weights are
//! on-chip) and how much of the attainable roof each schedule reaches.

use cnn_framework::weights::build_random;
use cnn_framework::PaperTest;
use cnn_hls::ir::lower;
use cnn_hls::roofline::analyze;
use cnn_hls::schedule::schedule;
use cnn_hls::FpgaPart;

fn main() {
    println!("ROOFLINE ANALYSIS (Zynq-7020 @ 100 MHz, AXI stream 400 MB/s)\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>12} {:>12} {:>11} {:>8}",
        "Test",
        "FLOP/image",
        "bytes/img",
        "intensity",
        "compute roof",
        "bw roof",
        "achieved",
        "eff"
    );
    println!("{}", "-".repeat(92));
    for test in PaperTest::ALL {
        let spec = test.spec();
        let net = build_random(&spec, 2016).expect("valid spec");
        let ir = lower(&net);
        let s = schedule(&ir, &spec.directives());
        let p = analyze(&ir, &s, FpgaPart::zynq7020());
        println!(
            "{:<8} {:>12} {:>10} {:>8.1}:1 {:>9.1} GF {:>9.1} GF {:>8.2} GF {:>7.1}%",
            test.name(),
            p.flops_per_image,
            p.bytes_per_image,
            p.intensity,
            p.compute_roof_gflops,
            p.bandwidth_roof_gflops,
            p.achieved_gflops,
            p.efficiency() * 100.0
        );
    }
    println!(
        "\nAll four designs are compute-bound (intensity far right of the ridge);\n\
         the II=2 accumulation recurrence keeps the achieved point well below the\n\
         DSP roof — the headroom the paper's 'room for bigger networks' refers to."
    );
}
