//! Regenerates **Table II**: FPGA resource usage (FF, LUT, memory
//! LUT, BRAM, DSP utilization on the Zedboard's XC7Z020) for the four
//! case studies.
//!
//! Resource binding is weight-value independent, so the experiments
//! are built with random weights (exactly the paper's Test-4
//! rationale: "in terms of hardware implementation and employed
//! resources, there is no difference with a network built using
//! trained weights").

use cnn_framework::report::{render_table2, run_table2_row};
use cnn_framework::weights::build_random;
use cnn_framework::{Experiment, PaperTest};

fn main() {
    let mut rows = Vec::new();
    for test in PaperTest::ALL {
        let spec = test.spec();
        let network = build_random(&spec, 2016).expect("paper specs are valid");
        let e = Experiment {
            test,
            spec,
            network,
            test_images: vec![],
            test_labels: vec![],
            train_error: None,
        };
        rows.push((test, run_table2_row(&e)));
    }
    if std::env::args().any(|a| a == "--json") {
        let measured: Vec<_> = rows.iter().map(|(_, r)| r).collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&measured).expect("rows serialize")
        );
        return;
    }
    println!("TABLE II: FPGA resources usage (Zedboard XC7Z020)");
    println!("(measured rows are this reproduction; '(paper)' rows are the published values)\n");
    print!("{}", render_table2(&rows));
}
