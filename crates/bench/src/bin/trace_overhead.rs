//! Measures the enabled tracer's overhead on the Fig.-3 workflow:
//! runs the full pipeline (workflow → device batch classification)
//! with the recorder off, then again with it on, and reports the
//! wall-clock delta. The acceptance target is <3% — printed, not
//! asserted, because CI machines have noisy clocks; the binary *does*
//! assert the traced run is prediction-bit-identical to the untraced
//! one.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin trace_overhead [-- --quick]
//! ```

use cnn_fpga::fault::{FaultPlan, RetryPolicy};
use cnn_framework::{NetworkSpec, WeightSource, Workflow};
use std::time::Instant;

/// One full build + classify, returning predictions and seconds.
fn run_once(n: usize) -> (Vec<usize>, f64) {
    let start = Instant::now();
    let spec = NetworkSpec::paper_usps_small(true);
    let artifacts = Workflow::new(spec, WeightSource::Random { seed: 2016 })
        .run()
        .expect("the paper network fits the Zedboard");
    let images = cnn_datasets::UspsLike::default().generate(n, 8).images;
    let report =
        artifacts.classify_with_recovery(&images, &FaultPlan::none(), &RetryPolicy::default());
    (report.predictions, start.elapsed().as_secs_f64())
}

/// Median of `reps` timed runs (predictions checked identical across
/// every run).
fn measure(n: usize, reps: usize) -> (Vec<usize>, f64) {
    let mut times = Vec::with_capacity(reps);
    let (reference, t0) = run_once(n);
    times.push(t0);
    for _ in 1..reps {
        let (p, t) = run_once(n);
        assert_eq!(p, reference, "repeat runs must agree");
        times.push(t);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (reference, times[times.len() / 2])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, reps) = if quick { (20, 3) } else { (60, 5) };

    eprintln!("[cnn-bench] warming up ({n} images, {reps} reps per mode)...");
    let _ = run_once(n); // warm caches/allocator before either timed mode

    cnn_trace::disable();
    cnn_trace::reset();
    let (untraced_preds, untraced_s) = measure(n, reps);

    cnn_trace::enable();
    let (traced_preds, traced_s) = measure(n, reps);
    let snapshot = cnn_trace::snapshot();
    cnn_trace::disable();

    assert_eq!(
        traced_preds, untraced_preds,
        "tracing must not perturb predictions"
    );

    let overhead = (traced_s - untraced_s) / untraced_s * 100.0;
    println!("TRACE OVERHEAD on the Fig.-3 workflow ({n} images, median of {reps}):\n");
    println!("  untraced: {untraced_s:>8.4} s");
    println!(
        "  traced:   {traced_s:>8.4} s  ({} events, {} counter series)",
        snapshot.events.len() + snapshot.dropped as usize,
        snapshot.counters.len()
    );
    println!("  overhead: {overhead:>+8.2} %   (target < 3%)");
    println!("\npredictions bit-identical across traced and untraced runs.");
}
