//! Observability-overhead gate: what does per-request tracing cost on
//! the inference hot path?
//!
//! The serving stack instruments every request with a span, a
//! request-scoped context, flight-recorder stamps and metric updates —
//! and the flight recorder is *always on*. That is only acceptable if
//! the instrumented hot path stays within a few percent of the bare
//! one, so this benchmark measures the Test-4 (CIFAR shape) zero-alloc
//! `Network::infer` engine two ways, with warmup and median-of-N wall
//! times:
//!
//! * **untraced** — the bare engine, tracing collectors disabled;
//! * **traced** — the same engine wrapped in the full per-request
//!   observability kit the serving front-end and pool apply: an
//!   enabled collector, a span, a request context installed for the
//!   dispatch, flight-recorder stamps for admit/dispatch/complete, a
//!   latency histogram observation and a counter increment.
//!
//! The two conditions are interleaved sample by sample (order flipped
//! each round) so clock-frequency drift hits both equally instead of
//! masquerading as tracing overhead. The binary **asserts** the traced
//! median stays under `untraced * 1.05 + 20 us` — the 5% CI gate, with
//! a small absolute floor so scheduler jitter on a sub-millisecond
//! inference cannot fail the gate on its own — and that
//! instrumentation never changes the prediction. It also prints the
//! amortized cost of a single flight-recorder stamp for reference.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin trace_overhead [-- --smoke] [-- --out FILE]
//! ```
//!
//! Everything is deterministic except the wall clock itself: weights
//! and inputs come from SplitMix64 streams, never ambient RNG.

use cnn_framework::weights::build_deterministic;
use cnn_framework::PaperTest;
use cnn_nn::Network;
use cnn_store::atomic_write;
use cnn_store::hash::SplitMix64;
use cnn_tensor::{Shape, Tensor, Workspace};
use cnn_trace::{ctx_scope, flight_record, FlightStage, RequestCtx};
use std::fmt::Write as _;
use std::time::Instant;

/// Traced median must stay within this factor of the untraced median.
const MAX_OVERHEAD_FACTOR: f64 = 1.05;
/// Absolute slack added to the bound: the per-request instrumentation
/// cost is fixed (a handful of atomic stores), so on a machine where
/// one inference is only tens of microseconds, clock jitter alone
/// exceeds 5% — the gate is `untraced * 1.05 + FLOOR_NS`.
const FLOOR_NS: u64 = 20_000;

fn time_ns(mut f: impl FnMut()) -> u64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as u64
}

fn median(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn deterministic_input(shape: Shape, seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<f32> = (0..shape.len())
        .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
        .collect();
    Tensor::from_vec(shape, data)
}

/// One inference wrapped in the per-request observability kit the
/// serving stack applies — the "traced" condition under test.
fn traced_infer(net: &Network, input: &Tensor, ws: &mut Workspace, req: u64) -> usize {
    let _span = cnn_trace::span("bench", "traced_infer");
    let ctx = RequestCtx::root((0xBE7C << 32) | req);
    let _scope = ctx_scope(ctx);
    flight_record(ctx.trace_id, FlightStage::Admit, req, 0);
    flight_record(ctx.trace_id, FlightStage::Dispatch, req, 0);
    let t0 = Instant::now();
    let class = net.infer(input, ws).argmax();
    let ns = t0.elapsed().as_nanos() as u64;
    cnn_trace::observe("cnn_bench_traced_infer_ns", ns);
    cnn_trace::counter_add("cnn_bench_traced_infers_total", &[], 1);
    flight_record(ctx.trace_id, FlightStage::Complete, req, 1);
    class
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (mode, warmup, reps) = if smoke {
        ("smoke", 3, 15)
    } else {
        ("full", 5, 41)
    };

    println!("TRACE OVERHEAD — instrumented vs bare Test-4 inference ({mode}, median of {reps})\n");
    let test = PaperTest::ALL
        .iter()
        .copied()
        .find(|t| t.name() == "Test 4")
        .expect("the paper defines Test 4");
    let net = build_deterministic(&test.spec(), 2016).expect("valid paper spec");
    let input = deterministic_input(net.input_shape(), 0x0007_BACE_5EED);
    let mut ws = Workspace::new();

    // The two conditions are *interleaved* sample by sample, with the
    // order flipped each round: measuring them in separate blocks lets
    // clock-frequency drift masquerade as tracing overhead (a +30%
    // phantom on a noisy container), while interleaving exposes both
    // conditions to the same machine state.
    cnn_trace::reset();
    let mut class_untraced = 0usize;
    let mut class_traced = 0usize;
    let mut req = 0u64;
    let mut untraced = Vec::with_capacity(reps);
    let mut traced = Vec::with_capacity(reps);
    let bare = |ws: &mut Workspace, class: &mut usize| {
        cnn_trace::disable();
        time_ns(|| *class = net.infer(std::hint::black_box(&input), ws).argmax())
    };
    let kit = |ws: &mut Workspace, class: &mut usize, req: &mut u64| {
        cnn_trace::enable();
        let ns = time_ns(|| *class = traced_infer(&net, std::hint::black_box(&input), ws, *req));
        *req += 1;
        ns
    };
    for _ in 0..warmup {
        bare(&mut ws, &mut class_untraced);
        kit(&mut ws, &mut class_traced, &mut req);
    }
    for round in 0..reps {
        if round % 2 == 0 {
            untraced.push(bare(&mut ws, &mut class_untraced));
            traced.push(kit(&mut ws, &mut class_traced, &mut req));
        } else {
            traced.push(kit(&mut ws, &mut class_traced, &mut req));
            untraced.push(bare(&mut ws, &mut class_untraced));
        }
    }
    cnn_trace::disable();
    let untraced_ns = median(untraced);
    let traced_ns = median(traced);
    assert_eq!(
        class_untraced, class_traced,
        "instrumentation must not change the prediction"
    );

    // Amortized cost of one flight stamp, for the record.
    let stamp_reps = 4096u64;
    let t0 = Instant::now();
    for i in 0..stamp_reps {
        flight_record(0x57A4_7000 | i, FlightStage::Dispatch, i, i);
    }
    let stamp_ns = t0.elapsed().as_nanos() as u64 / stamp_reps;

    let overhead = traced_ns as f64 / untraced_ns.max(1) as f64;
    println!("  untraced infer: {untraced_ns:>9} ns (median)");
    println!(
        "  traced infer:   {traced_ns:>9} ns (median, {:+.2}% overhead)",
        (overhead - 1.0) * 100.0
    );
    println!("  flight stamp:   {stamp_ns:>9} ns (amortized over {stamp_reps} records)");

    if let Some(path) = out_path {
        let mut j = String::from("{\n  \"benchmark\": \"trace_overhead\",\n");
        let _ = writeln!(j, "  \"mode\": \"{mode}\",");
        let _ = writeln!(j, "  \"warmup\": {warmup},");
        let _ = writeln!(j, "  \"reps\": {reps},");
        let _ = writeln!(j, "  \"untraced_ns\": {untraced_ns},");
        let _ = writeln!(j, "  \"traced_ns\": {traced_ns},");
        let _ = writeln!(j, "  \"flight_stamp_ns\": {stamp_ns},");
        let _ = writeln!(j, "  \"overhead_factor\": {overhead:.4}");
        j.push_str("}\n");
        atomic_write(&path, j.as_bytes()).expect("atomic result commit");
        println!("results committed atomically to {path}");
    }

    // The gate.
    let bound = (untraced_ns as f64 * MAX_OVERHEAD_FACTOR) as u64 + FLOOR_NS;
    assert!(
        traced_ns <= bound,
        "traced inference {traced_ns} ns exceeds {bound} ns \
         ({MAX_OVERHEAD_FACTOR}x untraced {untraced_ns} ns + {FLOOR_NS} ns floor) — \
         the observability layer regressed the hot path"
    );
    println!(
        "\ngate: traced within {:.0}% of untraced (+{} us floor) ok",
        (MAX_OVERHEAD_FACTOR - 1.0) * 100.0,
        FLOOR_NS / 1000
    );
}
