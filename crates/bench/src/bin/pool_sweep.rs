//! Sweeps the fault-tolerant serving pool across transport fault
//! rates and pool sizes, and prints both a table and a JSON document
//! (for dashboards / regression tracking): per configuration, the
//! availability the pool achieved (fraction of images served in
//! hardware rather than by the software fallback), hedge and budget
//! accounting, and how many injected faults the stream CRC caught.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin pool_sweep [-- --quick] [-- --out FILE]
//! ```
//!
//! With `--out FILE`, the same JSON document is committed through the
//! artifact store's write-temp-then-rename helper, so a crash mid-run
//! can never leave a torn results file behind.
//!
//! Every configuration is seeded, so the sweep is exactly
//! reproducible. The binary asserts the PR's serving SLO: at a 5%
//! per-device fault rate, any pool of at least two devices keeps
//! availability at or above 99.9% — and predictions are always
//! bit-identical to the software reference regardless.

use cnn_fpga::fault::{FaultPlan, RetryPolicy};
use cnn_framework::{NetworkSpec, WeightSource, Workflow};
use cnn_serve::{PoolConfig, ServedBy};
use cnn_trace::{Objective, SloMonitor};

const RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.2, 0.5];
const POOLS: [usize; 3] = [1, 2, 4];

/// Per-cell availability objective for the burn-rate monitor: the
/// same 99.9% the sweep's SLO asserts, watched as a stream so a
/// dashboard would page on the first sustained fallback burst rather
/// than at end-of-batch accounting. Windows are sized to warm even in
/// `--quick` mode (32 images per cell).
fn availability_objective() -> Objective {
    Objective {
        name: "pool_availability",
        target: 0.999,
        fast_window: 8,
        slow_window: 32,
        fast_burn: 4.0,
        slow_burn: 2.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let n = if quick { 32 } else { 128 };
    cnn_trace::enable();

    eprintln!("[cnn-bench] building the Test-2 stack (optimized Zedboard build)...");
    let artifacts = Workflow::new(
        NetworkSpec::paper_usps_small(true),
        WeightSource::Random { seed: 2016 },
    )
    .run()
    .expect("the paper network fits the Zedboard");
    let images = cnn_datasets::UspsLike::default().generate(n, 8).images;
    let reference: Vec<usize> = images
        .iter()
        .map(|i| artifacts.network.predict(i))
        .collect();
    let policy = RetryPolicy::default();

    println!("POOL SWEEP: {n} images per cell, seeded plans, default pool tuning\n");
    println!(
        "{:>5}  {:>5}  {:>12}  {:>9}  {:>7}  {:>10}  {:>7}  {:>9}  {:>8}",
        "rate",
        "pool",
        "availability",
        "fallback",
        "redisp",
        "dispatches",
        "hedges",
        "injected",
        "crc-hit"
    );

    let mut rows = Vec::new();
    for rate in RATES {
        for pool in POOLS {
            let plans: Vec<FaultPlan> = (0..pool)
                .map(|i| FaultPlan::uniform(2016 + i as u64, rate))
                .collect();
            let report = artifacts
                .serve_with_pool(&images, &plans, &policy, PoolConfig::default())
                .expect("pool construction succeeds");
            assert_eq!(
                report.predictions, reference,
                "rate {rate} pool {pool}: serving must stay bit-exact"
            );
            let r = &report.report;
            let dispatches: u64 = r.devices.iter().map(|d| d.dispatches).sum();
            let injected: u64 = r.devices.iter().map(|d| d.faults_injected).sum();
            let crc_hit: u64 = r.devices.iter().map(|d| d.crc_detected).sum();
            let availability = r.availability();
            // Replay the cell's per-image outcomes through a burn-rate
            // monitor: a fallback is a bad event against the 99.9%
            // availability objective.
            let mut monitor = SloMonitor::new(availability_objective());
            for outcome in &r.outcomes {
                monitor.record(!matches!(outcome.served_by, ServedBy::Fallback));
            }
            let burn_edges = monitor.breaches();
            println!(
                "{rate:>5.2}  {pool:>5}  {availability:>12.4}  {:>9}  {:>7}  {dispatches:>10}  {:>7}  {injected:>9}  {crc_hit:>8}",
                r.fallback_served, r.redispatches, r.hedges,
            );
            // The PR's serving SLO — and the burn monitor must agree
            // with the end-of-batch accounting: a cell that held the
            // SLO never burned past both windows.
            if rate <= 0.05 && pool >= 2 {
                assert!(
                    availability >= 0.999,
                    "rate {rate} pool {pool}: availability {availability} misses the 99.9% SLO"
                );
                assert_eq!(
                    burn_edges, 0,
                    "rate {rate} pool {pool}: burn monitor paged in an SLO-holding cell"
                );
            }
            rows.push(serde_json::json!({
                "rate": rate,
                "pool": pool,
                "images": n,
                "availability": availability,
                "hw_served": r.hw_served,
                "fallback_served": r.fallback_served,
                "redispatches": r.redispatches,
                "hedges": r.hedges,
                "hedge_wins": r.hedge_wins,
                "dispatches": dispatches,
                "faults_injected": injected,
                "crc_detected": crc_hit,
                "slo_burn_edges": burn_edges,
                "total_cycles": r.total_cycles,
                "devices": r.devices.iter().map(|d| serde_json::json!({
                    "dispatches": d.dispatches,
                    "failures": d.failures,
                    "health": d.health.name(),
                    "breaker_trips": d.breaker_trips,
                })).collect::<Vec<_>>(),
            }));
        }
    }

    println!(
        "\nevery cell produced predictions bit-identical to the software reference; \
         the 99.9% availability SLO held at every rate <= 0.05 with pool >= 2."
    );

    // This sweep drives the pool in batch mode, which carries no
    // request context — and the flight recorder must therefore hold
    // nothing: context-free serving never pollutes the ring with
    // unattributable records.
    assert!(
        cnn_trace::flight().snapshot().is_empty(),
        "context-free batch serving must leave the flight recorder empty"
    );
    println!("flight recorder: empty after the sweep (context-free serving stamps no records).");

    // Cumulative exposition for dashboards. The front-end's shed /
    // deadline-miss families are preregistered so they are present (at
    // zero) even though this sweep drives the pool directly, without
    // the batching front-end in the path — a dashboard querying
    // `cnn_frontend_shed_total` must never get "no such series".
    cnn_serve::preregister_frontend_metrics();
    println!(
        "\nPROMETHEUS EXPORT (cumulative across the sweep):\n\n{}",
        cnn_trace::export::prometheus::to_prometheus_text(&cnn_trace::snapshot())
    );

    let doc = serde_json::json!({
        "benchmark": "pool_sweep",
        "images_per_cell": n,
        "rows": rows,
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("sweep rows serialize");
    println!("\nJSON:\n{rendered}");

    if let Some(path) = out_path {
        // Committed via write-temp-then-rename: a reader of the results
        // file sees the previous sweep or this one, never a torn mix.
        cnn_store::atomic_write(&path, rendered.as_bytes()).expect("atomic result commit");
        println!("results committed atomically to {path}");
    }
}
