//! Regenerates **Fig. 1**: the CNN structure diagram — a LeNet-style
//! network of convolutional layers alternated with sub-sampling layers
//! followed by a linear part, rendered per layer with shapes and
//! parameter counts for each of the paper's four networks.

use cnn_framework::weights::build_random;
use cnn_framework::PaperTest;
use cnn_nn::summary::render;

fn main() {
    println!("FIG. 1: Convolutional Neural Network structure\n");
    for test in PaperTest::ALL {
        let spec = test.spec();
        let net = build_random(&spec, 1).expect("paper specs are valid");
        println!("--- {} ({} dataset) ---", test.name(), test.dataset());
        print!("{}", render(&net));
        println!();
    }
}
