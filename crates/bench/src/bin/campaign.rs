//! Full experiment campaign: runs all four paper tests end to end and
//! writes a consolidated report — Table I/II rows plus the deeper
//! diagnostics the paper doesn't show (confusion matrices, sampled
//! power traces, roofline positions) — to stdout.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin campaign [-- --quick]
//! ```

use cnn_bench::build_experiment;
use cnn_framework::report::{run_table1_row, run_table2_row};
use cnn_framework::PaperTest;
use cnn_hls::ir::lower;
use cnn_hls::roofline::analyze;
use cnn_hls::schedule::schedule;
use cnn_hls::FpgaPart;
use cnn_nn::metrics::ConfusionMatrix;
use cnn_power::{PowerPhase, PowerTrace};

fn main() {
    println!("# cnn2fpga experiment campaign\n");
    for test in PaperTest::ALL {
        let e = build_experiment(test);
        println!("## {} ({} dataset)\n", test.name(), test.dataset());

        // Table I row.
        let r1 = run_table1_row(&e);
        println!(
            "error {:.1}% (SW = HW) | SW {:.2}s / HW {:.2}s | speedup {:.2}x | {:.2} W | SW {:.2} J / HW {:.2} J",
            r1.sw_error * 100.0,
            r1.sw_time_s,
            r1.hw_time_s,
            r1.speedup,
            r1.total_power_w,
            r1.sw_energy_j,
            r1.hw_energy_j
        );

        // Table II row.
        let r2 = run_table2_row(&e);
        println!("resources: {}\n", r2.usage);

        // Confusion matrix (meaningful for the trained tests).
        if e.train_error.is_some() {
            let cm = ConfusionMatrix::evaluate(&e.network, &e.test_images, &e.test_labels);
            println!("confusion matrix:\n{}", cm.render());
            if let Some((a, p, n)) = cm.worst_confusion() {
                println!("most-confused pair: {a} predicted as {p} ({n} times)\n");
            }
        } else {
            println!("(random weights: confusion matrix omitted)\n");
        }

        // Power trace of the hardware run (1-second logger cadence,
        // or 10 ms for the sub-second runs).
        let period = if r1.hw_time_s > 10.0 { 1.0 } else { 0.01 };
        let trace = PowerTrace::record(
            &[
                PowerPhase {
                    watts: 1.45,
                    seconds: (r1.hw_time_s * 0.05).max(period),
                },
                PowerPhase {
                    watts: r1.total_power_w,
                    seconds: r1.hw_time_s,
                },
            ],
            period,
        );
        println!(
            "power trace: {} samples @ {period}s, peak {:.2} W, integrates to {:.2} J (meter: {:.2} J)",
            trace.samples.len(),
            trace.peak_watts(),
            trace.joules(),
            r1.hw_energy_j
        );

        // Roofline position.
        let ir = lower(&e.network);
        let s = schedule(&ir, &e.spec.directives());
        let p = analyze(&ir, &s, FpgaPart::zynq7020());
        println!(
            "roofline: {:.1} FLOP/byte, achieves {:.2} of {:.1} GFLOP/s attainable ({:.1}%)\n",
            p.intensity,
            p.achieved_gflops,
            p.attainable_gflops,
            p.efficiency() * 100.0
        );
    }
    println!("campaign complete.");
}
