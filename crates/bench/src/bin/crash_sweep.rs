//! Crash-consistency sweep over the artifact store: for every artifact
//! kind and every filesystem-operation index, commit an "old" value,
//! crash the filesystem at exactly that operation while committing a
//! "new" value, restart, and check what survived.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin crash_sweep [-- --quick] [-- --out FILE]
//! ```
//!
//! The invariant under test is the store's atomicity contract: after a
//! crash at *any* point, a restarted reader sees either the old value
//! or the new value, bit-for-bit — never a torn mixture, and never a
//! record that fails its checksum silently. The binary prints the
//! kind × crash-point outcome matrix, asserts 100% old-or-new, and
//! (with `--out`) commits the result JSON through the same
//! atomic-write helper it is benchmarking.
//!
//! Deliberately free of `rand`/`serde`: payloads come from the store's
//! own SplitMix64 and the JSON is hand-rendered, so the sweep runs in
//! any environment the store itself runs in.

use cnn_store::hash::{mix_seed, SplitMix64};
use cnn_store::{atomic_write, ArtifactKind, FsFaultPlan, Store};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cnn-crash-sweep-{tag}-{}-{n}", std::process::id()))
}

/// Deterministic payload for `(kind, generation)` — a few hundred
/// bytes, different per kind and per generation.
fn payload(kind: ArtifactKind, generation: u64, len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(mix_seed(kind.tag() as u64, generation));
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    /// The new value committed before the crash point (or no crash hit).
    New,
    /// The crash preempted the commit; the old value survived intact.
    Old,
    /// Anything else — a torn or corrupt read. Must never happen.
    Torn,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let crash_points: Vec<u64> = if quick {
        (0..10).collect()
    } else {
        (0..24).collect()
    };
    let payload_len = if quick { 256 } else { 4096 };

    println!(
        "CRASH SWEEP: {} artifact kinds x {} crash points, payload {} bytes",
        ArtifactKind::ALL.len(),
        crash_points.len(),
        payload_len
    );
    println!(
        "{:>10}  {}",
        "kind",
        crash_points
            .iter()
            .map(|c| format!("{c:>3}"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let mut rows = Vec::new();
    let (mut old_total, mut new_total, mut torn_total) = (0u64, 0u64, 0u64);
    for kind in ArtifactKind::ALL {
        let old = payload(kind, 0, payload_len);
        let new = payload(kind, 1, payload_len);
        let mut cells = Vec::new();
        for &crash_op in &crash_points {
            // Commit the old value fault-free.
            let root = scratch(&format!("{}-{crash_op}", kind.name()));
            {
                let mut store = Store::open(&root).expect("fault-free open");
                store.put(kind, "victim", &old).expect("baseline commit");
            }
            // Attempt the new value with a crash at `crash_op`. A torn
            // plan tears the *first* write it sees (the fs dies there),
            // so use it on a few points only; the rest crash cleanly at
            // the exact op index.
            let torn_write = crash_op % 5 == 0;
            let crashed =
                match Store::open_faulty(&root, FsFaultPlan::crash_at(crash_op, torn_write)) {
                    Ok(mut store) => store.put(kind, "victim", &new).is_err(),
                    Err(_) => true, // crashed during open/replay
                };
            // Restart: the journal replay must yield a verifiable store
            // holding exactly the old or the new bytes.
            let mut store = Store::open(&root).expect("restart after crash");
            let report = store.verify_all().expect("verify after crash");
            let outcome = match store.get(kind, "victim") {
                Ok(bytes) if bytes == new => Outcome::New,
                Ok(bytes) if bytes == old => Outcome::Old,
                _ => Outcome::Torn,
            };
            let outcome = if !report.corrupt.is_empty() {
                Outcome::Torn
            } else {
                outcome
            };
            match outcome {
                Outcome::New => new_total += 1,
                Outcome::Old => old_total += 1,
                Outcome::Torn => torn_total += 1,
            }
            assert!(
                outcome != Outcome::Torn,
                "{} crash at op {crash_op}: torn state after restart",
                kind.name()
            );
            // A crash must never be reported as a clean, completed put.
            if !crashed {
                assert!(
                    outcome == Outcome::New,
                    "{} crash at op {crash_op}: put reported success but new value not visible",
                    kind.name()
                );
            }
            cells.push((crash_op, outcome, crashed));
            let _ = std::fs::remove_dir_all(&root);
        }
        println!(
            "{:>10}  {}",
            kind.name(),
            cells
                .iter()
                .map(|(_, o, _)| match o {
                    Outcome::New => "  N",
                    Outcome::Old => "  O",
                    Outcome::Torn => "  T",
                }
                .to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        rows.push((kind, cells));
    }

    let cases = old_total + new_total + torn_total;
    println!(
        "\n{cases} cases: {old_total} old, {new_total} new, {torn_total} torn \
         — old-or-new rate {:.1}%",
        100.0 * (old_total + new_total) as f64 / cases as f64
    );
    assert_eq!(torn_total, 0, "crash consistency violated");
    println!("every crash point left old-or-new state; no torn reads after restart.");

    if let Some(path) = out_path {
        // Hand-rendered JSON, committed through the helper under test.
        let mut json = String::from("{\n  \"benchmark\": \"crash_sweep\",\n");
        json.push_str(&format!("  \"cases\": {cases},\n"));
        json.push_str(&format!(
            "  \"old\": {old_total},\n  \"new\": {new_total},\n  \"torn\": {torn_total},\n"
        ));
        json.push_str("  \"rows\": [\n");
        for (i, (kind, cells)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"kind\": \"{}\", \"outcomes\": [",
                kind.name()
            ));
            for (j, (op, outcome, crashed)) in cells.iter().enumerate() {
                json.push_str(&format!(
                    "{{\"crash_op\": {op}, \"outcome\": \"{}\", \"crashed\": {crashed}}}",
                    match outcome {
                        Outcome::New => "new",
                        Outcome::Old => "old",
                        Outcome::Torn => "torn",
                    }
                ));
                if j + 1 < cells.len() {
                    json.push_str(", ");
                }
            }
            json.push_str("]}");
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        atomic_write(&path, json.as_bytes()).expect("atomic result commit");
        println!("results committed atomically to {path}");
    }
}
