//! Reproducible hot-path benchmark: what does cache blocking + weight
//! packing + workspace reuse actually buy on this machine?
//!
//! For each of the paper's four test networks this measures, with
//! warmup and median-of-N wall times:
//!
//! * every convolution layer — allocating [`conv2d_im2col`] (the
//!   scalar baseline) vs the blocked, packed, preallocated engine
//!   ([`conv2d_gemm_packed_into`]), asserting the two are
//!   **bit-identical**,
//! * every linear layer — the slice [`linear`] kernel,
//! * the full forward pass — per-layer `Layer::forward` (allocating)
//!   vs the zero-alloc `Network::infer` engine, again bit-checked.
//!
//! Results are committed atomically to `BENCH_hotpath.json`
//! (override with `--out <path>`); `--smoke` shrinks the rep counts
//! for CI. In both modes the binary **asserts** that on the Test-4
//! CIFAR shape the blocked engine beats the im2col baseline by ≥2×
//! and that every bit-identity check passed — so a perf or
//! determinism regression fails the run, not just a number in a file.
//!
//! Everything is deterministic: weights come from
//! [`build_deterministic`] (SplitMix64) and inputs from the same
//! stream — no ambient RNG, no dataset download.

use cnn_framework::weights::build_deterministic;
use cnn_framework::PaperTest;
use cnn_nn::{Layer, Network};
use cnn_platform::ArmModel;
use cnn_store::atomic_write;
use cnn_store::hash::SplitMix64;
use cnn_tensor::ops::conv::{conv2d_gemm_packed_into, conv2d_im2col};
use cnn_tensor::ops::linear::linear;
use cnn_tensor::{PackedKernels, Shape, Tensor, Workspace};
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall time of `reps` calls to `f`, in nanoseconds, after
/// `warmup` untimed calls.
fn median_ns(warmup: usize, reps: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn deterministic_input(shape: Shape, seed: u64) -> Tensor {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<f32> = (0..shape.len())
        .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
        .collect();
    Tensor::from_vec(shape, data)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

struct ConvRow {
    layer: usize,
    rows: usize,
    kdim: usize,
    ncols: usize,
    im2col_ns: u64,
    blocked_ns: u64,
    bit_identical: bool,
}

struct LinearRow {
    layer: usize,
    inputs: usize,
    outputs: usize,
    ns: u64,
}

struct TestReport {
    name: &'static str,
    macs_per_image: u64,
    convs: Vec<ConvRow>,
    linears: Vec<LinearRow>,
    layerwise_ns: u64,
    engine_ns: u64,
    forward_bit_identical: bool,
}

fn speedup(base_ns: u64, fast_ns: u64) -> f64 {
    base_ns as f64 / fast_ns.max(1) as f64
}

fn bench_test(test: PaperTest, net: &Network, warmup: usize, reps: usize) -> TestReport {
    let input = deterministic_input(net.input_shape(), 0xB0A7 ^ test.name().len() as u64);

    // Per-layer activations from the direct per-layer path; acts[i] is
    // the input of layer i.
    let mut acts: Vec<Tensor> = vec![input.clone()];
    for layer in net.layers() {
        let next = layer.forward(acts.last().unwrap());
        acts.push(next);
    }

    let mut convs = Vec::new();
    let mut linears = Vec::new();
    for (i, layer) in net.layers().iter().enumerate() {
        match layer {
            Layer::Conv2d(c) => {
                let lin = &acts[i];
                let ishape = lin.shape();
                let reference = conv2d_im2col(lin, &c.kernels, &c.bias);
                let im2col_ns = median_ns(warmup, reps, || {
                    std::hint::black_box(conv2d_im2col(
                        std::hint::black_box(lin),
                        &c.kernels,
                        &c.bias,
                    ));
                });
                let packed = PackedKernels::pack(&c.kernels);
                let oshape = reference.shape();
                let cols_len = packed.kdim() * oshape.h * oshape.w;
                let mut cols = vec![0.0f32; cols_len];
                let mut out = vec![0.0f32; oshape.len()];
                let blocked_ns = median_ns(warmup, reps, || {
                    conv2d_gemm_packed_into(
                        std::hint::black_box(lin.as_slice()),
                        ishape,
                        &packed,
                        &c.bias,
                        &mut cols,
                        &mut out,
                    );
                    std::hint::black_box(&out);
                });
                convs.push(ConvRow {
                    layer: i,
                    rows: packed.rows(),
                    kdim: packed.kdim(),
                    ncols: oshape.h * oshape.w,
                    im2col_ns,
                    blocked_ns,
                    bit_identical: bits_equal(&out, reference.as_slice()),
                });
            }
            Layer::Linear(l) => {
                let lin = &acts[i];
                let mut out = vec![0.0f32; l.outputs];
                let ns = median_ns(warmup, reps, || {
                    linear(
                        std::hint::black_box(lin.as_slice()),
                        &l.weights,
                        &l.bias,
                        &mut out,
                    );
                    std::hint::black_box(&out);
                });
                linears.push(LinearRow {
                    layer: i,
                    inputs: l.inputs,
                    outputs: l.outputs,
                    ns,
                });
            }
            _ => {}
        }
    }

    // Full forward: allocating per-layer chain vs the workspace engine.
    let layerwise_ns = median_ns(warmup, reps, || {
        let mut t = input.clone();
        for layer in net.layers() {
            t = layer.forward(&t);
        }
        std::hint::black_box(&t);
    });
    let reference = acts.last().unwrap();
    let mut ws = Workspace::new();
    let mut engine_class = 0usize;
    let engine_ns = median_ns(warmup, reps, || {
        engine_class = net.infer(std::hint::black_box(&input), &mut ws).argmax();
    });
    let engine_out = net.infer(&input, &mut ws);
    let forward_bit_identical = bits_equal(engine_out.as_slice(), reference.as_slice())
        && engine_class == reference.argmax();

    TestReport {
        name: test.name(),
        macs_per_image: ArmModel::new(cnn_fpga::Board::Zedboard, net).macs_per_image(),
        convs,
        linears,
        layerwise_ns,
        engine_ns,
        forward_bit_identical,
    }
}

fn render_json(mode: &str, warmup: usize, reps: usize, reports: &[TestReport]) -> String {
    let mut j = String::from("{\n  \"benchmark\": \"hot_path\",\n");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"warmup\": {warmup},");
    let _ = writeln!(j, "  \"reps\": {reps},");
    j.push_str("  \"tests\": [\n");
    for (t, r) in reports.iter().enumerate() {
        let _ = writeln!(j, "    {{\"test\": \"{}\",", r.name);
        let _ = writeln!(j, "     \"macs_per_image\": {},", r.macs_per_image);
        j.push_str("     \"convs\": [\n");
        for (i, c) in r.convs.iter().enumerate() {
            let _ = write!(
                j,
                "       {{\"layer\": {}, \"rows\": {}, \"kdim\": {}, \"ncols\": {}, \
                 \"im2col_ns\": {}, \"blocked_ns\": {}, \"speedup\": {:.3}, \
                 \"bit_identical\": {}}}",
                c.layer,
                c.rows,
                c.kdim,
                c.ncols,
                c.im2col_ns,
                c.blocked_ns,
                speedup(c.im2col_ns, c.blocked_ns),
                c.bit_identical
            );
            j.push_str(if i + 1 < r.convs.len() { ",\n" } else { "\n" });
        }
        j.push_str("     ],\n     \"linears\": [\n");
        for (i, l) in r.linears.iter().enumerate() {
            let _ = write!(
                j,
                "       {{\"layer\": {}, \"inputs\": {}, \"outputs\": {}, \"ns\": {}}}",
                l.layer, l.inputs, l.outputs, l.ns
            );
            j.push_str(if i + 1 < r.linears.len() { ",\n" } else { "\n" });
        }
        j.push_str("     ],\n");
        let _ = writeln!(
            j,
            "     \"forward\": {{\"layerwise_ns\": {}, \"engine_ns\": {}, \
             \"speedup\": {:.3}, \"bit_identical\": {}}}",
            r.layerwise_ns,
            r.engine_ns,
            speedup(r.layerwise_ns, r.engine_ns),
            r.forward_bit_identical
        );
        j.push_str("    }");
        j.push_str(if t + 1 < reports.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let test4_conv = reports
        .iter()
        .find(|r| r.name == "Test 4")
        .and_then(|r| r.convs.iter().max_by_key(|c| c.rows * c.kdim * c.ncols))
        .map(|c| speedup(c.im2col_ns, c.blocked_ns))
        .unwrap_or(0.0);
    let all_bits = reports
        .iter()
        .all(|r| r.forward_bit_identical && r.convs.iter().all(|c| c.bit_identical));
    let _ = writeln!(j, "  \"test4_conv_speedup\": {test4_conv:.3},");
    let _ = writeln!(j, "  \"all_bit_identical\": {all_bits}");
    j.push_str("}\n");
    j
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let (mode, warmup, reps) = if smoke {
        ("smoke", 2, 9)
    } else {
        ("full", 5, 31)
    };

    println!("HOT PATH — blocked+packed engine vs scalar kernels ({mode}, median of {reps})\n");
    let mut reports = Vec::new();
    for test in PaperTest::ALL {
        let net = build_deterministic(&test.spec(), 2016).expect("valid paper spec");
        let r = bench_test(test, &net, warmup, reps);
        println!("{} ({} MACs/image)", r.name, r.macs_per_image);
        for c in &r.convs {
            println!(
                "  conv L{} {:>3}x{:<4} over {:<4} cols: im2col {:>9} ns  blocked {:>9} ns  \
                 {:>5.2}x  bits {}",
                c.layer,
                c.rows,
                c.kdim,
                c.ncols,
                c.im2col_ns,
                c.blocked_ns,
                speedup(c.im2col_ns, c.blocked_ns),
                if c.bit_identical { "ok" } else { "DIFFER" }
            );
        }
        for l in &r.linears {
            println!(
                "  linear L{} {:>4} -> {:<3}: {:>9} ns",
                l.layer, l.inputs, l.outputs, l.ns
            );
        }
        println!(
            "  forward: layerwise {:>9} ns  engine {:>9} ns  {:>5.2}x  bits {}\n",
            r.layerwise_ns,
            r.engine_ns,
            speedup(r.layerwise_ns, r.engine_ns),
            if r.forward_bit_identical {
                "ok"
            } else {
                "DIFFER"
            }
        );
        reports.push(r);
    }

    let json = render_json(mode, warmup, reps, &reports);
    atomic_write(&out_path, json.as_bytes()).expect("atomic result commit");
    println!("results committed atomically to {out_path}");

    // Regression gates — these make the benchmark a test.
    for r in &reports {
        assert!(
            r.forward_bit_identical,
            "{}: engine forward is not bit-identical to the layer chain",
            r.name
        );
        for c in &r.convs {
            assert!(
                c.bit_identical,
                "{} conv L{}: blocked output is not bit-identical to im2col",
                r.name, c.layer
            );
        }
    }
    let test4 = reports
        .iter()
        .find(|r| r.name == "Test 4")
        .expect("Test 4 ran");
    let big = test4
        .convs
        .iter()
        .max_by_key(|c| c.rows * c.kdim * c.ncols)
        .expect("Test 4 has conv layers");
    let s = speedup(big.im2col_ns, big.blocked_ns);
    assert!(
        s >= 2.0,
        "blocked conv is only {s:.2}x im2col on the Test-4 CIFAR shape (layer {}, \
         {}x{} over {} cols) — the engine regressed",
        big.layer,
        big.rows,
        big.kdim,
        big.ncols
    );
    println!("gates: bit-identity ok, Test-4 blocked conv {s:.2}x >= 2x ok");
}
