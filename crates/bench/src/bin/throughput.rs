//! Throughput sweep (extension): classified images per second as a
//! function of batch size, for the naive and optimized Test-1 builds —
//! showing how DATAFLOW amortizes the pipeline fill. Validated at
//! cycle level with the `cnn-fpga::cosim` simulator.

use cnn_fpga::cosim::simulate;
use cnn_framework::weights::build_random;
use cnn_framework::NetworkSpec;
use cnn_hls::ir::lower;
use cnn_hls::schedule::schedule;
use cnn_hls::{calibration, DirectiveSet};

fn main() {
    let net = build_random(&NetworkSpec::paper_usps_small(true), 2016).unwrap();
    let ir = lower(&net);
    let clock = calibration::FABRIC_CLOCK_HZ as f64;

    println!("THROUGHPUT vs BATCH SIZE (Test-1 network, cycle-level co-simulation)\n");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "batch", "naive img/s", "optimized img/s", "ratio"
    );
    println!("{}", "-".repeat(55));

    let naive = schedule(&ir, &DirectiveSet::naive());
    let opt = schedule(&ir, &DirectiveSet::optimized());
    for batch in [1usize, 2, 4, 8, 16, 64, 256, 1000] {
        let rn = simulate(&naive, batch);
        let ro = simulate(&opt, batch);
        let tn = batch as f64 / (rn.total_cycles as f64 / clock);
        let to = batch as f64 / (ro.total_cycles as f64 / clock);
        println!("{batch:>8} {tn:>16.1} {to:>16.1} {:>8.2}x", to / tn);
    }

    println!(
        "\nsteady-state bound: {:.1} img/s (interval {} cycles); the sweep\n\
         converges to it as the pipeline-fill latency amortizes.",
        clock / opt.interval_cycles as f64,
        opt.interval_cycles
    );
}
