//! Regenerates **Fig. 6**: example images from the two datasets —
//! one synthetic USPS-like digit per class (16x16 grayscale) and one
//! synthetic CIFAR-10-like image per class (32x32 RGB, shown by
//! luminance).

use cnn_datasets::render::{ascii_channel, ascii_luminance};
use cnn_datasets::{cifar, CifarLike, UspsLike};
use cnn_tensor::init::seeded_rng;

fn print_pairs(arts: &[(String, String)]) {
    for pair in arts.chunks(2) {
        let left: Vec<&str> = pair[0].1.lines().collect();
        let right: Vec<&str> = pair
            .get(1)
            .map(|p| p.1.lines().collect())
            .unwrap_or_default();
        println!(
            "  {:<20}{}",
            pair[0].0,
            pair.get(1).map(|p| p.0.as_str()).unwrap_or("")
        );
        for (i, l) in left.iter().enumerate() {
            println!("  {:<20}{}", l, right.get(i).copied().unwrap_or(""));
        }
        println!();
    }
}

fn main() {
    println!("FIG. 6(a): USPS-like dataset samples (digits 0-9, 16x16 grayscale)\n");
    let usps = UspsLike::default();
    let mut rng = seeded_rng(6);
    let digits: Vec<(String, String)> = (0..10)
        .map(|d| {
            let img = usps.render_digit(d, &mut rng);
            (format!("digit {d}:"), ascii_channel(&img, 0))
        })
        .collect();
    print_pairs(&digits);

    println!("FIG. 6(b): CIFAR-10-like dataset samples (32x32 RGB, luminance view)\n");
    let cif = CifarLike::default();
    let mut rng = seeded_rng(7);
    let scenes: Vec<(String, String)> = (0..10)
        .map(|c| {
            let img = cif.render(c, &mut rng);
            (format!("{}:", cifar::CLASS_NAMES[c]), ascii_luminance(&img))
        })
        .collect();
    print_pairs(&scenes);
}
