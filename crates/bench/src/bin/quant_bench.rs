//! Reproducible int8-engine benchmark: what does calibrated int8
//! quantization actually buy — and cost — on this machine?
//!
//! Three families of measurements, each with a hard gate so a
//! regression fails the run rather than just shifting a number:
//!
//! * **Kernel speed** — the pair-interleaved int8 GEMM
//!   ([`qgemm_bias_into`]) vs the f32 blocked GEMM
//!   ([`gemm_bias_into`]) on the Test-4 convolution shapes
//!   (12×75 over 784 columns, 36×300 over 100 columns), median of N
//!   with warmup. Gate: **int8 ≥ 2× f32** on every shape.
//! * **Accuracy** — each paper network is built deterministically,
//!   calibrated on a prefix of a deterministic image stream, and both
//!   engines classify the same labeled set. Gate: **top-1 error moves
//!   at most 1 percentage point** from f32 to int8.
//! * **Determinism** — every SIMD tier the host supports (scalar,
//!   AVX2, AVX-512, VNNI) must produce bit-identical accumulators on
//!   every shape; reruns must be bit-identical; batched quantized
//!   inference must match single-image inference bit for bit. Gate:
//!   **zero mismatches**.
//!
//! Results are committed atomically to `BENCH_quant.json` (override
//! with `--out <path>`); `--smoke` shrinks rep and image counts for
//! CI. Everything is deterministic: weights from
//! [`build_deterministic`] (SplitMix64), images and codes from the
//! same stream — no ambient RNG, no dataset download, so reruns of
//! the committed configuration reproduce the file byte-for-byte
//! (timings aside).

use cnn_framework::weights::build_deterministic;
use cnn_framework::PaperTest;
use cnn_nn::QuantNetwork;
use cnn_store::atomic_write;
use cnn_store::hash::SplitMix64;
use cnn_tensor::ops::gemm::gemm_bias_into;
use cnn_tensor::ops::qgemm::{
    available_qsimd_tiers, qgemm_bias_into, qgemm_bias_into_tier, qsimd_tier,
};
use cnn_tensor::{PackedKernels, PackedKernelsI8, Shape, Tensor, Tensor4, Workspace};
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall time of `reps` calls to `f`, in nanoseconds, after
/// `warmup` untimed calls.
fn median_ns(warmup: usize, reps: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn deterministic_images(shape: Shape, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let data: Vec<f32> = (0..shape.len())
                .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
                .collect();
            Tensor::from_vec(shape, data)
        })
        .collect()
}

/// Deterministic i8 codes in the symmetric range `[-127, 127]`.
fn deterministic_codes(n: usize, seed: u64) -> Vec<i8> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| ((rng.next_f64() * 2.0 - 1.0) * 127.0).round() as i8)
        .collect()
}

/// The Test-4 convolution shapes as GEMM problems
/// `(label, rows, in-channels, kh, kw, ncols)`.
const SHAPES: [(&str, usize, usize, usize, usize, usize); 2] = [
    ("test4-conv1", 12, 3, 5, 5, 784),
    ("test4-conv2", 36, 12, 5, 5, 100),
];

struct ShapeRow {
    label: &'static str,
    rows: usize,
    kdim: usize,
    ncols: usize,
    f32_ns: u64,
    int8_ns: u64,
    tiers_bit_identical: bool,
    rerun_bit_identical: bool,
}

fn speedup(base_ns: u64, fast_ns: u64) -> f64 {
    base_ns as f64 / fast_ns.max(1) as f64
}

fn bench_shape(
    shape: (&'static str, usize, usize, usize, usize, usize),
    warmup: usize,
    reps: usize,
) -> ShapeRow {
    let (label, rows, c, kh, kw, ncols) = shape;
    let kdim = c * kh * kw;
    let seed = 0x0117 ^ (rows * 31 + ncols) as u64;

    // f32 side: packed weights, dense B, blocked GEMM.
    let mut rng = SplitMix64::new(seed);
    let kernels = Tensor4::from_fn(rows, c, kh, kw, |_, _, _, _| {
        (rng.next_f64() * 2.0 - 1.0) as f32
    });
    let fbias: Vec<f32> = (0..rows).map(|_| (rng.next_f64() - 0.5) as f32).collect();
    let fb: Vec<f32> = (0..kdim * ncols)
        .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
        .collect();
    let fpacked = PackedKernels::pack(&kernels);
    let mut fout = vec![0.0f32; rows * ncols];
    let f32_ns = median_ns(warmup, reps, || {
        gemm_bias_into(
            &fpacked,
            std::hint::black_box(&fb),
            &fbias,
            ncols,
            &mut fout,
        );
        std::hint::black_box(&fout);
    });

    // int8 side: the same problem size on the quantized engine —
    // pair-interleaved B, widening multiplies, i32 accumulate.
    let qweights = deterministic_codes(rows * kdim, seed ^ 0xAB);
    let qpacked = PackedKernelsI8::pack(&qweights, rows, kdim);
    let qbias: Vec<i32> = (0..rows as i32).map(|r| r * 17 - 100).collect();
    let kpairs = qpacked.kpairs();
    let bcodes = deterministic_codes(kdim * ncols, seed ^ 0xCD);
    // Pair-interleave column-major: b[(kp*ncols + j)*2 + d] = codes
    // for kdim rows 2kp and 2kp+1 of column j (zero when kdim is odd).
    let mut qb = vec![0i16; kpairs * ncols * 2];
    for j in 0..ncols {
        for ki in 0..kdim {
            qb[((ki / 2) * ncols + j) * 2 + (ki & 1)] = bcodes[ki * ncols + j] as i16;
        }
    }
    let mut qout = vec![0i32; rows * ncols];
    let int8_ns = median_ns(warmup, reps, || {
        qgemm_bias_into(
            &qpacked,
            std::hint::black_box(&qb),
            &qbias,
            ncols,
            &mut qout,
        );
        std::hint::black_box(&qout);
    });

    // Cross-tier and rerun bit-identity on this exact problem.
    let tiers = available_qsimd_tiers();
    let reference = qout.clone();
    let mut tiers_bit_identical = true;
    for tier in &tiers {
        let mut out = vec![0i32; rows * ncols];
        qgemm_bias_into_tier(*tier, &qpacked, &qb, &qbias, ncols, &mut out);
        tiers_bit_identical &= out == reference;
    }
    let mut rerun = vec![0i32; rows * ncols];
    qgemm_bias_into(&qpacked, &qb, &qbias, ncols, &mut rerun);
    let rerun_bit_identical = rerun == reference;

    ShapeRow {
        label,
        rows,
        kdim,
        ncols,
        f32_ns,
        int8_ns,
        tiers_bit_identical,
        rerun_bit_identical,
    }
}

struct AccuracyRow {
    name: &'static str,
    images: usize,
    f32_error: f64,
    int8_error: f64,
    agreement: f64,
    batch_bit_identical: bool,
}

fn bench_accuracy(test: PaperTest, n_images: usize, n_cal: usize) -> AccuracyRow {
    let net = build_deterministic(&test.spec(), 2016).expect("valid paper spec");
    let images = deterministic_images(
        net.input_shape(),
        n_images,
        0x0117_ACC0 ^ test.name().len() as u64,
    );
    let labels: Vec<usize> = (0..n_images).map(|i| i % net.classes()).collect();
    let quant = QuantNetwork::quantize(&net, &images[..n_cal.min(n_images)]);

    let f32_preds: Vec<usize> = images.iter().map(|t| net.predict(t)).collect();
    let q_preds = quant.predict_batch(&images);
    let wrong = |preds: &[usize]| preds.iter().zip(&labels).filter(|(p, l)| p != l).count();
    let agree = f32_preds
        .iter()
        .zip(&q_preds)
        .filter(|(a, b)| a == b)
        .count();

    // Batched quantized inference must match single-image inference
    // bit for bit — integer arithmetic leaves no order freedom.
    let mut ws = Workspace::new();
    let batched = quant.infer_batch_quant(&images[..8.min(n_images)], &mut ws);
    let batch_bit_identical = batched.iter().zip(&images).all(|(b, img)| {
        let lone = quant.infer_quant(img, &mut ws);
        lone.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
    });

    AccuracyRow {
        name: test.name(),
        images: n_images,
        f32_error: wrong(&f32_preds) as f64 / n_images as f64,
        int8_error: wrong(&q_preds) as f64 / n_images as f64,
        agreement: agree as f64 / n_images as f64,
        batch_bit_identical,
    }
}

fn render_json(
    mode: &str,
    warmup: usize,
    reps: usize,
    tier: &str,
    tiers: &[String],
    shapes: &[ShapeRow],
    accuracy: &[AccuracyRow],
) -> String {
    let mut j = String::from("{\n  \"benchmark\": \"quant\",\n");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"warmup\": {warmup},");
    let _ = writeln!(j, "  \"reps\": {reps},");
    let _ = writeln!(j, "  \"dispatch_tier\": \"{tier}\",");
    let _ = writeln!(
        j,
        "  \"available_tiers\": [{}],",
        tiers
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    j.push_str("  \"shapes\": [\n");
    for (i, s) in shapes.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"label\": \"{}\", \"rows\": {}, \"kdim\": {}, \"ncols\": {}, \
             \"f32_ns\": {}, \"int8_ns\": {}, \"speedup\": {:.3}, \
             \"tiers_bit_identical\": {}, \"rerun_bit_identical\": {}}}",
            s.label,
            s.rows,
            s.kdim,
            s.ncols,
            s.f32_ns,
            s.int8_ns,
            speedup(s.f32_ns, s.int8_ns),
            s.tiers_bit_identical,
            s.rerun_bit_identical
        );
        j.push_str(if i + 1 < shapes.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n  \"accuracy\": [\n");
    for (i, a) in accuracy.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"test\": \"{}\", \"images\": {}, \"f32_error\": {:.4}, \
             \"int8_error\": {:.4}, \"error_delta_pp\": {:.2}, \"top1_agreement\": {:.4}, \
             \"batch_bit_identical\": {}}}",
            a.name,
            a.images,
            a.f32_error,
            a.int8_error,
            (a.int8_error - a.f32_error).abs() * 100.0,
            a.agreement,
            a.batch_bit_identical
        );
        j.push_str(if i + 1 < accuracy.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    let min_speedup = shapes
        .iter()
        .map(|s| speedup(s.f32_ns, s.int8_ns))
        .fold(f64::INFINITY, f64::min);
    let max_delta = accuracy
        .iter()
        .map(|a| (a.int8_error - a.f32_error).abs())
        .fold(0.0f64, f64::max);
    let all_bits = shapes
        .iter()
        .all(|s| s.tiers_bit_identical && s.rerun_bit_identical)
        && accuracy.iter().all(|a| a.batch_bit_identical);
    let _ = writeln!(j, "  \"min_shape_speedup\": {min_speedup:.3},");
    let _ = writeln!(j, "  \"max_error_delta_pp\": {:.2},", max_delta * 100.0);
    let _ = writeln!(j, "  \"all_bit_identical\": {all_bits}");
    j.push_str("}\n");
    j
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_quant.json".to_string());
    let (mode, warmup, reps, n_images) = if smoke {
        ("smoke", 2, 9, 120)
    } else {
        ("full", 5, 31, 400)
    };
    let n_cal = 32;

    let tier = qsimd_tier().label();
    let tiers: Vec<String> = available_qsimd_tiers()
        .iter()
        .map(|t| t.label().to_string())
        .collect();
    println!(
        "QUANT — int8 engine vs f32 blocked GEMM ({mode}, median of {reps}, \
         dispatch {tier}, tiers [{}])\n",
        tiers.join(", ")
    );

    let shapes: Vec<ShapeRow> = SHAPES
        .iter()
        .map(|&shape| {
            let (label, rows, _, _, _, ncols) = shape;
            let r = bench_shape(shape, warmup, reps);
            println!(
                "  {label} {rows}x{} over {ncols} cols: f32 {:>9} ns  int8 {:>9} ns  \
                 {:>5.2}x  tiers {}  rerun {}",
                r.kdim,
                r.f32_ns,
                r.int8_ns,
                speedup(r.f32_ns, r.int8_ns),
                if r.tiers_bit_identical {
                    "ok"
                } else {
                    "DIFFER"
                },
                if r.rerun_bit_identical {
                    "ok"
                } else {
                    "DIFFER"
                },
            );
            r
        })
        .collect();

    println!();
    let accuracy: Vec<AccuracyRow> = PaperTest::ALL
        .iter()
        .map(|&test| {
            let a = bench_accuracy(test, n_images, n_cal);
            println!(
                "  {} over {} images: f32 err {:>5.1}%  int8 err {:>5.1}%  \
                 delta {:>4.2}pp  top-1 agree {:>5.1}%  batch bits {}",
                a.name,
                a.images,
                a.f32_error * 100.0,
                a.int8_error * 100.0,
                (a.int8_error - a.f32_error).abs() * 100.0,
                a.agreement * 100.0,
                if a.batch_bit_identical {
                    "ok"
                } else {
                    "DIFFER"
                },
            );
            a
        })
        .collect();

    let json = render_json(mode, warmup, reps, tier, &tiers, &shapes, &accuracy);
    atomic_write(&out_path, json.as_bytes()).expect("atomic result commit");
    println!("\nresults committed atomically to {out_path}");

    // Hard gates — these make the benchmark a test.
    for s in &shapes {
        assert!(
            s.tiers_bit_identical,
            "{}: SIMD tiers disagree bit-for-bit on the int8 GEMM",
            s.label
        );
        assert!(
            s.rerun_bit_identical,
            "{}: int8 GEMM rerun is not bit-identical",
            s.label
        );
        let x = speedup(s.f32_ns, s.int8_ns);
        assert!(
            x >= 2.0,
            "{}: int8 GEMM is only {x:.2}x f32 on {}x{} over {} cols — the engine regressed",
            s.label,
            s.rows,
            s.kdim,
            s.ncols
        );
    }
    for a in &accuracy {
        assert!(
            a.batch_bit_identical,
            "{}: batched quantized inference diverged from single-image",
            a.name
        );
        let delta = (a.int8_error - a.f32_error).abs();
        assert!(
            delta <= 0.01,
            "{}: int8 top-1 error moved {:.2}pp from f32 (gate: 1pp)",
            a.name,
            delta * 100.0
        );
    }
    let min_x = shapes
        .iter()
        .map(|s| speedup(s.f32_ns, s.int8_ns))
        .fold(f64::INFINITY, f64::min);
    println!(
        "gates: int8 >= 2x f32 on every shape (min {min_x:.2}x), error delta <= 1pp, \
         tier/rerun/batch bit-identity ok"
    );
}
