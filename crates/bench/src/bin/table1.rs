//! Regenerates **Table I**: hardware implementation vs. software one —
//! predicted error, execution time, speedup, power and energy for the
//! four case studies.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin table1            # paper sizes
//! cargo run --release -p cnn-bench --bin table1 -- --quick # smoke run
//! ```

use cnn_bench::build_experiment;
use cnn_framework::report::{render_table1, run_table1_row};
use cnn_framework::PaperTest;

fn main() {
    let mut rows = Vec::new();
    for test in PaperTest::ALL {
        let e = build_experiment(test);
        let row = run_table1_row(&e);
        eprintln!(
            "[cnn-bench] {}: SW err {:.1}%, HW err {:.1}%, speedup {:.2}X",
            test.name(),
            row.sw_error * 100.0,
            row.hw_error * 100.0,
            row.speedup
        );
        rows.push((test, row));
    }
    if std::env::args().any(|a| a == "--json") {
        let measured: Vec<_> = rows.iter().map(|(_, r)| r).collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&measured).expect("rows serialize")
        );
        return;
    }
    println!("\nTABLE I: Hardware implementation vs. software one");
    println!("(measured rows are this reproduction; '(paper)' rows are the published values)\n");
    print!("{}", render_table1(&rows));
}
