//! Zero-downtime rollout sweep: fault-plan × crash-point ×
//! canary-regression grid over the blue-green rollout controller.
//!
//! Each cell stages a v1 → v2 rollout of the Test-2 stack over a
//! three-device fleet and drives it interleaved with version-pinned
//! traffic, under one of four release pathologies:
//!
//! | scenario     | what ships in v2                  | expected end    |
//! |--------------|-----------------------------------|-----------------|
//! | `clean`      | a healthy release                 | promoted        |
//! | `swap_upset` | SEUs upset every reprogramming    | promoted (healed)|
//! | `regression` | poisoned canary expectations      | rolled back     |
//! | `hostile`    | abandons every real dispatch      | rolled back (SLO)|
//!
//! and — the crash axis — repeats every scenario with the artifact
//! store killed at assorted filesystem operations, then restarts from
//! the on-disk journal and resumes to a terminal phase.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin rollout_sweep [-- --smoke] [-- --out FILE]
//! ```
//!
//! The run **asserts** the PR's rollout SLO, so a regression fails CI
//! rather than just changing a number in a file:
//!
//! * **zero dropped requests** in every cell: each request is served
//!   by its pinned version's hardware or that version's bit-exact
//!   software path — and zero *wrong* answers anywhere, mixed-version
//!   fleets included;
//! * the `clean` rollout keeps mid-rollout availability ≥ 99.9% (the
//!   zero-downtime claim) and actually mixes versions on the wire;
//! * `swap_upset` proves the post-swap canary gate: the upset image
//!   fails probes, reloads from the new release's golden store, and
//!   the rollout still promotes;
//! * `regression` rolls back with the poisoned release having served
//!   **zero** requests, and post-rollback service is bit-exact v1;
//! * `hostile` passes every canary but dies on real traffic — only
//!   the observed-traffic SLO window catches it and trips the
//!   whole-fleet rollback;
//! * at every crash point the reloaded journal parses, resume
//!   normalization leaves the fleet **old-or-new** (never torn), and
//!   the resumed rollout still reaches its scenario's terminal phase.
//!
//! Everything is deterministic — weights from [`build_deterministic`],
//! images from a SplitMix64 stream, upsets from seeded SEU streams,
//! crash points from a fixed op grid — so the committed
//! `BENCH_rollout.json` is exactly reproducible.

use cnn_fpga::fault::FaultPlan;
use cnn_framework::weights::build_deterministic;
use cnn_framework::{
    NetworkSpec, RolloutOptions, RolloutStageError, WeightSource, Workflow, WorkflowArtifacts,
};
use cnn_serve::{RollbackReason, RolloutConfig, SdcConfig};
use cnn_store::hash::SplitMix64;
use cnn_store::{atomic_write, ArtifactKind, FsFaultPlan, RolloutJournal, RolloutPhase, Store};
use cnn_tensor::{Shape, Tensor};
use std::fmt::Write as _;

/// SEU seed for the swap-upset scenario's new-release plan.
const SEU_SEED: u64 = 0x0B17_F11B;

/// CI gate: minimum hardware-served fraction while the clean rollout
/// is in flight (the zero-downtime claim).
const MID_AVAILABILITY_MIN: f64 = 0.999;

/// One release pathology swept.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Scenario {
    Clean,
    SwapUpset,
    Regression,
    Hostile,
}

impl Scenario {
    const ALL: [Scenario; 4] = [
        Scenario::Clean,
        Scenario::SwapUpset,
        Scenario::Regression,
        Scenario::Hostile,
    ];

    fn name(self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::SwapUpset => "swap_upset",
            Scenario::Regression => "regression",
            Scenario::Hostile => "hostile",
        }
    }

    /// The drill options this scenario stages.
    fn options(self) -> RolloutOptions {
        let mut o = RolloutOptions::clean("usps");
        match self {
            Scenario::Clean => {}
            Scenario::SwapUpset => {
                // Every reprogramming (and every later dispatch) of
                // the new release upsets a weight bit. The post-swap
                // canary gate plus per-request attestation must turn
                // that into reloads, never wrong answers.
                o.new_plan = FaultPlan::seu(SEU_SEED, 1);
                o.pool.sdc = SdcConfig {
                    scrub_every: 0,
                    canary_every: 0,
                    attest_every: 1,
                    probation: 2,
                };
            }
            Scenario::Regression => o.canary_regression = true,
            Scenario::Hostile => {
                // Canaries bypass the DMA transport, so this release
                // probes clean and abandons every real dispatch — a
                // longer settle window gives the observed-traffic SLO
                // room to catch it before the next device drains.
                o.hostile_new = true;
                o.rollout = RolloutConfig {
                    settle_requests: 24,
                    ..RolloutConfig::default()
                };
            }
        }
        o
    }

    /// Terminal phase every cell of this scenario must reach.
    fn expected_phase(self) -> RolloutPhase {
        match self {
            Scenario::Clean | Scenario::SwapUpset => RolloutPhase::Promoted,
            Scenario::Regression | Scenario::Hostile => RolloutPhase::RolledBack,
        }
    }
}

fn deterministic_images(shape: Shape, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let data: Vec<f32> = (0..shape.len())
                .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
                .collect();
            Tensor::from_vec(shape, data)
        })
        .collect()
}

fn scratch(tag: &str, seq: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cnn-bench-rollout-{}-{tag}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

struct Cell {
    scenario: &'static str,
    crash_op: Option<u64>,
    crashed: bool,
    resumed: bool,
    total: usize,
    wrong: usize,
    mid_availability: f64,
    new_routed: usize,
    final_phase: &'static str,
    rollback_reason: Option<&'static str>,
}

fn counter_total(snap: &cnn_trace::TraceSnapshot, name: &str, label: Option<(&str, &str)>) -> u64 {
    snap.counters
        .iter()
        .filter(|c| c.name == name)
        .filter(|c| label.is_none_or(|(k, v)| c.labels.iter().any(|(lk, lv)| lk == k && lv == v)))
        .map(|c| c.value)
        .sum()
}

fn phase_name(p: RolloutPhase) -> &'static str {
    match p {
        RolloutPhase::Running => "running",
        RolloutPhase::RollingBack => "rolling_back",
        RolloutPhase::Promoted => "promoted",
        RolloutPhase::RolledBack => "rolled_back",
    }
}

/// Runs one cell: stage + drive, optionally under an injected crash,
/// then (on crash) restart from the journal and resume to terminal.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    old: &WorkflowArtifacts,
    new: &WorkflowArtifacts,
    images: &[Tensor],
    scenario: Scenario,
    crash_op: Option<u64>,
    requests: usize,
    seq: usize,
) -> Cell {
    let dir = scratch(scenario.name(), seq);
    cnn_trace::reset();
    cnn_trace::enable();

    // ---- first life: runs to completion unless the store dies ----
    let first = (|| -> Result<cnn_framework::RolloutDrillReport, cnn_store::StoreError> {
        let mut store = match crash_op {
            Some(op) => Store::open_faulty(&dir, FsFaultPlan::crash_at(op, false))?,
            None => Store::open(&dir).expect("real store opens"),
        };
        let mut h = match old.stage_rollout(new, images, &scenario.options(), &mut store, None) {
            Ok(h) => h,
            Err(RolloutStageError::Store(e)) => return Err(e),
            Err(RolloutStageError::Workflow(e)) => panic!("staging failed: {e}"),
        };
        h.drive(requests, &mut store)
    })();

    let (report, crashed, resumed) = match first {
        Ok(r) => (r, false, false),
        Err(e) => {
            assert!(
                e.is_crash(),
                "{}: only the injected crash may fail: {e}",
                scenario.name()
            );
            // ---- second life: restart purely from disk ----
            let mut store = Store::open(&dir).expect("store reopens after crash");
            let journal = match store.get(ArtifactKind::Rollout, "rollout/usps") {
                Ok(txt) => RolloutJournal::parse(std::str::from_utf8(&txt).expect("utf8"))
                    .expect("a committed journal always parses"),
                Err(_) => {
                    // Died before the first journal commit: the fleet
                    // never left v1; nothing to resume or verify.
                    return Cell {
                        scenario: scenario.name(),
                        crash_op,
                        crashed: true,
                        resumed: false,
                        total: 0,
                        wrong: 0,
                        mid_availability: 1.0,
                        new_routed: 0,
                        final_phase: "never_started",
                        rollback_reason: None,
                    };
                }
            };
            if !journal.in_flight() {
                // The crash landed after the terminal record: nothing
                // to resume, but the journal must be whole.
                assert!(journal.fleet_is_old_or_new());
            }
            let mut h = old
                .stage_rollout(new, images, &scenario.options(), &mut store, Some(journal))
                .expect("resume staging on a healthy store");
            assert!(
                h.rollout.journal().fleet_is_old_or_new(),
                "{}: resume normalization left a torn device",
                scenario.name()
            );
            let r = h.drive(requests, &mut store).expect("resumed drive");
            (r, true, true)
        }
    };
    let snap = cnn_trace::snapshot();
    cnn_trace::disable();

    // ---- gates every cell must pass --------------------------------
    let name = scenario.name();
    assert_eq!(
        report.final_phase,
        scenario.expected_phase(),
        "{name} (crash {crash_op:?}): wrong terminal phase"
    );
    assert_eq!(
        report.wrong, 0,
        "{name} (crash {crash_op:?}): a wrong answer escaped"
    );
    assert_eq!(
        report.total, requests,
        "{name} (crash {crash_op:?}): a request was dropped"
    );
    assert!(
        report.served_versions.iter().all(|v| *v == 1 || *v == 2),
        "{name}: requests must pin exactly v1 or v2"
    );
    if resumed {
        assert!(
            counter_total(&snap, "cnn_rollout_resumes_total", None) >= 1,
            "{name} (crash {crash_op:?}): resume must be accounted"
        );
    }
    // The terminal journal on disk is whole and old-or-new, and its
    // pins are released back to gc.
    let mut store = Store::open(&dir).expect("store reopens for audit");
    let txt = store
        .get(ArtifactKind::Rollout, "rollout/usps")
        .expect("terminal journal on disk");
    let j = RolloutJournal::parse(std::str::from_utf8(&txt).expect("utf8")).expect("parses");
    assert!(!j.in_flight(), "{name}: journal must be terminal");
    assert!(j.fleet_is_old_or_new(), "{name}: torn device at rest");
    assert!(
        store.rollout_pins().expect("pins read").is_empty(),
        "{name}: terminal rollout must release its gc pins"
    );
    match scenario {
        Scenario::Clean => {
            assert!(
                report.mid_availability() >= MID_AVAILABILITY_MIN,
                "clean (crash {crash_op:?}): mid-rollout availability {:.4} under {}",
                report.mid_availability(),
                MID_AVAILABILITY_MIN
            );
            assert!(
                resumed || report.new_routed > 0,
                "clean: canary traffic must reach v2"
            );
            assert_eq!(j.on_new(), 3, "clean: whole fleet on v2");
        }
        Scenario::SwapUpset => {
            assert!(
                resumed
                    || counter_total(
                        &snap,
                        "cnn_rollout_canary_probes_total",
                        Some(("result", "fail"))
                    ) >= 1,
                "swap_upset: the upset image must fail at least one probe"
            );
            assert_eq!(j.on_new(), 3, "swap_upset: whole fleet on v2");
        }
        Scenario::Regression => {
            assert_eq!(
                report.new_routed, 0,
                "regression: the poisoned release must never take traffic"
            );
            assert_eq!(j.on_new(), 0, "regression: whole fleet back on v1");
            if !resumed {
                assert_eq!(report.rollback_reason, Some(RollbackReason::Canary));
            }
        }
        Scenario::Hostile => {
            assert_eq!(j.on_new(), 0, "hostile: whole fleet back on v1");
            if !resumed {
                assert_eq!(report.rollback_reason, Some(RollbackReason::Slo));
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    Cell {
        scenario: name,
        crash_op,
        crashed,
        resumed,
        total: report.total,
        wrong: report.wrong,
        mid_availability: report.mid_availability(),
        new_routed: report.new_routed,
        final_phase: phase_name(report.final_phase),
        rollback_reason: report.rollback_reason.map(RollbackReason::name),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_rollout.json".to_string());
    let requests = if smoke { 80 } else { 160 };
    let crash_ops: &[u64] = if smoke {
        &[7, 19, 41]
    } else {
        &[3, 7, 12, 19, 27, 36, 48, 62, 80, 110]
    };

    eprintln!("[cnn-bench] building both releases of the Test-2 stack...");
    let build = |seed: u64| {
        let spec = NetworkSpec::paper_usps_small(true);
        let net = build_deterministic(&spec, seed).expect("valid paper spec");
        Workflow::new(spec, WeightSource::Trained(Box::new(net)))
            .run()
            .expect("the paper network fits the Zedboard")
    };
    let old = build(2016);
    let new = build(2017);
    let images = deterministic_images(old.network.input_shape(), 12, 0x5DC5);

    println!(
        "ROLLOUT SWEEP: {requests} requests/cell, 3 devices, v1 -> v2, \
         {} crash points per scenario\n",
        crash_ops.len()
    );
    println!(
        "{:>11}  {:>6}  {:>8}  {:>6}  {:>5}  {:>8}  {:>6}  {:>12}  {:>8}",
        "scenario", "crash", "resumed", "served", "wrong", "mid-avail", "v2-rtd", "phase", "reason"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut seq = 0usize;
    for scenario in Scenario::ALL {
        for crash_op in std::iter::once(None).chain(crash_ops.iter().map(|op| Some(*op))) {
            seq += 1;
            let cell = run_cell(&old, &new, &images, scenario, crash_op, requests, seq);
            println!(
                "{:>11}  {:>6}  {:>8}  {:>6}  {:>5}  {:>8.4}  {:>6}  {:>12}  {:>8}",
                cell.scenario,
                cell.crash_op.map_or("-".into(), |op| op.to_string()),
                if cell.resumed { "yes" } else { "no" },
                cell.total,
                cell.wrong,
                cell.mid_availability,
                cell.new_routed,
                cell.final_phase,
                cell.rollback_reason.unwrap_or("-"),
            );
            cells.push(cell);
        }
    }

    let resumed = cells.iter().filter(|c| c.resumed).count();
    assert!(
        resumed >= Scenario::ALL.len(),
        "the op grid must actually kill at least one run per scenario \
         (got {resumed} resumes) — crash points are all past the end"
    );
    println!(
        "\nSLO held: {} cells, 0 dropped requests, 0 wrong answers; every crash point \
         restarted old-or-new from the journal and reached its scenario's terminal \
         phase ({} resumed runs); clean rollouts stayed >= {:.1}% available mid-flight.",
        cells.len(),
        resumed,
        MID_AVAILABILITY_MIN * 100.0
    );

    let mut json = String::from("{\n  \"benchmark\": \"rollout_sweep\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"requests_per_cell\": {requests},");
    let _ = writeln!(json, "  \"devices\": 3,");
    let _ = writeln!(json, "  \"mid_availability_min\": {MID_AVAILABILITY_MIN},");
    let _ = writeln!(json, "  \"resumed_cells\": {resumed},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"crash_op\": {}, \"crashed\": {}, \
             \"resumed\": {}, \"served\": {}, \"wrong\": {}, \"mid_availability\": {:.4}, \
             \"new_routed\": {}, \"final_phase\": \"{}\", \"rollback_reason\": {}}}",
            c.scenario,
            c.crash_op.map_or("null".into(), |op| op.to_string()),
            c.crashed,
            c.resumed,
            c.total,
            c.wrong,
            c.mid_availability,
            c.new_routed,
            c.final_phase,
            c.rollback_reason
                .map_or("null".into(), |r| format!("\"{r}\"")),
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    atomic_write(&out_path, json.as_bytes()).expect("atomic result commit");
    println!("results committed atomically to {out_path}");
}
