//! Silent-data-corruption sweep: seeded SEU injection across
//! upset-rate × detector-configuration cells.
//!
//! Each cell serves the same deterministic image batch over a
//! two-device pool whose first device suffers seeded single-event
//! upsets in its on-chip weight memory ([`FaultPlan::seu`]) — bit
//! flips that happen *behind* the DMA CRC trailers, so every transfer
//! checks out clean while classifications silently skew. The sweep
//! then turns the defense ladder on one layer at a time:
//!
//! | config     | scrub | canary | attest | what it proves            |
//! |------------|-------|--------|--------|---------------------------|
//! | `off`      |   —   |   —    |   —    | the corruption is *silent*|
//! | `scrub`    |   ✓   |   —    |   —    | checksums catch the upset |
//! | `canary`   |   —   |   ✓    |   —    | probes catch the skew     |
//! | `sampled`  |   ✓   |   ✓    |  1/4   | full ladder, sampled      |
//! | `attested` |   ✓   |   ✓    |  1/1   | zero escapes              |
//!
//! ```text
//! cargo run --release -p cnn-bench --bin corruption_sweep [-- --smoke] [-- --out FILE]
//! ```
//!
//! The run **asserts** the PR's correctness SLO, so a regression fails
//! CI rather than just changing a number in a file:
//!
//! * every cell is transport-silent: zero faults injected, zero CRC
//!   detections — the upsets are invisible to the existing defenses;
//! * with detectors `off`, wrong answers escape to clients with zero
//!   quarantines (the silence proof that motivates the ladder);
//! * with any detector on, corruption is detected and quarantined,
//!   and every completed incident heals within
//!   [`RECOVERY_CYCLES_MAX`] pool cycles of detection;
//! * the `attested` config serves **zero** wrong answers, and every
//!   other detector-on cell keeps escapes under its fractional gate
//!   ([`ESCAPES_SINGLE_NUM`], [`ESCAPES_SAMPLED_DEN`]);
//! * at least one incident timeline is reconstructed end to end from
//!   the flight recorder: detect → quarantine → weight reload →
//!   probation canaries → rejoin, all under one incident trace id.
//!
//! Everything is deterministic — weights from [`build_deterministic`],
//! images from a SplitMix64 stream, upsets from the seeded SEU stream
//! — so the committed `BENCH_corruption.json` is exactly reproducible.

use cnn_fpga::fault::{FaultPlan, RetryPolicy};
use cnn_framework::weights::build_deterministic;
use cnn_framework::{NetworkSpec, WeightSource, Workflow};
use cnn_serve::{PoolConfig, SdcConfig};
use cnn_store::atomic_write;
use cnn_store::hash::SplitMix64;
use cnn_tensor::{Shape, Tensor};
use cnn_trace::{FlightRecord, FlightStage};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// SEU seed for device 0's upset stream.
const SEU_SEED: u64 = 0x0B17_F11B;

/// Upset rates swept: an SEU lands on roughly one in `every`
/// dispatches of device 0.
const RATES: [u32; 2] = [4, 1];

/// CI gate: wrong answers allowed to escape a single-detector cell
/// (`scrub`, `canary`), as a fraction of the images served. Periodic
/// detectors bound corruption *dwell time*, not individual escapes —
/// answers served between an upset and the next probe still escape —
/// so the gate only has to prove detection keeps the device from
/// serving corrupt answers indefinitely.
const ESCAPES_SINGLE_NUM: usize = 2; // <= 2/3 of images

/// CI gate for the full `sampled` ladder: scrubbing + canaries +
/// 1-in-4 attestation must hold escapes to a third of the images even
/// at one SEU per dispatch. The `attested` config is gated at zero.
const ESCAPES_SAMPLED_DEN: usize = 3;

/// CI gate: pool cycles between a detector firing (`SdcDetect`) and
/// the device rejoining service (`Rejoin`), for every completed
/// incident. Covers the weight reload and the probation canaries the
/// device must pass while the pool keeps serving on the healthy
/// device.
const RECOVERY_CYCLES_MAX: u64 = 2_000_000;

/// Detector configurations swept, one ladder rung at a time.
fn configs() -> Vec<(&'static str, SdcConfig)> {
    vec![
        ("off", SdcConfig::off()),
        (
            "scrub",
            SdcConfig {
                scrub_every: 8,
                canary_every: 0,
                attest_every: 0,
                probation: 2,
            },
        ),
        (
            "canary",
            SdcConfig {
                scrub_every: 0,
                canary_every: 4,
                attest_every: 0,
                probation: 2,
            },
        ),
        ("sampled", SdcConfig::defended()),
        (
            "attested",
            SdcConfig {
                attest_every: 1,
                ..SdcConfig::defended()
            },
        ),
    ]
}

fn deterministic_images(shape: Shape, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let data: Vec<f32> = (0..shape.len())
                .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
                .collect();
            Tensor::from_vec(shape, data)
        })
        .collect()
}

/// One incident reconstructed from the flight recorder.
struct Incident {
    trace_id: u64,
    stages: Vec<FlightStage>,
    detector: u64,
    detect_clock: u64,
    rejoin_clock: Option<u64>,
}

impl Incident {
    fn healed(&self) -> bool {
        self.rejoin_clock.is_some()
    }

    fn recovery_cycles(&self) -> Option<u64> {
        self.rejoin_clock.map(|r| r - self.detect_clock)
    }
}

/// Groups this cell's quarantine incidents out of the flight ring.
/// Incident ids are minted under a fresh pool epoch per cell, so
/// `seen` (ids from earlier cells) separates cells even though the
/// ring is never cleared.
fn reconstruct_incidents(records: &[FlightRecord], seen: &mut HashSet<u64>) -> Vec<Incident> {
    let mut by_id: HashMap<u64, Vec<&FlightRecord>> = HashMap::new();
    let mut order = Vec::new();
    for r in records {
        if matches!(
            r.stage,
            FlightStage::SdcDetect
                | FlightStage::Quarantine
                | FlightStage::WeightReload
                | FlightStage::CanaryProbe
                | FlightStage::Rejoin
        ) {
            let v = by_id.entry(r.trace_id).or_default();
            v.push(r);
            if v.len() == 1 {
                order.push(r.trace_id);
            }
        }
    }
    order
        .into_iter()
        .filter(|id| seen.insert(*id))
        .map(|id| {
            let recs = &by_id[&id];
            let detect = recs
                .iter()
                .find(|r| r.stage == FlightStage::SdcDetect)
                .expect("an incident opens with SdcDetect");
            Incident {
                trace_id: id,
                stages: recs.iter().map(|r| r.stage).collect(),
                detector: detect.arg,
                detect_clock: detect.clock,
                rejoin_clock: recs
                    .iter()
                    .find(|r| r.stage == FlightStage::Rejoin)
                    .map(|r| r.clock),
            }
        })
        .collect()
}

struct Cell {
    rate_every: u32,
    config: &'static str,
    images: usize,
    escapes: usize,
    seu_injected: u64,
    quarantines: u64,
    quarantines_by: [u64; 3],
    scrub_runs: u64,
    scrub_dirty_banks: u64,
    canary_pass: u64,
    canary_fail: u64,
    attest_checks: u64,
    attest_mismatches: u64,
    correctness_breaches: u64,
    incidents: usize,
    healed: usize,
    max_recovery_cycles: u64,
}

fn counter_total(snap: &cnn_trace::TraceSnapshot, name: &str, label: Option<(&str, &str)>) -> u64 {
    snap.counters
        .iter()
        .filter(|c| c.name == name)
        .filter(|c| label.is_none_or(|(k, v)| c.labels.iter().any(|(lk, lv)| lk == k && lv == v)))
        .map(|c| c.value)
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_corruption.json".to_string());
    let n = if smoke { 48 } else { 160 };

    eprintln!("[cnn-bench] building the Test-2 stack (optimized Zedboard build)...");
    let spec = NetworkSpec::paper_usps_small(true);
    let net = build_deterministic(&spec, 2016).expect("valid paper spec");
    let artifacts = Workflow::new(spec, WeightSource::Trained(Box::new(net)))
        .run()
        .expect("the paper network fits the Zedboard");
    let images = deterministic_images(artifacts.network.input_shape(), n, 0x5DC5);
    let reference: Vec<usize> = images
        .iter()
        .map(|i| artifacts.network.predict(i))
        .collect();
    let policy = RetryPolicy::default();

    println!("CORRUPTION SWEEP: {n} images/cell, 2 devices (device 0 carries the SEUs)\n");
    println!(
        "{:>6}  {:>9}  {:>5}  {:>7}  {:>6}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}  {:>9}",
        "rate",
        "config",
        "seus",
        "escapes",
        "quar",
        "scrubs",
        "dirty",
        "canary",
        "attest",
        "healed",
        "recovery"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut seen_incidents: HashSet<u64> = HashSet::new();
    let mut showcase: Option<Incident> = None;
    for &every in &RATES {
        for (config_name, sdc) in configs() {
            cnn_trace::reset();
            cnn_trace::enable();
            let r = artifacts
                .serve_with_pool(
                    &images,
                    &[FaultPlan::seu(SEU_SEED, every), FaultPlan::none()],
                    &policy,
                    PoolConfig {
                        sdc,
                        ..PoolConfig::default()
                    },
                )
                .expect("sweep cell serves");
            let snap = cnn_trace::snapshot();
            let flight = cnn_trace::flight().snapshot();
            cnn_trace::disable();

            let escapes = r
                .predictions
                .iter()
                .zip(&reference)
                .filter(|(got, want)| got != want)
                .count();
            let incidents = reconstruct_incidents(&flight, &mut seen_incidents);
            let max_recovery = incidents
                .iter()
                .filter_map(Incident::recovery_cycles)
                .max()
                .unwrap_or(0);
            if showcase.is_none() {
                showcase = incidents
                    .iter()
                    .position(Incident::healed)
                    .map(|i| Incident {
                        trace_id: incidents[i].trace_id,
                        stages: incidents[i].stages.clone(),
                        detector: incidents[i].detector,
                        detect_clock: incidents[i].detect_clock,
                        rejoin_clock: incidents[i].rejoin_clock,
                    });
            }

            let cell = Cell {
                rate_every: every,
                config: config_name,
                images: n,
                escapes,
                seu_injected: counter_total(&snap, "cnn_sdc_seu_injected_total", None),
                quarantines: counter_total(&snap, "cnn_sdc_quarantines_total", None),
                quarantines_by: [
                    counter_total(
                        &snap,
                        "cnn_sdc_quarantines_total",
                        Some(("detector", "scrub")),
                    ),
                    counter_total(
                        &snap,
                        "cnn_sdc_quarantines_total",
                        Some(("detector", "canary")),
                    ),
                    counter_total(
                        &snap,
                        "cnn_sdc_quarantines_total",
                        Some(("detector", "attest")),
                    ),
                ],
                scrub_runs: counter_total(&snap, "cnn_scrub_runs_total", None),
                scrub_dirty_banks: counter_total(&snap, "cnn_scrub_dirty_banks_total", None),
                canary_pass: counter_total(
                    &snap,
                    "cnn_canary_probes_total",
                    Some(("result", "pass")),
                ),
                canary_fail: counter_total(
                    &snap,
                    "cnn_canary_probes_total",
                    Some(("result", "fail")),
                ),
                attest_checks: counter_total(&snap, "cnn_sdc_attest_checks_total", None),
                attest_mismatches: counter_total(&snap, "cnn_sdc_attest_mismatches_total", None),
                correctness_breaches: counter_total(
                    &snap,
                    "cnn_sdc_correctness_breaches_total",
                    None,
                ),
                incidents: incidents.len(),
                healed: incidents.iter().filter(|i| i.healed()).count(),
                max_recovery_cycles: max_recovery,
            };
            println!(
                "{:>6}  {:>9}  {:>5}  {:>7}  {:>6}  {:>6}  {:>7}  {:>7}  {:>7}  {:>7}  {:>9}",
                format!("1/{every}"),
                cell.config,
                cell.seu_injected,
                cell.escapes,
                cell.quarantines,
                cell.scrub_runs,
                cell.scrub_dirty_banks,
                cell.canary_pass + cell.canary_fail,
                cell.attest_checks,
                format!("{}/{}", cell.healed, cell.incidents),
                cell.max_recovery_cycles,
            );

            // --- CI gates ---------------------------------------------------
            // The upsets are transport-silent in every cell: the CRC
            // machinery that catches DMA corruption never fires.
            for (d, dev) in r.report.devices.iter().enumerate() {
                assert_eq!(
                    dev.faults_injected, 0,
                    "{config_name}/{every}: device {d} saw transport faults"
                );
                assert_eq!(
                    dev.crc_detected, 0,
                    "{config_name}/{every}: device {d} CRC fired on an SEU"
                );
            }
            match config_name {
                "off" => {
                    // The silence proof: corruption escapes to clients
                    // and *nothing* notices.
                    assert_eq!(cell.quarantines, 0, "off: no detector may fire");
                    assert_eq!(cell.scrub_runs + cell.canary_pass + cell.canary_fail, 0);
                    assert_eq!(cell.attest_checks, 0);
                    if every == 1 {
                        assert!(
                            cell.escapes > 0,
                            "off/1: SEUs must skew served classifications \
                             (otherwise the sweep proves nothing)"
                        );
                    }
                }
                name => {
                    assert!(
                        cell.seu_injected > 0,
                        "{name}/{every}: the fault plan must inject"
                    );
                    assert!(
                        cell.quarantines >= 1,
                        "{name}/{every}: corruption must be detected"
                    );
                    let escapes_max = match name {
                        "attested" => 0,
                        "sampled" => n / ESCAPES_SAMPLED_DEN,
                        _ => n * ESCAPES_SINGLE_NUM / 3,
                    };
                    assert!(
                        cell.escapes <= escapes_max,
                        "{name}/{every}: {} escapes exceed the gate {escapes_max}",
                        cell.escapes
                    );
                    assert!(
                        max_recovery <= RECOVERY_CYCLES_MAX,
                        "{name}/{every}: detect->rejoin took {max_recovery} cycles \
                         (gate: {RECOVERY_CYCLES_MAX})"
                    );
                }
            }
            cells.push(cell);
        }
    }

    // At least one incident across the sweep healed end to end, and
    // its flight-recorder timeline reconstructs the whole lifecycle
    // under a single incident trace id.
    let case = showcase.expect("the sweep must produce at least one healed incident");
    let names: Vec<&str> = case.stages.iter().map(|s| s.as_str()).collect();
    assert_eq!(
        &names[..3],
        ["sdc_detect", "quarantine", "weight_reload"],
        "incident must open detect -> quarantine -> reload"
    );
    assert_eq!(*names.last().unwrap(), "rejoin");
    assert!(
        names[3..names.len() - 1]
            .iter()
            .all(|s| *s == "canary_probe"),
        "between reload and rejoin only probation canaries run"
    );
    println!(
        "\nincident {:#x} (detector ordinal {}): {} — healed in {} pool cycles",
        case.trace_id,
        case.detector,
        names.join(" -> "),
        case.recovery_cycles().unwrap(),
    );
    println!(
        "\nSLO held: SEUs were invisible to the transport layer in every cell; with \
         detectors off they skewed served answers silently; every detector-on cell \
         quarantined, reloaded, and rejoined within {RECOVERY_CYCLES_MAX} cycles, and \
         full attestation served zero wrong answers."
    );

    let mut json = String::from("{\n  \"benchmark\": \"corruption_sweep\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"images_per_cell\": {n},");
    let _ = writeln!(
        json,
        "  \"escapes_max\": {{\"single\": {}, \"sampled\": {}, \"attested\": 0}},",
        n * ESCAPES_SINGLE_NUM / 3,
        n / ESCAPES_SAMPLED_DEN
    );
    let _ = writeln!(json, "  \"recovery_cycles_max\": {RECOVERY_CYCLES_MAX},");
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"seu_every\": {}, \"config\": \"{}\", \"images\": {}, \
             \"seu_injected\": {}, \"escapes\": {}, \"quarantines\": {}, \
             \"quarantines_scrub\": {}, \"quarantines_canary\": {}, \
             \"quarantines_attest\": {}, \"scrub_runs\": {}, \"scrub_dirty_banks\": {}, \
             \"canary_pass\": {}, \"canary_fail\": {}, \"attest_checks\": {}, \
             \"attest_mismatches\": {}, \"correctness_breaches\": {}, \
             \"incidents\": {}, \"healed\": {}, \"max_recovery_cycles\": {}}}",
            c.rate_every,
            c.config,
            c.images,
            c.seu_injected,
            c.escapes,
            c.quarantines,
            c.quarantines_by[0],
            c.quarantines_by[1],
            c.quarantines_by[2],
            c.scrub_runs,
            c.scrub_dirty_banks,
            c.canary_pass,
            c.canary_fail,
            c.attest_checks,
            c.attest_mismatches,
            c.correctness_breaches,
            c.incidents,
            c.healed,
            c.max_recovery_cycles,
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    atomic_write(&out_path, json.as_bytes()).expect("atomic result commit");
    println!("results committed atomically to {out_path}");
}
