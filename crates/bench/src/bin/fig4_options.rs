//! Regenerates **Fig. 4**: the convolutional-layer options panel.
//! The GUI collects, per convolutional layer, the number and size of
//! kernels ("Feature maps out") and an optional integrated
//! max-pooling stage; per linear layer, a neuron count and the tanh
//! checkbox. This binary prints the descriptor schema and the echo a
//! user would see while configuring the paper's Test-1 network.

use cnn_framework::NetworkSpec;

fn main() {
    println!("FIG. 4: Convolutional layer options (descriptor schema + echo)\n");

    println!("per-convolutional-layer options:");
    println!("  feature_maps_out : number of kernels (GUI 'Feature maps out')");
    println!("  kernel           : square kernel side");
    println!("  pooling          : optional integrated sub-sampling");
    println!("    kind           : max (default) | mean (extension)");
    println!("    kernel         : square window side");
    println!("    step           : stride, default = window (p_step of Eqs. 4-5)");
    println!();
    println!("per-linear-layer options:");
    println!("  neurons          : layer width (last layer = class count)");
    println!("  tanh             : append the hyperbolic tangent");
    println!();
    println!("global options:");
    println!("  input_channels/height/width, board (zedboard | zybo), optimized");

    let spec = NetworkSpec::paper_usps_small(true);
    println!(
        "\nconfigured Test-1/2 descriptor:\n{}",
        spec.to_json().expect("descriptor serializes")
    );

    println!("\nper-stage shape echo (Eqs. 2-5 applied):");
    for (i, s) in spec.validate().expect("valid").iter().enumerate() {
        println!("  stage {i}: {s}");
    }

    println!(
        "\nmachine-readable descriptor schema (what the GUI form is generated from):\n{}",
        serde_json::to_string_pretty(&NetworkSpec::descriptor_schema()).expect("schema serializes")
    );
}
