//! Fair-baseline analysis (extension): the paper's speedups are
//! measured against *unoptimized scalar* ARM code. This binary adds
//! the column a critical reviewer asks for — a NEON-vectorized
//! software baseline — and reports how much of each hardware win
//! survives it.

use cnn_fpga::Board;
use cnn_framework::weights::build_random;
use cnn_framework::PaperTest;
use cnn_hls::ir::lower;
use cnn_hls::schedule::schedule;
use cnn_hls::timing;
use cnn_hls::Precision;
use cnn_platform::{ArmModel, NeonModel};

fn main() {
    println!("SOFTWARE BASELINES vs HARDWARE (per-image times, Zedboard)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "Test", "scalar SW", "NEON SW", "HW @100MHz", "HW/scalar", "HW/NEON"
    );
    println!("{}", "-".repeat(78));
    for test in PaperTest::ALL {
        let spec = test.spec();
        let net = build_random(&spec, 2016).expect("valid spec");
        let scalar = ArmModel::new(Board::Zedboard, &net).seconds_per_image();
        let neon = NeonModel::new(Board::Zedboard, &net).seconds_per_image();
        let ir = lower(&net);
        let hw = schedule(&ir, &spec.directives());
        let hw_s = hw.interval_cycles as f64 / cnn_hls::calibration::FABRIC_CLOCK_HZ as f64;
        println!(
            "{:<8} {:>10.3}ms {:>10.3}ms {:>10.3}ms | {:>11.2}x {:>11.2}x",
            test.name(),
            scalar * 1e3,
            neon * 1e3,
            hw_s * 1e3,
            scalar / hw_s,
            neon / hw_s
        );
    }

    println!("\nTIMING HEADROOM (the paper fixed 100 MHz):");
    for test in PaperTest::ALL {
        let spec = test.spec();
        let net = build_random(&spec, 2016).expect("valid spec");
        let ir = lower(&net);
        let r = timing::analyze(&ir, &spec.directives(), Precision::Float32);
        println!(
            "  {:<8} fmax {:>6.1} MHz -> best FCLK {:>6.2} MHz ({:.2}x free throughput)",
            test.name(),
            r.fmax_mhz,
            r.best_fclk_mhz,
            r.speedup_vs_100mhz
        );
    }

    println!(
        "\nreading: the headline speedups hold against the paper's own baseline\n\
         (unoptimized scalar C). Against an aggressive NEON-vectorized baseline\n\
         (0.83 cycles/MAC, bandwidth-floored) the 100 MHz II=2 fabric loses in\n\
         every test: the paper's margins rest on the unoptimized software, and\n\
         closing the gap needs the levers this repo's ablations quantify —\n\
         unrolled MAC lanes, fixed-point datapaths, and the ~1.7x of clock\n\
         headroom the paper left at 100 MHz (precisely the direction the\n\
         field's later accelerators, e.g. Zhang et al. [9], took)."
    );
}
