//! Fair-baseline analysis (extension): the paper's speedups are
//! measured against *unoptimized scalar* ARM code. This binary adds
//! the column a critical reviewer asks for — a NEON-vectorized
//! software baseline — and reports how much of each hardware win
//! survives it.
//!
//! When `BENCH_hotpath.json` exists (produced by the `hot_path`
//! benchmark), a third software column is added: the analytic NEON
//! constants are replaced by the blocked-vs-scalar speedup actually
//! **measured** on this machine's kernels
//! ([`NeonModel::with_measured_speedup`]).

use cnn_fpga::Board;
use cnn_framework::weights::build_deterministic;
use cnn_framework::PaperTest;
use cnn_hls::ir::lower;
use cnn_hls::schedule::schedule;
use cnn_hls::timing;
use cnn_hls::Precision;
use cnn_platform::{ArmModel, NeonModel};

/// Extracts `"key": <number>` from the hand-rendered hot-path JSON.
/// (Deliberately not a JSON parser: the file is produced by this
/// workspace with a fixed schema, and the benchmark must stay runnable
/// where serde_json is unavailable at runtime.)
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The measured Test-4 conv speedup from `BENCH_hotpath.json`, if the
/// file exists (next to the CWD or at `--hotpath <path>`).
fn measured_speedup() -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--hotpath")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let json = std::fs::read_to_string(&path).ok()?;
    let s = json_number(&json, "test4_conv_speedup")?;
    (s.is_finite() && s > 0.0).then_some(s)
}

fn main() {
    println!("SOFTWARE BASELINES vs HARDWARE (per-image times, Zedboard)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "Test", "scalar SW", "NEON SW", "HW @100MHz", "HW/scalar", "HW/NEON"
    );
    println!("{}", "-".repeat(78));
    for test in PaperTest::ALL {
        let spec = test.spec();
        let net = build_deterministic(&spec, 2016).expect("valid spec");
        let scalar = ArmModel::new(Board::Zedboard, &net).seconds_per_image();
        let neon = NeonModel::new(Board::Zedboard, &net).seconds_per_image();
        let ir = lower(&net);
        let hw = schedule(&ir, &spec.directives());
        let hw_s = hw.interval_cycles as f64 / cnn_hls::calibration::FABRIC_CLOCK_HZ as f64;
        println!(
            "{:<8} {:>10.3}ms {:>10.3}ms {:>10.3}ms | {:>11.2}x {:>11.2}x",
            test.name(),
            scalar * 1e3,
            neon * 1e3,
            hw_s * 1e3,
            scalar / hw_s,
            neon / hw_s
        );
    }

    match measured_speedup() {
        Some(s) => {
            println!(
                "\nMEASURED SOFTWARE BASELINE (hot_path blocked-vs-scalar: {s:.2}x on Test-4)"
            );
            println!(
                "{:<8} {:>14} {:>14} | {:>12}",
                "Test", "measured SW", "HW @100MHz", "HW/measured"
            );
            println!("{}", "-".repeat(56));
            for test in PaperTest::ALL {
                let spec = test.spec();
                let net = build_deterministic(&spec, 2016).expect("valid spec");
                let measured =
                    NeonModel::with_measured_speedup(Board::Zedboard, &net, s).seconds_per_image();
                let ir = lower(&net);
                let hw = schedule(&ir, &spec.directives());
                let hw_s = hw.interval_cycles as f64 / cnn_hls::calibration::FABRIC_CLOCK_HZ as f64;
                println!(
                    "{:<8} {:>12.3}ms {:>12.3}ms | {:>11.2}x",
                    test.name(),
                    measured * 1e3,
                    hw_s * 1e3,
                    measured / hw_s
                );
            }
        }
        None => println!(
            "\n(no BENCH_hotpath.json found — run `cargo run --release -p cnn-bench \
             --bin hot_path` for the measured-calibration column)"
        ),
    }

    println!("\nTIMING HEADROOM (the paper fixed 100 MHz):");
    for test in PaperTest::ALL {
        let spec = test.spec();
        let net = build_deterministic(&spec, 2016).expect("valid spec");
        let ir = lower(&net);
        let r = timing::analyze(&ir, &spec.directives(), Precision::Float32);
        println!(
            "  {:<8} fmax {:>6.1} MHz -> best FCLK {:>6.2} MHz ({:.2}x free throughput)",
            test.name(),
            r.fmax_mhz,
            r.best_fclk_mhz,
            r.speedup_vs_100mhz
        );
    }

    println!(
        "\nreading: the headline speedups hold against the paper's own baseline\n\
         (unoptimized scalar C). Against an aggressive NEON-vectorized baseline\n\
         (0.83 cycles/MAC, bandwidth-floored) the 100 MHz II=2 fabric loses in\n\
         every test: the paper's margins rest on the unoptimized software, and\n\
         closing the gap needs the levers this repo's ablations quantify —\n\
         unrolled MAC lanes, fixed-point datapaths, and the ~1.7x of clock\n\
         headroom the paper left at 100 MHz (precisely the direction the\n\
         field's later accelerators, e.g. Zhang et al. [9], took)."
    );
}
