//! Open-loop load generator for the batched serving front-end.
//!
//! Drives `cnn-serve::Frontend` with Poisson arrivals over a tenant
//! mix at fractions of the measured service capacity (0.5×, 0.9× and
//! 2.0× — genuine overload) and reports, per rate: latency quantiles
//! (p50/p99/p999) in simulated cycles, goodput (served requests that
//! met their deadline, per million cycles), shed rate, deadline
//! attainment among served requests, queue depth and the degradation
//! tier the overload controller ended in.
//!
//! ```text
//! cargo run --release -p cnn-bench --bin load_gen [-- --smoke] [-- --out FILE]
//! ```
//!
//! Everything is deterministic: weights come from
//! [`build_deterministic`], images and inter-arrival gaps from
//! SplitMix64 streams, and devices are fault-free simulations — the
//! same invocation always produces the same JSON, so the committed
//! `BENCH_loadgen.json` is exactly reproducible.
//!
//! The run **asserts** the PR's overload SLO, so a regression fails
//! CI rather than just changing a number in a file:
//!
//! * at 2.0× the front-end sheds (admission control is alive) while
//!   the queue stays bounded by its configured cap, and
//! * at every rate, ≥ 99% of *admitted* requests meet their deadline
//!   (sheds are refusals, not misses), and
//! * every served prediction — batched hardware, hedged, or software
//!   tier — is bit-identical to the single-image reference path.

use cnn_fpga::fault::{FaultPlan, RetryPolicy};
use cnn_framework::weights::build_deterministic;
use cnn_framework::{NetworkSpec, WeightSource, Workflow, WorkflowArtifacts};
use cnn_serve::{Arrival, FrontendConfig, PoolConfig};
use cnn_store::atomic_write;
use cnn_store::hash::SplitMix64;
use cnn_tensor::{Shape, Tensor};
use std::fmt::Write as _;

/// Tenants in the mix: (WDRR weight, deadline budget as a multiple of
/// the calibrated per-request service time). Tenant 0 is the premium
/// lane (heavy weight, tight deadline); tenant 2 is batch traffic
/// (light weight, loose deadline). Budgets must clear the front-end's
/// *conservative* admission estimate — power-of-four bucket ceilings
/// on queue delay and batch service can each overstate by ~3× — so
/// the tightest budget is 8× the raw service time, not 2×.
const TENANTS: [(u32, u64); 3] = [(4, 8), (2, 16), (1, 40)];

/// Load factors to sweep; 2.0 is the overload cell the SLO gates on.
const RATE_FACTORS: [f64; 3] = [0.5, 0.9, 2.0];

const POOL_DEVICES: usize = 2;

fn deterministic_images(shape: Shape, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let data: Vec<f32> = (0..shape.len())
                .map(|_| (rng.next_f64() * 2.0 - 1.0) as f32)
                .collect();
            Tensor::from_vec(shape, data)
        })
        .collect()
}

/// Upper-bound empirical quantile of a sorted sample.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn frontend_cfg() -> FrontendConfig {
    FrontendConfig {
        tenant_weights: TENANTS.iter().map(|&(w, _)| w).collect(),
        ..FrontendConfig::default()
    }
}

fn fault_free_plans() -> Vec<FaultPlan> {
    (0..POOL_DEVICES).map(|_| FaultPlan::none()).collect()
}

/// Measures per-request hardware service time: one request, alone,
/// with an effectively-infinite budget. Its latency minus the partial
/// batch's wait for `batch_deadline` is what one dispatch costs — and
/// since the simulated pool serializes device time, it is also the
/// saturation cost per request, so rate factors below 1.0 are genuine
/// underload and 2.0 is genuine overload of the hardware tier.
fn calibrate(artifacts: &WorkflowArtifacts, images: &[Tensor], policy: &RetryPolicy) -> u64 {
    let arrivals = [Arrival {
        at: 0,
        tenant: 0,
        budget: u64::MAX / 2,
        image_id: 0,
    }];
    let cfg = frontend_cfg();
    let batch_deadline = cfg.batch_deadline;
    let r = artifacts
        .serve_with_frontend(
            &images[..1],
            &arrivals,
            &fault_free_plans(),
            policy,
            PoolConfig::default(),
            cfg,
        )
        .expect("calibration run serves");
    assert_eq!(r.report.completed.len(), 1, "solo request must be served");
    r.report.completed[0]
        .latency()
        .saturating_sub(batch_deadline)
        .max(1)
}

/// Poisson arrival schedule at `factor` times the calibrated
/// capacity, tenants drawn round-robin, budgets per [`TENANTS`].
fn poisson_arrivals(n: usize, factor: f64, svc_per_req: u64, seed: u64) -> Vec<Arrival> {
    let mean_gap = svc_per_req as f64 / factor;
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|i| {
            // Exponential inter-arrival via inverse CDF; clamp the
            // uniform away from 0 so ln() stays finite.
            let u = rng.next_f64().max(1e-12);
            t += -u.ln() * mean_gap;
            let tenant = i % TENANTS.len();
            Arrival {
                at: t as u64,
                tenant,
                budget: TENANTS[tenant].1 * svc_per_req,
                image_id: i,
            }
        })
        .collect()
}

struct RateRow {
    factor: f64,
    offered: usize,
    admitted: u64,
    served: usize,
    shed_deadline: u64,
    shed_queue_full: u64,
    deadline_misses: u64,
    attainment: f64,
    p50: u64,
    p99: u64,
    p999: u64,
    goodput_per_mcycle: f64,
    max_queue_depth: usize,
    batches: u64,
    software_batches: u64,
    tier_transitions: u64,
    final_tier: &'static str,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_loadgen.json".to_string());
    let n = if smoke { 192 } else { 768 };
    cnn_trace::enable();
    cnn_serve::preregister_frontend_metrics();

    eprintln!("[cnn-bench] building the Test-2 stack (optimized Zedboard build)...");
    let spec = NetworkSpec::paper_usps_small(true);
    let net = build_deterministic(&spec, 2016).expect("valid paper spec");
    let artifacts = Workflow::new(spec, WeightSource::Trained(Box::new(net)))
        .run()
        .expect("the paper network fits the Zedboard");
    let images = deterministic_images(artifacts.network.input_shape(), n, 0x10AD);
    let reference: Vec<usize> = images
        .iter()
        .map(|i| artifacts.network.predict(i))
        .collect();
    let policy = RetryPolicy::default();

    let svc = calibrate(&artifacts, &images, &policy);
    println!(
        "LOAD GEN: {n} requests/rate, {POOL_DEVICES} devices, \
         calibrated capacity {svc} cycles/request at saturation\n"
    );
    println!(
        "{:>6}  {:>8}  {:>8}  {:>6}  {:>8}  {:>6}  {:>10}  {:>10}  {:>10}  {:>9}  {:>5}  {:>9}",
        "rate",
        "admitted",
        "served",
        "shed",
        "attain",
        "miss",
        "p50 cyc",
        "p99 cyc",
        "p999 cyc",
        "goodput",
        "depth",
        "tier"
    );

    let mut rows = Vec::new();
    for (ri, &factor) in RATE_FACTORS.iter().enumerate() {
        let arrivals = poisson_arrivals(n, factor, svc, 0xA221 + ri as u64);
        let cfg = frontend_cfg();
        let queue_cap = cfg.queue_cap;
        let r = artifacts
            .serve_with_frontend(
                &images,
                &arrivals,
                &fault_free_plans(),
                &policy,
                PoolConfig::default(),
                cfg,
            )
            .expect("rate run serves");
        let rep = &r.report;

        // Bit-exactness: every served prediction matches the
        // single-image reference path, at every rate.
        for c in &rep.completed {
            assert_eq!(
                c.prediction, reference[c.image_id],
                "rate {factor}: image {} served a wrong answer",
                c.image_id
            );
            assert_eq!(r.predictions[c.image_id], Some(c.prediction));
        }

        let mut lats: Vec<u64> = rep.completed.iter().map(|c| c.latency()).collect();
        lats.sort_unstable();
        let met = rep.completed.iter().filter(|c| c.deadline_met()).count();
        let span = rep
            .completed
            .iter()
            .map(|c| c.completion)
            .max()
            .unwrap_or(1)
            .max(1);
        let row = RateRow {
            factor,
            offered: n,
            admitted: rep.admitted,
            served: rep.completed.len(),
            shed_deadline: rep.shed_deadline,
            shed_queue_full: rep.shed_queue_full,
            deadline_misses: rep.deadline_misses,
            attainment: rep.attainment(),
            p50: quantile(&lats, 0.50),
            p99: quantile(&lats, 0.99),
            p999: quantile(&lats, 0.999),
            goodput_per_mcycle: met as f64 * 1e6 / span as f64,
            max_queue_depth: rep.max_queue_depth,
            batches: rep.batches,
            software_batches: rep.software_batches,
            tier_transitions: rep.tier_transitions,
            final_tier: rep.final_tier.as_str(),
        };
        println!(
            "{:>5.1}x  {:>8}  {:>8}  {:>6}  {:>7.4}  {:>6}  {:>10}  {:>10}  {:>10}  {:>9.3}  {:>5}  {:>9}",
            row.factor,
            row.admitted,
            row.served,
            rep.shed(),
            row.attainment,
            row.deadline_misses,
            row.p50,
            row.p99,
            row.p999,
            row.goodput_per_mcycle,
            row.max_queue_depth,
            row.final_tier,
        );

        // The SLO gates. Sheds are refusals, not misses: attainment
        // is judged over admitted-and-served requests.
        assert!(
            row.attainment >= 0.99,
            "rate {factor}: only {:.4} of admitted requests met their deadline (SLO: 0.99)",
            row.attainment
        );
        assert!(
            row.max_queue_depth <= queue_cap,
            "rate {factor}: queue depth {} exceeded its cap {queue_cap}",
            row.max_queue_depth
        );
        if factor >= 2.0 {
            assert!(
                rep.shed() > 0,
                "rate {factor}: overload must shed, not queue without bound"
            );
        }
        rows.push(row);
    }

    println!(
        "\nSLO held: at 2.0x the queue stayed bounded and load was shed at admission; \
         >=99% of admitted requests met their deadline at every rate; every served \
         prediction was bit-identical to the single-image reference."
    );

    println!(
        "\nPROMETHEUS EXPORT (cumulative across the sweep):\n\n{}",
        cnn_trace::export::prometheus::to_prometheus_text(&cnn_trace::snapshot())
    );

    let mut json = String::from("{\n  \"benchmark\": \"load_gen\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"requests_per_rate\": {n},");
    let _ = writeln!(json, "  \"pool_devices\": {POOL_DEVICES},");
    let _ = writeln!(json, "  \"capacity_cycles_per_request\": {svc},");
    let _ = writeln!(
        json,
        "  \"tenants\": [{}],",
        TENANTS
            .iter()
            .map(|&(w, b)| format!("{{\"weight\": {w}, \"budget_x_batch_service\": {b}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    json.push_str("  \"rates\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"factor\": {}, \"offered\": {}, \"admitted\": {}, \"served\": {}, \
             \"shed_deadline\": {}, \"shed_queue_full\": {}, \"deadline_misses\": {}, \
             \"attainment\": {:.6}, \"p50_cycles\": {}, \"p99_cycles\": {}, \
             \"p999_cycles\": {}, \"goodput_per_mcycle\": {:.3}, \"max_queue_depth\": {}, \
             \"batches\": {}, \"software_batches\": {}, \"tier_transitions\": {}, \
             \"final_tier\": \"{}\"}}",
            r.factor,
            r.offered,
            r.admitted,
            r.served,
            r.shed_deadline,
            r.shed_queue_full,
            r.deadline_misses,
            r.attainment,
            r.p50,
            r.p99,
            r.p999,
            r.goodput_per_mcycle,
            r.max_queue_depth,
            r.batches,
            r.software_batches,
            r.tier_transitions,
            r.final_tier,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    atomic_write(&out_path, json.as_bytes()).expect("atomic result commit");
    println!("results committed atomically to {out_path}");
}
